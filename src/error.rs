//! The unified error type of the `geopriv` facade.

use geopriv_analysis::AnalysisError;
use geopriv_core::CoreError;
use geopriv_lppm::LppmError;
use geopriv_metrics::MetricError;
use geopriv_mobility::MobilityError;
use std::fmt;

/// Any error the `geopriv` workspace can produce, so facade call chains
/// ([`crate::AutoConf`]) propagate with one `?` regardless of which layer
/// failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A configuration-framework step failed (sweep, modeling, inversion).
    Core(CoreError),
    /// A metric evaluation or suite-construction step failed.
    Metrics(MetricError),
    /// A protection mechanism failed.
    Lppm(LppmError),
    /// A numerical-analysis step failed.
    Analysis(AnalysisError),
    /// A mobility-data operation failed.
    Mobility(MobilityError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Core(e) => write!(f, "{e}"),
            Error::Metrics(e) => write!(f, "{e}"),
            Error::Lppm(e) => write!(f, "{e}"),
            Error::Analysis(e) => write!(f, "{e}"),
            Error::Mobility(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Metrics(e) => Some(e),
            Error::Lppm(e) => Some(e),
            Error::Analysis(e) => Some(e),
            Error::Mobility(e) => Some(e),
        }
    }
}

impl From<CoreError> for Error {
    fn from(e: CoreError) -> Self {
        Error::Core(e)
    }
}

impl From<MetricError> for Error {
    fn from(e: MetricError) -> Self {
        Error::Metrics(e)
    }
}

impl From<LppmError> for Error {
    fn from(e: LppmError) -> Self {
        Error::Lppm(e)
    }
}

impl From<AnalysisError> for Error {
    fn from(e: AnalysisError) -> Self {
        Error::Analysis(e)
    }
}

impl From<MobilityError> for Error {
    fn from(e: MobilityError) -> Self {
        Error::Mobility(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_every_layer_with_display_and_source() {
        let errors: Vec<Error> = vec![
            CoreError::Infeasible { reason: "conflict".into() }.into(),
            MetricError::DatasetMismatch { reason: "sizes".into() }.into(),
            LppmError::EmptyProtectedTrace.into(),
            AnalysisError::NotInvertible.into(),
            MobilityError::EmptyDataset.into(),
        ];
        for error in &errors {
            assert!(!error.to_string().is_empty());
            assert!(std::error::Error::source(error).is_some());
        }
        assert!(errors[0].to_string().contains("infeasible"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<Error>();
    }
}
