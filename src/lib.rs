//! # geopriv
//!
//! Umbrella crate re-exporting the whole `geopriv` workspace: a framework for
//! the easy, automated configuration of Location Privacy Protection
//! Mechanisms (LPPMs), reproducing Cerf et al., *Toward an Easy Configuration
//! of Location Privacy Protection Mechanisms*, Middleware 2016.
//!
//! See the individual crates for details:
//!
//! * [`geo`] — geospatial primitives (points, projections, grids).
//! * [`analysis`] — regression, PCA, interpolation, saturation detection.
//! * [`mobility`] — mobility traces, datasets and synthetic generators.
//! * [`lppm`] — protection mechanisms (Geo-Indistinguishability & friends).
//! * [`metrics`] — privacy and utility metrics.
//! * [`core`] — the configuration framework itself.
//!
//! ## Quickstart
//!
//! ```
//! use geopriv::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Simulate a small mobility dataset (stand-in for the SF taxi traces).
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let dataset = TaxiFleetBuilder::new()
//!     .drivers(4)
//!     .duration_hours(6.0)
//!     .build(&mut rng)?;
//!
//! // 2. Protect it with Geo-Indistinguishability at a given epsilon.
//! let geoi = GeoIndistinguishability::new(Epsilon::new(0.01)?);
//! let protected = geoi.protect_dataset(&dataset, &mut rng)?;
//!
//! // 3. Evaluate privacy (POI retrieval) and utility (area coverage).
//! let privacy = PoiRetrieval::default().evaluate(&dataset, &protected)?;
//! let utility = AreaCoverage::default().evaluate(&dataset, &protected)?;
//! assert!((0.0..=1.0).contains(&privacy.value()));
//! assert!((0.0..=1.0).contains(&utility.value()));
//! # Ok(())
//! # }
//! ```

pub use geopriv_analysis as analysis;
pub use geopriv_core as core;
pub use geopriv_geo as geo;
pub use geopriv_lppm as lppm;
pub use geopriv_metrics as metrics;
pub use geopriv_mobility as mobility;

/// Convenient glob-import of the most commonly used items of the workspace.
pub mod prelude {
    pub use geopriv_core::prelude::*;
    pub use geopriv_geo::prelude::*;
    pub use geopriv_lppm::prelude::*;
    pub use geopriv_metrics::prelude::*;
    pub use geopriv_mobility::prelude::*;
}
