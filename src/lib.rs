//! # geopriv
//!
//! Umbrella crate re-exporting the whole `geopriv` workspace: a framework for
//! the easy, automated configuration of Location Privacy Protection
//! Mechanisms (LPPMs), reproducing Cerf et al., *Toward an Easy Configuration
//! of Location Privacy Protection Mechanisms*, Middleware 2016.
//!
//! The public entry point is the fluent [`AutoConf`] facade — define the
//! system, sweep its configuration space (one axis or many), fit every
//! metric's model, state per-metric constraints, and get an operating-point
//! recommendation ([`core::Recommendation`], carrying a full
//! [`core::ConfigPoint`]) in one chain. The explicit step-by-step pipeline underneath stays public; see
//! the individual crates for details:
//!
//! * [`geo`] — geospatial primitives (points, projections, grids).
//! * [`analysis`] — regression, PCA, interpolation, saturation detection.
//! * [`mobility`] — mobility traces, datasets and synthetic generators.
//! * [`lppm`] — protection mechanisms (Geo-Indistinguishability & friends).
//! * [`metrics`] — metric traits and direction-tagged suites
//!   ([`metrics::MetricSuite`]).
//! * [`core`] — the configuration framework itself.
//! * [`serve`] — online per-user enforcement of a recommendation behind an
//!   HTTP request path ([`serve::GeoPrivServer`]).
//!
//! ## Quickstart
//!
//! ```
//! use geopriv::prelude::*;
//! use geopriv::AutoConf;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Simulate a small mobility dataset (stand-in for the SF taxi traces).
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let dataset = TaxiFleetBuilder::new()
//!     .drivers(4)
//!     .duration_hours(6.0)
//!     .build(&mut rng)?;
//!
//! // 2. Sweep GEO-I's ε, fit the response models, and invert them under
//! //    "at most 30 % POI retrieval, at least 50 % area coverage".
//! let recommendation = AutoConf::for_system(SystemDefinition::paper_geoi())
//!     .dataset(&dataset)
//!     .sweep(|s| s.points(9).seed(42))
//!     .fit()?
//!     .require("poi-retrieval", at_most(0.30))?
//!     .require("area-coverage", at_least(0.50))?
//!     .recommend()?;
//!
//! // 3. The recommended ε comes with per-metric predictions.
//! assert!(recommendation.parameter() > 0.0);
//! assert!(recommendation.predicted(&"poi-retrieval".into()).is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod autoconf;
pub mod error;

pub use geopriv_analysis as analysis;
pub use geopriv_core as core;
pub use geopriv_geo as geo;
pub use geopriv_lppm as lppm;
pub use geopriv_metrics as metrics;
pub use geopriv_mobility as mobility;
pub use geopriv_serve as serve;

pub use autoconf::{
    AutoConf, AutoConfWithData, FittedAutoConf, MoveReason, MovedUser, RefreshReport, SweepBuilder,
};
pub use error::Error;

/// Convenient glob-import of the most commonly used items of the workspace.
pub mod prelude {
    pub use crate::autoconf::{
        AutoConf, AutoConfWithData, FittedAutoConf, MoveReason, MovedUser, RefreshReport,
        SweepBuilder,
    };
    pub use crate::error::Error;
    pub use geopriv_core::prelude::*;
    pub use geopriv_geo::prelude::*;
    pub use geopriv_lppm::prelude::*;
    pub use geopriv_metrics::prelude::*;
    pub use geopriv_mobility::prelude::*;
}
