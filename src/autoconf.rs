//! The fluent `AutoConf` facade: define → sweep → fit → require → recommend
//! in one call chain.
//!
//! The explicit path through the framework (build an
//! [`ExperimentRunner`], run it, feed the sweep to a [`Modeler`], wrap the
//! fit in a [`Configurator`], invert under [`Objectives`]) stays available
//! and is what this facade drives underneath — `AutoConf` only removes the
//! plumbing, never changes the numbers. The chain is typestate-shaped:
//! [`AutoConf::dataset`] is needed before [`AutoConfWithData::fit`], and
//! [`FittedAutoConf::recommend`] only exists after `fit()`, so "invert before
//! measuring" is unrepresentable rather than a runtime error.
//!
//! Multi-axis systems (composed pipelines, multi-parameter mechanisms) flow
//! through the same chain: configure the design with
//! [`SweepBuilder::points_per_axis`], [`SweepBuilder::axis_points`] and
//! [`SweepBuilder::one_at_a_time`], and the recommendation surfaces a full
//! [`geopriv_core::ConfigPoint`].
//!
//! ```no_run
//! use geopriv::prelude::*;
//! use geopriv::AutoConf;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), geopriv::Error> {
//! # let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! # let dataset = TaxiFleetBuilder::new().drivers(10).duration_hours(8.0).build(&mut rng)?;
//! let recommendation = AutoConf::for_system(SystemDefinition::paper_geoi())
//!     .dataset(&dataset)
//!     .sweep(|s| s.points(25).seed(42))
//!     .fit()?
//!     .require("poi-retrieval", at_most(0.1))?
//!     .require("area-coverage", at_least(0.8))?
//!     .recommend()?;
//! println!("use ε = {:.4}", recommendation.parameter());
//! # Ok(())
//! # }
//! ```

use crate::error::Error;
use geopriv_core::{
    CacheStats, Configurator, Constraint, ExperimentRunner, FittedSuite, Grain, HoldOutValidator,
    MetricId, Modeler, Objectives, ParetoFrontier, PerUserFits, PerUserRecommendation,
    Recommendation, SweepConfig, SweepResult, SystemDefinition, UserVerdict, ValidationReport,
};
use geopriv_lppm::ConfigPoint;
use geopriv_metrics::DatasetFingerprint;
use geopriv_mobility::{Dataset, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fluent configuration of the underlying sweep
/// ([`geopriv_core::SweepPlan`]), passed to [`AutoConf::sweep`] /
/// [`AutoConfWithData::sweep`] as a closure argument.
///
/// (Named `SweepBuilder` so the prelude can also export the core
/// [`geopriv_core::SweepPlan`] it configures without a glob collision.)
#[derive(Debug, Clone, PartialEq)]
pub struct SweepBuilder {
    plan: geopriv_core::SweepPlan,
}

impl SweepBuilder {
    fn new(plan: geopriv_core::SweepPlan) -> Self {
        Self { plan }
    }

    /// Number of sweep points per configuration axis (default 25).
    #[must_use]
    pub fn points(mut self, points: usize) -> Self {
        self.plan.config.points = points;
        self
    }

    /// Number of sweep points per configuration axis — the same setting as
    /// [`SweepBuilder::points`] under the name that reads naturally for
    /// multi-axis studies.
    #[must_use]
    pub fn points_per_axis(self, points: usize) -> Self {
        self.points(points)
    }

    /// Overrides the point count of one named axis (later calls win).
    #[must_use]
    pub fn axis_points(mut self, axis: impl Into<String>, points: usize) -> Self {
        self.plan = self.plan.axis_points(axis, points);
        self
    }

    /// Switches the design to the paper's one-at-a-time mode: each axis
    /// sweeps in turn while the other axes sit at their defaults (the
    /// default is the full-factorial grid).
    #[must_use]
    pub fn one_at_a_time(mut self) -> Self {
        self.plan.mode = geopriv_core::SweepMode::OneAtATime;
        self
    }

    /// Switches the design to the staged adaptive mode
    /// ([`geopriv_core::SweepMode::Adaptive`]): a coarse grid pass (at the
    /// configured points-per-axis), then model-guided refinement near the
    /// fitted feasibility boundaries until `budget` total evaluations are
    /// spent. A budget at or below the coarse-pass size disables refinement,
    /// which makes the run bit-identical to the plain grid.
    #[must_use]
    pub fn adaptive(mut self, budget: usize) -> Self {
        self.plan = self.plan.refine(budget);
        self
    }

    /// Narrows adaptive refinement to `[lo, hi]` on `axis`: the planner
    /// spends its budget bisecting measured gaps that overlap the interval
    /// before falling back to model-driven candidates. No effect outside
    /// [`SweepBuilder::adaptive`] mode.
    #[must_use]
    pub fn focus(mut self, axis: impl Into<String>, lo: f64, hi: f64) -> Self {
        self.plan = self.plan.focus(axis, lo, hi);
        self
    }

    /// Records per-user response curves alongside the dataset means
    /// ([`Grain::PerUser`]), unlocking
    /// [`FittedAutoConf::recommend_per_user`]. The aggregate columns stay
    /// bit-identical to a dataset-grain sweep with the same seed.
    #[must_use]
    pub fn per_user(mut self) -> Self {
        self.plan = self.plan.per_user();
        self
    }

    /// Sets the measurement grain explicitly.
    #[must_use]
    pub fn grain(mut self, grain: Grain) -> Self {
        self.plan = self.plan.grain(grain);
        self
    }

    /// Number of protection/evaluation repetitions per point (default 1).
    #[must_use]
    pub fn repetitions(mut self, repetitions: usize) -> Self {
        self.plan.config.repetitions = repetitions;
        self
    }

    /// Master seed of the sweep's deterministic RNG derivation.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.plan.config.seed = seed;
        self
    }

    /// Whether design points run on multiple threads (default true; either
    /// way the measurements are bit-identical).
    #[must_use]
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.plan.config.parallel = parallel;
        self
    }

    /// Persists per-user measurements under `dir` and reuses them across
    /// runs — exactly [`geopriv_core::SweepPlan::cached`]: a warm run loads
    /// unchanged users from the on-disk cache, re-measures only changed
    /// users, and is **bit-identical to a cold full run**. Unlocks
    /// [`FittedAutoConf::refresh`] and [`FittedAutoConf::cache_stats`].
    #[must_use]
    pub fn cached(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.plan = self.plan.cached(dir);
        self
    }
}

/// Entry state of the facade: a system, not yet bound to a dataset.
///
/// See the [module docs](self) for the full chain.
pub struct AutoConf {
    system: SystemDefinition,
    plan: geopriv_core::SweepPlan,
}

impl AutoConf {
    /// Starts a configuration study for one system.
    pub fn for_system(system: SystemDefinition) -> Self {
        Self { system, plan: geopriv_core::SweepPlan::grid(SweepConfig::default()) }
    }

    /// Adjusts the sweep settings.
    #[must_use]
    pub fn sweep(mut self, configure: impl FnOnce(SweepBuilder) -> SweepBuilder) -> Self {
        self.plan = configure(SweepBuilder::new(self.plan)).plan;
        self
    }

    /// Binds the dataset to study, unlocking [`AutoConfWithData::fit`].
    pub fn dataset(self, dataset: &Dataset) -> AutoConfWithData<'_> {
        AutoConfWithData { system: self.system, plan: self.plan, dataset }
    }
}

/// A system bound to a dataset — ready to measure and fit.
pub struct AutoConfWithData<'a> {
    system: SystemDefinition,
    plan: geopriv_core::SweepPlan,
    dataset: &'a Dataset,
}

impl<'a> AutoConfWithData<'a> {
    /// Adjusts the sweep settings.
    #[must_use]
    pub fn sweep(mut self, configure: impl FnOnce(SweepBuilder) -> SweepBuilder) -> Self {
        self.plan = configure(SweepBuilder::new(self.plan)).plan;
        self
    }

    /// Runs the sweep and fits every suite metric's model — exactly
    /// [`ExperimentRunner::run`] followed by [`Modeler::fit`]. On a
    /// per-user sweep ([`SweepBuilder::per_user`]) the per-user models are
    /// fitted too, from the same single sweep.
    ///
    /// # Errors
    ///
    /// Propagates sweep and modeling errors.
    pub fn fit(self) -> Result<FittedAutoConf<'a>, Error> {
        let runner = ExperimentRunner::with_plan(self.plan.clone());
        let (sweep, cache_stats) = if self.plan.cache_directory().is_some() {
            let cached = runner.run_cached(&self.system, self.dataset)?;
            (cached.result, Some(cached.stats))
        } else {
            (runner.run(&self.system, self.dataset)?, None)
        };
        let fitted = Modeler::new().fit(&sweep)?;
        let per_user = match self.plan.grain {
            Grain::PerUser => Some(Modeler::new().fit_per_user(&sweep)?),
            Grain::Dataset => None,
        };
        let configurator = Configurator::new(fitted);
        Ok(FittedAutoConf {
            system: self.system,
            dataset: self.dataset,
            plan: self.plan,
            sweep,
            per_user,
            configurator,
            objectives: Objectives::new(),
            cache_stats,
        })
    }
}

/// Why one user's recommendation moved in a [`FittedAutoConf::refresh`].
///
/// Reasons are assigned with a fixed precedence (first match wins): a user
/// absent from the previous recommendation is [`MoveReason::NewUser`]; a
/// user whose own traces changed is [`MoveReason::TraceDrift`]; a user
/// riding the dataset-level fallback point when that anchor itself moved is
/// [`MoveReason::FallbackAnchorMoved`]; anything else is
/// [`MoveReason::ModelShift`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveReason {
    /// The user's own trace records changed, so her curves were re-measured
    /// and her models refitted.
    TraceDrift,
    /// The user was not present in the previous dataset at all.
    NewUser,
    /// The user rides the dataset-level fallback point, and that anchor
    /// moved because the dataset-level models shifted.
    FallbackAnchorMoved,
    /// The user's own traces did not change, but her recommendation moved
    /// anyway — e.g. her verdict flipped against the shifted dataset anchor.
    ModelShift,
}

impl MoveReason {
    /// Short machine-stable label (`trace-drift` / `new-user` /
    /// `fallback-anchor-moved` / `model-shift`).
    pub fn label(&self) -> &'static str {
        match self {
            MoveReason::TraceDrift => "trace-drift",
            MoveReason::NewUser => "new-user",
            MoveReason::FallbackAnchorMoved => "fallback-anchor-moved",
            MoveReason::ModelShift => "model-shift",
        }
    }
}

/// One user whose recommendation moved in a [`FittedAutoConf::refresh`]:
/// the old and new points and verdicts, plus why the move happened.
#[derive(Debug, Clone, PartialEq)]
pub struct MovedUser {
    /// The user whose recommendation moved.
    pub user: UserId,
    /// Why it moved (see [`MoveReason`] for the precedence).
    pub reason: MoveReason,
    /// The previously recommended point (`None` for a new user).
    pub old_point: Option<ConfigPoint>,
    /// The previous feasibility verdict (`None` for a new user).
    pub old_verdict: Option<UserVerdict>,
    /// The newly recommended point.
    pub new_point: ConfigPoint,
    /// The new feasibility verdict.
    pub new_verdict: UserVerdict,
}

/// What a [`FittedAutoConf::refresh`] actually did: which users changed,
/// how much measurement and modeling was reused, and whose recommendations
/// moved (with reasons).
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshReport {
    /// Users whose trace records differ from the previous dataset (new
    /// users included), per the per-user [`DatasetFingerprint`]s.
    pub changed_users: Vec<UserId>,
    /// Users present in the previous dataset but absent from the new one
    /// (their cache entries stay on disk; they simply stop being resolved).
    pub removed_users: Vec<UserId>,
    /// Users whose measurements were served from the on-disk cache.
    pub cache_hits: usize,
    /// Users re-measured because their fingerprints changed (or the cache
    /// had no usable entry for them).
    pub remeasured: usize,
    /// Users whose models were refitted (changed or new); everyone else's
    /// [`geopriv_core::UserFit`] was carried over verbatim.
    pub refitted: usize,
    /// Whether the dataset-level recommendation (the fallback anchor) moved.
    pub dataset_point_moved: bool,
    /// Every user whose recommended point or verdict changed, with why.
    pub moved: Vec<MovedUser>,
    /// Cache warnings encountered during the refresh (corrupt or unwritable
    /// cache files). Warnings never change the result, only the cost.
    pub warnings: Vec<String>,
}

impl std::fmt::Display for RefreshReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} changed / {} removed user(s); {} cached, {} re-measured, {} refitted; \
             {} recommendation(s) moved{}",
            self.changed_users.len(),
            self.removed_users.len(),
            self.cache_hits,
            self.remeasured,
            self.refitted,
            self.moved.len(),
            if self.dataset_point_moved { " (dataset anchor moved)" } else { "" },
        )
    }
}

/// The fitted state: models exist, constraints can be stated and inverted.
///
/// Only this state exposes [`FittedAutoConf::recommend`] — the typestate
/// guarantee that inversion never runs before measurement.
pub struct FittedAutoConf<'a> {
    system: SystemDefinition,
    dataset: &'a Dataset,
    plan: geopriv_core::SweepPlan,
    sweep: SweepResult,
    per_user: Option<PerUserFits>,
    configurator: Configurator,
    objectives: Objectives,
    cache_stats: Option<CacheStats>,
}

impl FittedAutoConf<'_> {
    /// Adds a constraint on one suite metric ([`geopriv_core::at_most`] /
    /// [`geopriv_core::at_least`]).
    ///
    /// # Errors
    ///
    /// * [`geopriv_core::CoreError::UnknownMetric`] if `metric` was not part
    ///   of the swept suite (fails fast, at the call naming the metric).
    /// * [`geopriv_core::CoreError::InvalidConfiguration`] for a bound
    ///   outside `[0, 1]`.
    pub fn require(
        mut self,
        metric: impl Into<MetricId>,
        constraint: Constraint,
    ) -> Result<Self, Error> {
        let metric = metric.into();
        if self.fitted().model(&metric).is_none() {
            return Err(geopriv_core::CoreError::UnknownMetric {
                metric: metric.to_string(),
                available: self.fitted().ids().iter().map(MetricId::to_string).collect(),
            }
            .into());
        }
        self.objectives = self.objectives.require(metric, constraint)?;
        Ok(self)
    }

    /// The system under study.
    pub fn system(&self) -> &SystemDefinition {
        &self.system
    }

    /// The measured sweep.
    pub fn sweep_result(&self) -> &SweepResult {
        &self.sweep
    }

    /// The fitted per-metric models.
    pub fn fitted(&self) -> &FittedSuite {
        self.configurator.fitted()
    }

    /// The constraints stated so far.
    pub fn objectives(&self) -> &Objectives {
        &self.objectives
    }

    /// The measured trade-off frontier over the default metric pair (first
    /// lower-is-better vs first higher-is-better metric).
    ///
    /// # Errors
    ///
    /// Propagates [`ParetoFrontier::from_sweep`] errors.
    pub fn frontier(&self) -> Result<ParetoFrontier, Error> {
        Ok(ParetoFrontier::from_sweep(&self.sweep)?)
    }

    /// The measured trade-off frontier over an explicitly chosen metric pair.
    ///
    /// # Errors
    ///
    /// Propagates [`ParetoFrontier::for_pair`] errors.
    pub fn frontier_for(&self, x: &MetricId, y: &MetricId) -> Result<ParetoFrontier, Error> {
        Ok(ParetoFrontier::for_pair(&self.sweep, x, y)?)
    }

    /// Inverts the fitted models under the stated constraints — exactly
    /// [`Configurator::recommend`]. The recommendation carries a full
    /// [`ConfigPoint`] (one value per axis of the system's space).
    ///
    /// # Errors
    ///
    /// * [`geopriv_core::CoreError::InvalidConfiguration`] when no constraint
    ///   was stated.
    /// * [`geopriv_core::CoreError::Infeasible`] when the constraints
    ///   conflict.
    pub fn recommend(&self) -> Result<Recommendation, Error> {
        Ok(self.configurator.recommend(&self.objectives)?)
    }

    /// The per-user fitted models, when the sweep ran at
    /// [`Grain::PerUser`].
    pub fn per_user_models(&self) -> Option<&PerUserFits> {
        self.per_user.as_ref()
    }

    /// Inverts every user's own models under the stated constraints —
    /// exactly [`Configurator::recommend_per_user`]: each user gets her own
    /// [`ConfigPoint`] with an explicit feasibility verdict; infeasible and
    /// unmodeled users fall back to the dataset-level point, per the
    /// normative fallback policy documented on
    /// [`geopriv_core::UserVerdict`].
    ///
    /// # Errors
    ///
    /// * [`geopriv_core::CoreError::InvalidConfiguration`] when the sweep was
    ///   not per-user (request it with `.sweep(|s| s.per_user())`) or no
    ///   constraint was stated.
    /// * [`geopriv_core::CoreError::Infeasible`] when even the dataset-level
    ///   models admit no satisfying configuration (no fallback anchor).
    pub fn recommend_per_user(&self) -> Result<PerUserRecommendation, Error> {
        let Some(per_user) = &self.per_user else {
            return Err(geopriv_core::CoreError::InvalidConfiguration {
                reason: "per-user recommendation needs a per-user sweep — request it with \
                         .sweep(|s| s.per_user()) before fit()"
                    .to_string(),
            }
            .into());
        };
        Ok(self.configurator.recommend_per_user(per_user, &self.objectives)?)
    }

    /// Cache statistics of the sweep behind this fit — how many users were
    /// served from the on-disk measurement cache vs re-measured, plus any
    /// cache warnings. `Some` only when the sweep ran with
    /// [`SweepBuilder::cached`].
    pub fn cache_stats(&self) -> Option<&CacheStats> {
        self.cache_stats.as_ref()
    }

    /// Re-runs the study against a *changed* dataset, reusing every
    /// measurement and model the change did not touch — the facade of the
    /// incremental-recomputation path:
    ///
    /// 1. per-user [`DatasetFingerprint`]s classify users into unchanged /
    ///    changed / new / removed;
    /// 2. the cached sweep ([`geopriv_core::SweepPlan::cached`]) loads
    ///    unchanged users from disk and re-measures only changed users,
    ///    under the same identity-keyed seed streams a cold run would use;
    /// 3. [`Modeler::refit_per_user`] refits only changed users' models;
    /// 4. the constraints carry over and every user's recommendation is
    ///    re-inverted; the [`RefreshReport`] names each user whose
    ///    recommendation moved and why ([`MoveReason`]).
    ///
    /// The refreshed study is **bit-identical to a cold full study of the
    /// changed dataset** (sweep columns, fits, every recommendation) — the
    /// workspace's warm≡cold contract, asserted by the incremental
    /// integration tests and the `incremental` bench on every run.
    ///
    /// Consumes `self`: the refreshed study replaces it, bound to the
    /// changed dataset.
    ///
    /// # Errors
    ///
    /// * [`geopriv_core::CoreError::InvalidConfiguration`] when the study
    ///   did not run with a measurement cache ([`SweepBuilder::cached`]) or
    ///   a per-user sweep ([`SweepBuilder::per_user`]), or when no
    ///   constraint was stated (there are no recommendations to diff).
    /// * Propagates sweep, modeling and inversion errors.
    pub fn refresh<'b>(
        self,
        changed: &'b Dataset,
    ) -> Result<(FittedAutoConf<'b>, RefreshReport), Error> {
        if self.plan.cache_directory().is_none() {
            return Err(geopriv_core::CoreError::InvalidConfiguration {
                reason: "refresh needs a measurement cache — request it with \
                         .sweep(|s| s.cached(dir)) before fit()"
                    .to_string(),
            }
            .into());
        }
        let Some(previous_fits) = self.per_user.as_ref() else {
            return Err(geopriv_core::CoreError::InvalidConfiguration {
                reason: "refresh needs a per-user sweep — request it with \
                         .sweep(|s| s.per_user()) before fit()"
                    .to_string(),
            }
            .into());
        };
        let old_rec = self.recommend_per_user()?;

        // Classify users by per-user fingerprint: changed (new included),
        // removed, unchanged.
        let old_fp = DatasetFingerprint::of(self.dataset);
        let new_fp = DatasetFingerprint::of(changed);
        let changed_users = new_fp.changed_users(&old_fp);
        let changed_set: std::collections::BTreeSet<UserId> =
            changed_users.iter().copied().collect();
        let surviving: std::collections::BTreeSet<UserId> =
            new_fp.per_user().into_iter().map(|(user, _)| user).collect();
        let removed_users: Vec<UserId> = old_fp
            .per_user()
            .into_iter()
            .map(|(user, _)| user)
            .filter(|user| !surviving.contains(user))
            .collect();

        // Warm sweep: unchanged users come from disk, changed users are
        // re-measured under their own identity-keyed seed streams.
        let cached =
            ExperimentRunner::with_plan(self.plan.clone()).run_cached(&self.system, changed)?;
        let stats = cached.stats;
        let sweep = cached.result;
        let fitted = Modeler::new().fit(&sweep)?;

        // Incremental refit: unchanged users' fits carry over verbatim.
        let previously_fitted: std::collections::BTreeSet<UserId> =
            previous_fits.users.iter().map(|fit| fit.user).collect();
        let refitted = sweep
            .users()
            .iter()
            .filter(|user| changed_set.contains(*user) || !previously_fitted.contains(*user))
            .count();
        let per_user = Modeler::new().refit_per_user(&sweep, previous_fits, &changed_users)?;

        let refreshed = FittedAutoConf {
            system: self.system,
            dataset: changed,
            plan: self.plan,
            sweep,
            per_user: Some(per_user),
            configurator: Configurator::new(fitted),
            objectives: self.objectives,
            cache_stats: Some(stats.clone()),
        };
        let new_rec = refreshed.recommend_per_user()?;

        // Diff the recommendations: who moved, and why.
        let dataset_point_moved = new_rec.dataset.point != old_rec.dataset.point;
        let mut moved = Vec::new();
        for row in &new_rec.users {
            let old_row = old_rec.get(row.user);
            let unchanged_row =
                old_row.is_some_and(|old| old.point == row.point && old.verdict == row.verdict);
            if unchanged_row {
                continue;
            }
            let reason = if old_row.is_none() {
                MoveReason::NewUser
            } else if changed_set.contains(&row.user) {
                MoveReason::TraceDrift
            } else if !row.verdict.is_feasible() && dataset_point_moved {
                MoveReason::FallbackAnchorMoved
            } else {
                MoveReason::ModelShift
            };
            moved.push(MovedUser {
                user: row.user,
                reason,
                old_point: old_row.map(|old| old.point.clone()),
                old_verdict: old_row.map(|old| old.verdict.clone()),
                new_point: row.point.clone(),
                new_verdict: row.verdict.clone(),
            });
        }

        let report = RefreshReport {
            changed_users,
            removed_users,
            cache_hits: stats.hits,
            remeasured: stats.misses,
            refitted,
            dataset_point_moved,
            moved,
            warnings: stats.warnings,
        };
        Ok((refreshed, report))
    }

    /// Hold-out validation of the fitted models: split the dataset by
    /// alternating traces, fit on one half, and measure the per-metric
    /// prediction error on the other — exactly
    /// [`HoldOutValidator::validate`] with this study's sweep plan (at
    /// dataset grain; the split sweeps need no per-user curves).
    ///
    /// # Errors
    ///
    /// Propagates [`HoldOutValidator::validate`] errors (fewer than two
    /// traces, sweep or modeling failures on a split half).
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use geopriv::prelude::*;
    /// use geopriv::AutoConf;
    /// use rand::SeedableRng;
    ///
    /// # fn main() -> Result<(), geopriv::Error> {
    /// # let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    /// # let dataset = TaxiFleetBuilder::new().drivers(8).duration_hours(8.0).build(&mut rng)?;
    /// let studied = AutoConf::for_system(SystemDefinition::paper_geoi())
    ///     .dataset(&dataset)
    ///     .sweep(|s| s.points(15).seed(42))
    ///     .fit()?;
    /// let report = studied.validate()?;
    /// assert!(report.is_acceptable(0.2), "models do not transfer: {report}");
    /// # Ok(())
    /// # }
    /// ```
    pub fn validate(&self) -> Result<ValidationReport, Error> {
        let plan = self.plan.clone().grain(Grain::Dataset);
        Ok(HoldOutValidator::with_plan(plan).validate(&self.system, self.dataset)?)
    }

    /// Double-checks a recommendation against the data rather than the
    /// models: instantiate the mechanism at `point`, protect `dataset` with
    /// a fresh RNG seeded from `seed`, and re-measure every suite metric
    /// directly. Returns `(metric id, measured value)` in suite order.
    ///
    /// # Errors
    ///
    /// Propagates instantiation, protection and metric errors.
    pub fn measure_at_point(
        &self,
        dataset: &Dataset,
        point: &ConfigPoint,
        seed: u64,
    ) -> Result<Vec<(MetricId, f64)>, Error> {
        let lppm = self.system.factory().instantiate_at(point)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let protected = lppm.protect_dataset(dataset, &mut rng)?;
        self.system
            .suite()
            .iter()
            .map(|metric| Ok((metric.id(), metric.evaluate(dataset, &protected)?.value())))
            .collect()
    }

    /// [`FittedAutoConf::measure_at_point`] for single-axis systems, taking
    /// the scalar parameter value directly.
    ///
    /// # Errors
    ///
    /// As [`FittedAutoConf::measure_at_point`], plus
    /// [`geopriv_core::CoreError::InvalidConfiguration`] when the system
    /// sweeps more than one axis.
    pub fn measure_at(
        &self,
        dataset: &Dataset,
        parameter: f64,
        seed: u64,
    ) -> Result<Vec<(MetricId, f64)>, Error> {
        let space = self.system.space();
        if space.single_axis().is_none() {
            return Err(geopriv_core::CoreError::InvalidConfiguration {
                reason: format!(
                    "measure_at takes one scalar, but the system sweeps ({}); use \
                     measure_at_point",
                    space.names().join(", ")
                ),
            }
            .into());
        }
        // On a one-axis system any remaining failure is the genuine one
        // (out-of-range value) — propagate it untouched.
        let point = space.point_from_coords(&[parameter]).map_err(geopriv_core::CoreError::from)?;
        self.measure_at_point(dataset, &point, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_core::{
        at_least, at_most, CoreError, GeoIndistinguishabilityFactory, GridCloakingFactory,
        PipelineFactory,
    };
    use geopriv_metrics::{
        AreaCoverage, DistortionUtility, HotspotPreservation, MetricSuite, PoiRetrieval,
        SuiteMetric,
    };
    use geopriv_mobility::generator::TaxiFleetBuilder;

    fn dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(7);
        TaxiFleetBuilder::new()
            .drivers(6)
            .duration_hours(8.0)
            .sampling_interval_s(60.0)
            .build(&mut rng)
            .unwrap()
    }

    fn composed_system() -> SystemDefinition {
        SystemDefinition::with_pair(
            Box::new(
                PipelineFactory::new()
                    .then(GeoIndistinguishabilityFactory::new())
                    .then(GridCloakingFactory::with_range(100.0, 2000.0).unwrap()),
            ),
            Box::new(PoiRetrieval::default()),
            Box::new(AreaCoverage::default()),
        )
        .unwrap()
    }

    #[test]
    fn the_facade_reproduces_the_explicit_path_exactly() {
        let dataset = dataset();
        let config = SweepConfig { points: 13, repetitions: 1, seed: 42, parallel: true };

        // Explicit path.
        let system = SystemDefinition::paper_geoi();
        let sweep = ExperimentRunner::new(config).run(&system, &dataset).unwrap();
        let fitted = Modeler::new().fit(&sweep).unwrap();
        let configurator = Configurator::new(fitted.clone());
        let explicit = configurator.recommend(&Objectives::paper_example()).unwrap();

        // Facade path.
        let studied = AutoConf::for_system(SystemDefinition::paper_geoi())
            .dataset(&dataset)
            .sweep(|s| s.points(13).repetitions(1).seed(42).parallel(true))
            .fit()
            .unwrap();
        let recommendation = studied
            .require("poi-retrieval", at_most(0.1))
            .unwrap()
            .require("area-coverage", at_least(0.8))
            .unwrap()
            .recommend()
            .unwrap();

        // Bit-identical, not merely close.
        assert_eq!(recommendation, explicit);
        assert_eq!(studied_eq_check(&dataset, config), (sweep, fitted));
    }

    /// Rebuilds the facade's intermediate state for the equality check above
    /// (the facade consumed itself through `require`).
    fn studied_eq_check(dataset: &Dataset, config: SweepConfig) -> (SweepResult, FittedSuite) {
        let studied = AutoConf::for_system(SystemDefinition::paper_geoi())
            .sweep(|s| s.points(config.points).seed(config.seed))
            .dataset(dataset)
            .fit()
            .unwrap();
        (studied.sweep_result().clone(), studied.fitted().clone())
    }

    #[test]
    fn unknown_metrics_fail_fast_at_require() {
        let dataset = dataset();
        let studied = AutoConf::for_system(SystemDefinition::paper_geoi())
            .dataset(&dataset)
            .sweep(|s| s.points(9).seed(1))
            .fit()
            .unwrap();
        let error = studied.require("poi-retrival", at_most(0.1)).err().expect("must fail");
        match error {
            Error::Core(CoreError::UnknownMetric { metric, available }) => {
                assert_eq!(metric, "poi-retrival");
                assert!(available.contains(&"poi-retrieval".to_string()));
            }
            other => panic!("expected unknown metric, got {other:?}"),
        }
    }

    #[test]
    fn recommend_without_constraints_is_a_typed_error() {
        let dataset = dataset();
        let studied = AutoConf::for_system(SystemDefinition::paper_geoi())
            .dataset(&dataset)
            .sweep(|s| s.points(9).seed(1))
            .fit()
            .unwrap();
        assert!(matches!(
            studied.recommend(),
            Err(Error::Core(CoreError::InvalidConfiguration { .. }))
        ));
    }

    #[test]
    fn a_four_metric_suite_flows_through_the_same_chain() {
        let dataset = dataset();
        let system = SystemDefinition::new(
            Box::new(geopriv_core::GeoIndistinguishabilityFactory::new()),
            MetricSuite::new(vec![
                SuiteMetric::privacy(PoiRetrieval::default()),
                SuiteMetric::utility(DistortionUtility::default()),
                SuiteMetric::utility(AreaCoverage::default()),
                SuiteMetric::utility(HotspotPreservation::default()),
            ])
            .unwrap(),
        );
        let studied = AutoConf::for_system(system)
            .dataset(&dataset)
            .sweep(|s| s.points(13).seed(5))
            .fit()
            .unwrap();
        assert_eq!(studied.sweep_result().columns.len(), 4);
        assert_eq!(studied.fitted().models.len(), 4);

        let recommendation = studied
            .require("poi-retrieval", at_most(0.3))
            .unwrap()
            .require("area-coverage", at_least(0.5))
            .unwrap()
            .recommend()
            .unwrap();
        // Every suite metric gets a prediction, constrained or not.
        assert_eq!(recommendation.predictions.len(), 4);
        // The frontier generalizes to any pair.
        let studied = AutoConf::for_system(SystemDefinition::paper_geoi())
            .dataset(&dataset)
            .sweep(|s| s.points(9).seed(5))
            .fit()
            .unwrap();
        let frontier = studied.frontier().unwrap();
        assert!(!frontier.is_empty());
    }

    #[test]
    fn a_two_axis_pipeline_flows_through_the_same_chain() {
        let dataset = dataset();
        let studied = AutoConf::for_system(composed_system())
            .dataset(&dataset)
            .sweep(|s| s.points_per_axis(5).axis_points("cell_size", 4).seed(11))
            .fit()
            .unwrap();
        // 5 epsilon values × 4 cell sizes.
        assert_eq!(studied.sweep_result().len(), 20);
        assert_eq!(studied.sweep_result().space.names(), vec!["epsilon", "cell_size"]);

        let recommendation = studied
            .require("poi-retrieval", at_most(0.6))
            .unwrap()
            .require("area-coverage", at_least(0.3))
            .unwrap()
            .recommend()
            .unwrap();
        // The recommendation is a full configuration point with predictions
        // satisfying the stated constraints.
        assert_eq!(recommendation.point.len(), 2);
        assert!(at_most(0.6)
            .is_satisfied_by(recommendation.predicted(&"poi-retrieval".into()).unwrap()));
        assert!(at_least(0.3)
            .is_satisfied_by(recommendation.predicted(&"area-coverage".into()).unwrap()));

        // measure_at refuses multi-axis systems; measure_at_point works.
        let studied = AutoConf::for_system(composed_system())
            .dataset(&dataset)
            .sweep(|s| s.points(5).seed(11))
            .fit()
            .unwrap();
        assert!(matches!(
            studied.measure_at(&dataset, 0.01, 3),
            Err(Error::Core(CoreError::InvalidConfiguration { .. }))
        ));
        let measured = studied.measure_at_point(&dataset, &recommendation.point, 3).unwrap();
        assert_eq!(measured.len(), 2);
    }

    #[test]
    fn one_at_a_time_mode_flows_through_the_facade() {
        let dataset = dataset();
        let studied = AutoConf::for_system(composed_system())
            .dataset(&dataset)
            .sweep(|s| s.one_at_a_time().points_per_axis(7).seed(13))
            .fit()
            .unwrap();
        // 7 points per axis, 2 axes, no cross terms: 14 design points.
        assert_eq!(studied.sweep_result().len(), 14);
        assert_eq!(studied.sweep_result().mode, geopriv_core::SweepMode::OneAtATime);
        // Recommendation still produces a full point.
        let recommendation =
            studied.require("poi-retrieval", at_most(0.9)).unwrap().recommend().unwrap();
        assert_eq!(recommendation.point.len(), 2);
    }

    #[test]
    fn per_user_flow_runs_through_the_facade() {
        let dataset = dataset();
        let studied = AutoConf::for_system(SystemDefinition::paper_geoi())
            .dataset(&dataset)
            .sweep(|s| s.points(13).seed(42).per_user())
            .fit()
            .unwrap()
            .require("poi-retrieval", at_most(0.6))
            .unwrap()
            .require("area-coverage", at_least(0.3))
            .unwrap();

        // The per-user grain is recorded and modeled.
        assert_eq!(studied.sweep_result().grain, geopriv_core::Grain::PerUser);
        let models = studied.per_user_models().unwrap();
        assert!(!models.is_empty());

        // The aggregate columns are bit-identical to a dataset-grain sweep
        // with the same seed — the facade's equivalence contract.
        let dataset_grain = AutoConf::for_system(SystemDefinition::paper_geoi())
            .dataset(&dataset)
            .sweep(|s| s.points(13).seed(42))
            .fit()
            .unwrap();
        assert_eq!(studied.sweep_result().columns, dataset_grain.sweep_result().columns);
        assert_eq!(studied.sweep_result().points, dataset_grain.sweep_result().points);

        // Per-user recommendation: one row per modeled user, anchored on the
        // dataset recommendation.
        let recommendation = studied.recommend_per_user().unwrap();
        assert_eq!(recommendation.dataset, studied.recommend().unwrap());
        assert_eq!(recommendation.users.len(), models.len());
        for user in &recommendation.users {
            if user.verdict.is_feasible() {
                assert!(
                    at_most(0.6).is_satisfied_by(user.predicted(&"poi-retrieval".into()).unwrap())
                );
                assert!(
                    at_least(0.3).is_satisfied_by(user.predicted(&"area-coverage".into()).unwrap())
                );
            } else {
                assert_eq!(user.point, recommendation.dataset.point);
            }
        }
    }

    #[test]
    fn per_user_recommendation_requires_a_per_user_sweep() {
        let dataset = dataset();
        let studied = AutoConf::for_system(SystemDefinition::paper_geoi())
            .dataset(&dataset)
            .sweep(|s| s.points(9).seed(1))
            .fit()
            .unwrap()
            .require("poi-retrieval", at_most(0.5))
            .unwrap();
        assert!(studied.per_user_models().is_none());
        match studied.recommend_per_user() {
            Err(Error::Core(CoreError::InvalidConfiguration { reason })) => {
                assert!(reason.contains("per_user"), "reason: {reason}");
            }
            other => panic!("expected invalid configuration, got {other:?}"),
        }
    }

    #[test]
    fn validate_wraps_the_hold_out_validator() {
        let dataset = dataset();
        let studied = AutoConf::for_system(SystemDefinition::paper_geoi())
            .dataset(&dataset)
            .sweep(|s| s.points(9).seed(13))
            .fit()
            .unwrap();
        let report = studied.validate().unwrap();
        assert_eq!(report.training_traces + report.validation_traces, dataset.len());
        assert!(report.error(&"poi-retrieval".into()).is_some());
        assert!(report.error(&"area-coverage".into()).is_some());
        // Identical to driving the validator by hand with the same plan.
        let by_hand =
            geopriv_core::HoldOutValidator::with_plan(geopriv_core::SweepPlan::grid(SweepConfig {
                points: 9,
                repetitions: 1,
                seed: 13,
                parallel: true,
            }))
            .validate(studied.system(), &dataset)
            .unwrap();
        assert_eq!(report, by_hand);
    }

    #[test]
    fn measure_at_reevaluates_every_suite_metric() {
        let dataset = dataset();
        let studied = AutoConf::for_system(SystemDefinition::paper_geoi())
            .dataset(&dataset)
            .sweep(|s| s.points(9).seed(3))
            .fit()
            .unwrap();
        let measured = studied.measure_at(&dataset, 0.01, 99).unwrap();
        assert_eq!(measured.len(), 2);
        assert_eq!(measured[0].0, MetricId::new("poi-retrieval"));
        for (_, value) in &measured {
            assert!((0.0..=1.0).contains(value));
        }
        // Deterministic in the seed.
        assert_eq!(measured, studied.measure_at(&dataset, 0.01, 99).unwrap());
    }
}
