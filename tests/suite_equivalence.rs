//! The redesign's equivalence contract: the `MetricSuite` column-store path
//! must reproduce the pre-redesign 2-metric pipeline bit-for-bit on the paper
//! workload.
//!
//! The legacy algorithm (one privacy metric + one utility metric, evaluated
//! per `(point, repetition)` against a protection seeded by
//! `derive_unit_seed`, then averaged in repetition order) is re-derived
//! inline here, straight from the metric traits — independently of
//! `ExperimentRunner` — and every suite-path artifact (sweep columns,
//! recommendation, campaign cells, facade output) is compared against it
//! exactly, never approximately.

use geopriv::prelude::*;
use geopriv::AutoConf;
use geopriv_core::derive_unit_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn taxi_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    TaxiFleetBuilder::new()
        .drivers(4)
        .duration_hours(6.0)
        .sampling_interval_s(60.0)
        .build(&mut rng)
        .expect("static generator configuration is valid")
}

fn privacy_id() -> MetricId {
    MetricId::new("poi-retrieval")
}

fn utility_id() -> MetricId {
    MetricId::new("area-coverage")
}

/// The pre-redesign measurement loop, re-derived from first principles: for
/// every sweep value, protect with the `derive_unit_seed` stream and evaluate
/// the two paper metrics directly (no prepared state, no column store).
/// Returns `(parameters, privacy means, utility means)`.
fn legacy_pair_sweep(dataset: &Dataset, config: SweepConfig) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let system = SystemDefinition::paper_geoi();
    let values = system.parameter().sweep(config.points);
    let privacy_metric = PoiRetrieval::default();
    let utility_metric = AreaCoverage::default();
    let mut privacy_means = Vec::new();
    let mut utility_means = Vec::new();
    for (point, &value) in values.iter().enumerate() {
        let lppm = system.factory().instantiate(value).expect("value is in range");
        let mut privacy_runs = Vec::new();
        let mut utility_runs = Vec::new();
        for repetition in 0..config.repetitions {
            let mut rng = StdRng::seed_from_u64(derive_unit_seed(config.seed, point, repetition));
            let protected = lppm.protect_dataset(dataset, &mut rng).expect("protection succeeds");
            privacy_runs
                .push(privacy_metric.evaluate(dataset, &protected).expect("metric").value());
            utility_runs
                .push(utility_metric.evaluate(dataset, &protected).expect("metric").value());
        }
        privacy_means.push(privacy_runs.iter().sum::<f64>() / privacy_runs.len() as f64);
        utility_means.push(utility_runs.iter().sum::<f64>() / utility_runs.len() as f64);
    }
    (values, privacy_means, utility_means)
}

#[test]
fn the_suite_path_reproduces_the_legacy_pair_sweep_bit_for_bit() {
    let dataset = taxi_dataset(2016);
    let config = SweepConfig { points: 9, repetitions: 2, seed: 77, parallel: true };

    let (parameters, privacy, utility) = legacy_pair_sweep(&dataset, config);
    let sweep = ExperimentRunner::new(config)
        .run(&SystemDefinition::paper_geoi(), &dataset)
        .expect("sweep succeeds");

    assert_eq!(sweep.parameters(), parameters);
    assert_eq!(sweep.values(&privacy_id()).expect("privacy column"), privacy.as_slice());
    assert_eq!(sweep.values(&utility_id()).expect("utility column"), utility.as_slice());
}

#[test]
fn campaigns_reproduce_the_legacy_pair_sweep_bit_for_bit() {
    let dataset = taxi_dataset(5);
    let config = SweepConfig { points: 5, repetitions: 2, seed: 11, parallel: true };

    let (parameters, privacy, utility) = legacy_pair_sweep(&dataset, config);
    let campaign = CampaignRunner::new(config)
        .run(&[SystemDefinition::paper_geoi()], std::slice::from_ref(&dataset))
        .expect("campaign succeeds");
    let cell = campaign.get(0, 0).expect("cell exists");

    assert_eq!(cell.parameters(), parameters);
    assert_eq!(cell.values(&privacy_id()).expect("privacy column"), privacy.as_slice());
    assert_eq!(cell.values(&utility_id()).expect("utility column"), utility.as_slice());
}

#[test]
fn growing_the_suite_never_perturbs_the_existing_columns() {
    // The ≥3-metric acceptance workload: POI retrieval + distortion + area
    // coverage + hotspot preservation in one sweep. Protection draws its RNG
    // stream per (point, repetition) — never per metric — so adding metrics
    // must leave the paper pair's columns bit-identical.
    let dataset = taxi_dataset(7);
    let config = SweepConfig { points: 7, repetitions: 1, seed: 3, parallel: true };

    let pair = ExperimentRunner::new(config)
        .run(&SystemDefinition::paper_geoi(), &dataset)
        .expect("pair sweep succeeds");

    let suite = MetricSuite::new(vec![
        SuiteMetric::privacy(PoiRetrieval::default()),
        SuiteMetric::utility(DistortionUtility::default()),
        SuiteMetric::utility(AreaCoverage::default()),
        SuiteMetric::utility(HotspotPreservation::default()),
    ])
    .expect("distinct ids");
    let four = ExperimentRunner::new(config)
        .run(
            &SystemDefinition::new(Box::new(GeoIndistinguishabilityFactory::new()), suite),
            &dataset,
        )
        .expect("4-metric sweep succeeds");

    assert_eq!(four.columns.len(), 4);
    assert_eq!(four.parameters(), pair.parameters());
    assert_eq!(four.column(&privacy_id()), pair.column(&privacy_id()));
    assert_eq!(four.column(&utility_id()), pair.column(&utility_id()));
    // And the extra columns are real measurements, not placeholders.
    for id in ["distortion-utility", "hotspot-preservation"] {
        let column = four.column(&id.into()).expect("extra column exists");
        assert!(column.means.iter().all(|v| (0.0..=1.0).contains(v)));
    }
}

#[test]
fn recommendations_on_the_suite_path_match_a_legacy_style_inversion() {
    let dataset = taxi_dataset(2016);
    let config = SweepConfig { points: 13, repetitions: 1, seed: 42, parallel: true };
    let system = SystemDefinition::paper_geoi();
    let sweep = ExperimentRunner::new(config).run(&system, &dataset).expect("sweep succeeds");
    let fitted = Modeler::new().fit(&sweep).expect("modeling succeeds");

    // Legacy-style inversion, derived from the fitted models by hand: clip
    // each constraint's critical parameter to the shared domain and intersect
    // (exactly what the old hard-wired privacy/utility configurator did).
    let privacy_model =
        &fitted.model(&privacy_id()).expect("privacy model").axis().expect("1-D fit").model;
    let utility_model =
        &fitted.model(&utility_id()).expect("utility model").axis().expect("1-D fit").model;
    let domain = {
        let p = privacy_model.domain();
        let u = utility_model.domain();
        (p.0.max(u.0), p.1.min(u.1))
    };
    let privacy_interval =
        (domain.0, privacy_model.invert(0.30).expect("invertible").min(domain.1));
    let utility_interval =
        (utility_model.invert(0.50).expect("invertible").max(domain.0), domain.1);
    let feasible =
        (privacy_interval.0.max(utility_interval.0), privacy_interval.1.min(utility_interval.1));
    let expected_parameter = (feasible.0 * feasible.1).sqrt();

    let objectives = Objectives::new()
        .require("poi-retrieval", at_most(0.30))
        .expect("valid")
        .require("area-coverage", at_least(0.50))
        .expect("valid");
    let recommendation =
        Configurator::new(fitted.clone()).recommend(&objectives).expect("feasible");
    assert_eq!(recommendation.feasible_range(), feasible);
    assert_eq!(recommendation.parameter(), expected_parameter);
    assert_eq!(
        recommendation.predicted(&privacy_id()).expect("prediction"),
        privacy_model.predict(expected_parameter)
    );
    assert_eq!(
        recommendation.predicted(&utility_id()).expect("prediction"),
        utility_model.predict(expected_parameter)
    );
}

#[test]
fn autoconf_recommendations_land_inside_every_constraint_feasible_range() {
    let dataset = taxi_dataset(2016);
    // A grid of objective pairs: whenever the facade produces a
    // recommendation, the recommendation must satisfy each constraint's own
    // feasible interval (model prediction inside the bound) and sit inside
    // the overall feasible range.
    for (privacy_bound, utility_bound) in
        [(0.10, 0.80), (0.15, 0.70), (0.30, 0.50), (0.50, 0.30), (0.90, 0.10)]
    {
        let studied = AutoConf::for_system(SystemDefinition::paper_geoi())
            .dataset(&dataset)
            .sweep(|s| s.points(13).seed(42))
            .fit()
            .expect("fit succeeds")
            .require("poi-retrieval", at_most(privacy_bound))
            .expect("known metric")
            .require("area-coverage", at_least(utility_bound))
            .expect("known metric");
        match studied.recommend() {
            Ok(r) => {
                assert!(
                    r.feasible_range().0 <= r.parameter() && r.parameter() <= r.feasible_range().1,
                    "({privacy_bound}, {utility_bound}): {r}"
                );
                let predicted_privacy = r.predicted(&privacy_id()).expect("prediction");
                let predicted_utility = r.predicted(&utility_id()).expect("prediction");
                assert!(
                    at_most(privacy_bound).is_satisfied_by(predicted_privacy),
                    "({privacy_bound}, {utility_bound}): predicted privacy {predicted_privacy}"
                );
                assert!(
                    at_least(utility_bound).is_satisfied_by(predicted_utility),
                    "({privacy_bound}, {utility_bound}): predicted utility {predicted_utility}"
                );
            }
            Err(geopriv::Error::Core(CoreError::Infeasible { .. })) => {
                // Conflicting objectives are a legitimate outcome.
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
}
