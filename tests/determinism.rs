//! Deterministic-seeding smoke tests: the whole framework is seeded, so the
//! same seed must reproduce the same outputs bit-for-bit across runs. The
//! paper's methodology (sweep → model → invert → verify) depends on this:
//! re-measuring at the recommended configuration is only meaningful when the
//! measurement pipeline itself is reproducible.

use geopriv::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn taxi_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    TaxiFleetBuilder::new()
        .drivers(3)
        .duration_hours(2.0)
        .sampling_interval_s(60.0)
        .build(&mut rng)
        .expect("static generator configuration is valid")
}

/// Same `StdRng` seed → identical `GeoIndistinguishability::protect_dataset`
/// output across two runs.
#[test]
fn geoi_protection_is_reproducible_under_the_same_seed() {
    let dataset = taxi_dataset(17);
    let geoi = GeoIndistinguishability::new(Epsilon::new(0.01).expect("valid epsilon"));

    let mut rng_a = StdRng::seed_from_u64(99);
    let protected_a = geoi.protect_dataset(&dataset, &mut rng_a).expect("protection succeeds");
    let mut rng_b = StdRng::seed_from_u64(99);
    let protected_b = geoi.protect_dataset(&dataset, &mut rng_b).expect("protection succeeds");

    assert_eq!(protected_a, protected_b);

    // And a different seed really does produce different noise (otherwise the
    // equality above would be vacuous).
    let mut rng_c = StdRng::seed_from_u64(100);
    let protected_c = geoi.protect_dataset(&dataset, &mut rng_c).expect("protection succeeds");
    assert_ne!(protected_a, protected_c);
}

/// Dataset generation itself is a pure function of its seed.
#[test]
fn taxi_generator_is_reproducible_under_the_same_seed() {
    assert_eq!(taxi_dataset(23), taxi_dataset(23));
    assert_ne!(taxi_dataset(23), taxi_dataset(24));
}

/// The full sweep (which runs on multiple threads when `parallel` is set)
/// still produces seed-deterministic measurements: parallel and sequential
/// execution derive identical per-point RNGs.
#[test]
fn parallel_and_sequential_sweeps_measure_identically() {
    let dataset = taxi_dataset(5);
    let system = SystemDefinition::paper_geoi();
    let run = |parallel: bool| {
        ExperimentRunner::new(SweepConfig { points: 4, repetitions: 1, seed: 11, parallel })
            .run(&system, &dataset)
            .expect("sweep succeeds")
    };
    let a = run(true);
    let b = run(false);
    assert_eq!(a, b);
    assert_eq!(a.values(&"poi-retrieval".into()), b.values(&"poi-retrieval".into()));
    assert_eq!(a.values(&"area-coverage".into()), b.values(&"area-coverage".into()));
}

/// The systems of the campaign determinism tests: the paper's GEO-I system
/// plus a Gaussian-perturbation variant sharing the same metric pair.
fn campaign_systems() -> Vec<SystemDefinition> {
    vec![
        SystemDefinition::paper_geoi(),
        SystemDefinition::with_pair(
            Box::new(GaussianPerturbationFactory::new()),
            Box::new(PoiRetrieval::default()),
            Box::new(AreaCoverage::default()),
        )
        .expect("distinct metric names"),
    ]
}

/// A campaign over several systems and datasets returns, cell by cell, the
/// exact `SweepResult` that an independent `ExperimentRunner::run` with the
/// same configuration produces — bit for bit, whether the campaign pool runs
/// parallel or sequential. This is the contract that makes the campaign
/// engine a pure optimization: shared prepared metric state and work-stealing
/// scheduling must never leak into the measurements.
#[test]
fn campaigns_match_independent_runs_bit_for_bit() {
    let systems = campaign_systems();
    let datasets = [taxi_dataset(5), taxi_dataset(6)];

    for parallel in [true, false] {
        let config = SweepConfig { points: 5, repetitions: 2, seed: 11, parallel };
        let campaign =
            CampaignRunner::new(config).run(&systems, &datasets).expect("campaign succeeds");
        assert_eq!(campaign.len(), systems.len() * datasets.len());

        for (s, system) in systems.iter().enumerate() {
            for (d, dataset) in datasets.iter().enumerate() {
                let independent =
                    ExperimentRunner::new(config).run(system, dataset).expect("sweep succeeds");
                assert_eq!(
                    campaign.get(s, d).expect("cell exists"),
                    &independent,
                    "system {s} on dataset {d} diverged (parallel = {parallel})"
                );
            }
        }
    }
}

/// Adaptive sweeps — whose refinement points are *planned* from fitted
/// models mid-run — remain seed-deterministic across the parallel and
/// sequential execution paths: point-identity seeding ties every
/// measurement to its coordinates, not to scheduling.
#[test]
fn adaptive_parallel_and_sequential_sweeps_measure_identically() {
    let dataset = taxi_dataset(5);
    let system = SystemDefinition::paper_geoi();
    let run = |parallel: bool| {
        let config = SweepConfig { points: 5, repetitions: 1, seed: 11, parallel };
        ExperimentRunner::with_plan(SweepPlan::adaptive(config, 9))
            .run(&system, &dataset)
            .expect("adaptive sweep succeeds")
    };
    let a = run(true);
    let b = run(false);
    assert_eq!(a, b);
    assert!(a.len() > 5, "refinement spent its budget: {} points", a.len());
    assert_eq!(a.mode, SweepMode::Adaptive);
}

/// Parallel and sequential campaign execution are interchangeable.
#[test]
fn parallel_and_sequential_campaigns_measure_identically() {
    let systems = campaign_systems();
    let datasets = [taxi_dataset(7)];
    let run = |parallel: bool| {
        CampaignRunner::new(SweepConfig { points: 4, repetitions: 2, seed: 3, parallel })
            .run(&systems, &datasets)
            .expect("campaign succeeds")
    };
    let a = run(true);
    let b = run(false);
    for (run_a, run_b) in a.runs.iter().zip(&b.runs) {
        assert_eq!(run_a.system_index, run_b.system_index);
        assert_eq!(run_a.dataset_index, run_b.dataset_index);
        assert_eq!(run_a.result, run_b.result);
    }
}
