//! Golden-file tests of the JSON exporters: the rendered bytes of a fully
//! deterministic synthetic study are pinned under `tests/golden/`, so any
//! accidental format drift (key order, indentation, float rendering) fails
//! loudly. Regenerate intentionally with `UPDATE_GOLDEN=1 cargo test --test
//! json_export`.

use geopriv::prelude::*;
use geopriv_core::experiment::UserColumn;
use geopriv_core::report;
use geopriv_lppm::{ParameterDescriptor, ParameterScale};
use geopriv_mobility::UserId;

/// A deterministic synthetic per-user sweep (no RNG anywhere): users 1 and 2
/// follow Equation 2 with per-user shifts, user 3 has a flat utility
/// response and ends up unmodeled.
fn synthetic_per_user_sweep() -> SweepResult {
    let points = 41;
    let parameters: Vec<f64> =
        (0..points).map(|i| 1e-4 * (1.0f64 / 1e-4).powf(i as f64 / (points - 1) as f64)).collect();
    let privacy_curve = |shift: f64| -> Vec<f64> {
        parameters.iter().map(|e| (0.84 + shift + 0.17 * e.ln()).clamp(0.0, 0.45)).collect()
    };
    let utility_curve = |shift: f64| -> Vec<f64> {
        parameters.iter().map(|e| (1.21 + shift + 0.09 * e.ln()).clamp(0.2, 1.0)).collect()
    };
    let space = ConfigSpace::single(
        ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap(),
    );
    let design: Vec<_> =
        parameters.iter().map(|&value| space.point_from_coords(&[value]).unwrap()).collect();
    let columns = vec![
        MetricColumn {
            id: MetricId::new("poi-retrieval"),
            direction: Direction::LowerIsBetter,
            runs: vec![],
            means: privacy_curve(0.0),
        },
        MetricColumn {
            id: MetricId::new("area-coverage"),
            direction: Direction::HigherIsBetter,
            runs: vec![],
            means: utility_curve(0.0),
        },
    ];
    let user_columns = vec![
        UserColumn {
            id: MetricId::new("poi-retrieval"),
            direction: Direction::LowerIsBetter,
            users: vec![UserId::new(1), UserId::new(2), UserId::new(3)],
            curves: vec![privacy_curve(0.0), privacy_curve(0.05), privacy_curve(-0.02)],
        },
        UserColumn {
            id: MetricId::new("area-coverage"),
            direction: Direction::HigherIsBetter,
            users: vec![UserId::new(1), UserId::new(2), UserId::new(3)],
            curves: vec![utility_curve(0.0), utility_curve(-0.03), vec![0.5; points]],
        },
    ];
    SweepResult::with_user_columns(
        "geo-indistinguishability",
        space,
        SweepMode::Grid,
        design,
        columns,
        user_columns,
    )
    .unwrap()
}

fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden file {path}; create with UPDATE_GOLDEN=1"));
    assert_eq!(expected, actual, "{name} drifted; regenerate with UPDATE_GOLDEN=1 if intended");
}

#[test]
fn recommendation_json_matches_the_golden_file() {
    let sweep = synthetic_per_user_sweep();
    let fitted = Modeler::new().fit(&sweep).unwrap();
    let recommendation = Configurator::new(fitted).recommend(&Objectives::paper_example()).unwrap();
    check_golden("recommendation.json", &report::recommendation_to_json(&recommendation));
}

#[test]
fn recommendation_golden_file_round_trips_through_the_parser() {
    let path = format!("{}/tests/golden/recommendation.json", env!("CARGO_MANIFEST_DIR"));
    let golden = std::fs::read_to_string(&path).unwrap();
    let parsed = report::recommendation_from_json(&golden).unwrap();
    // Byte-identical re-render: the parser is the exact inverse of the
    // exporter on the pinned wire format (shortest round-trip floats).
    assert_eq!(report::recommendation_to_json(&parsed), golden);
    // And the parsed struct equals a freshly computed recommendation.
    let sweep = synthetic_per_user_sweep();
    let fitted = Modeler::new().fit(&sweep).unwrap();
    let fresh = Configurator::new(fitted).recommend(&Objectives::paper_example()).unwrap();
    assert_eq!(parsed, fresh);
}

#[test]
fn per_user_golden_file_round_trips_through_the_parser() {
    let path = format!("{}/tests/golden/per_user_recommendation.json", env!("CARGO_MANIFEST_DIR"));
    let golden = std::fs::read_to_string(&path).unwrap();
    let parsed = report::per_user_recommendation_from_json(&golden).unwrap();
    assert_eq!(report::per_user_recommendation_to_json(&parsed), golden);
    assert_eq!(parsed.users.len(), 3);
    assert_eq!(parsed.feasible_count() + parsed.fallback_count(), 3);
    // User 3 is unmodeled in the synthetic study and rides the fallback.
    let fallback = parsed.get(UserId::new(3)).unwrap();
    assert!(fallback.used_fallback());
    assert_eq!(fallback.point, parsed.dataset.point);
}

#[test]
fn per_user_recommendation_json_matches_the_golden_file() {
    let sweep = synthetic_per_user_sweep();
    let fitted = Modeler::new().fit(&sweep).unwrap();
    let per_user = Modeler::new().fit_per_user(&sweep).unwrap();
    let recommendation = Configurator::new(fitted)
        .recommend_per_user(
            &per_user,
            &Objectives::new()
                .require("poi-retrieval", at_most(0.15))
                .unwrap()
                .require("area-coverage", at_least(0.80))
                .unwrap(),
        )
        .unwrap();
    check_golden(
        "per_user_recommendation.json",
        &report::per_user_recommendation_to_json(&recommendation),
    );
}
