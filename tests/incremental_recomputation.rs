//! The incremental-recomputation contract, verified end to end:
//!
//! * **warm ≡ cold** — a warm cached run (every user served from the
//!   on-disk measurement cache) is bit-identical to the cold full run that
//!   populated it: same sweep columns, same per-user curves, same fits,
//!   same recommendation for every user;
//! * **partial warm ≡ cold** — after perturbing a few users' traces, a
//!   refresh re-measures exactly those users and still reproduces, bit for
//!   bit, what a cold full study of the changed dataset computes;
//! * **integrity** — a corrupted, truncated or version-mismatched cache
//!   file is detected via its checksum and demoted to a cold run with a
//!   warning: never a wrong result, never a panic.

use geopriv::mobility::generator::perturb_users;
use geopriv::prelude::*;
use geopriv::{AutoConf, MoveReason};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

fn taxi_dataset(drivers: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    TaxiFleetBuilder::new()
        .drivers(drivers)
        .duration_hours(4.0)
        .sampling_interval_s(120.0)
        .build(&mut rng)
        .unwrap()
}

/// A fresh, empty cache directory unique to this test and process.
fn fresh_cache_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("geopriv-inc-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn study<'a>(
    dataset: &'a Dataset,
    cache: &Path,
) -> Result<geopriv::FittedAutoConf<'a>, geopriv::Error> {
    AutoConf::for_system(SystemDefinition::paper_geoi())
        .dataset(dataset)
        .sweep(|s| s.points(9).seed(42).per_user().cached(cache))
        .fit()?
        .require("poi-retrieval", at_most(0.6))?
        .require("area-coverage", at_least(0.3))
}

#[test]
fn warm_run_is_bit_identical_to_the_cold_run_that_populated_the_cache() {
    let dataset = taxi_dataset(8, 7);
    let cache = fresh_cache_dir("warm-eq-cold");

    let cold = study(&dataset, &cache).unwrap();
    let cold_stats = cold.cache_stats().unwrap().clone();
    assert_eq!(cold_stats.hits, 0, "a fresh cache cannot hit");
    assert_eq!(cold_stats.misses, cold_stats.users);
    assert!(cold_stats.warnings.is_empty(), "{:?}", cold_stats.warnings);

    let warm = study(&dataset, &cache).unwrap();
    let warm_stats = warm.cache_stats().unwrap();
    assert!(warm_stats.fully_warm(), "expected all hits: {warm_stats:?}");
    assert_eq!(warm_stats.users, cold_stats.users);

    // Bit-identical, not merely close: columns, per-user curves, fits,
    // dataset recommendation and every user's row.
    assert_eq!(warm.sweep_result(), cold.sweep_result());
    assert_eq!(warm.per_user_models(), cold.per_user_models());
    assert_eq!(warm.recommend_per_user().unwrap(), cold.recommend_per_user().unwrap());
}

#[test]
fn refresh_reuses_unchanged_users_and_matches_a_cold_full_study() {
    let dataset = taxi_dataset(10, 11);
    let users = dataset.users();
    let perturbed = vec![users[1], users[4]];
    let drifted = perturb_users(&dataset, &perturbed, 99).unwrap();
    assert_ne!(drifted, dataset);

    let cache = fresh_cache_dir("refresh");
    let old = study(&dataset, &cache).unwrap();
    let (refreshed, report) = old.refresh(&drifted).unwrap();

    // The report names exactly the perturbed users, and the cache served
    // everyone else.
    assert_eq!(report.changed_users, perturbed);
    assert!(report.removed_users.is_empty());
    assert_eq!(report.remeasured, perturbed.len());
    assert_eq!(report.cache_hits, users.len() - perturbed.len());
    assert_eq!(report.refitted, perturbed.len());
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    for moved in &report.moved {
        // Every move has a reason consistent with the classification rules.
        match moved.reason {
            MoveReason::TraceDrift => assert!(perturbed.contains(&moved.user)),
            MoveReason::NewUser => panic!("no user was added"),
            MoveReason::FallbackAnchorMoved => {
                assert!(report.dataset_point_moved);
                assert!(!moved.new_verdict.is_feasible());
            }
            MoveReason::ModelShift => assert!(!perturbed.contains(&moved.user)),
        }
    }

    // The warm refresh is bit-identical to a cold full study of the
    // changed dataset — the workspace's warm ≡ cold contract.
    let cold_cache = fresh_cache_dir("refresh-cold");
    let cold = study(&drifted, &cold_cache).unwrap();
    assert_eq!(refreshed.sweep_result(), cold.sweep_result());
    assert_eq!(refreshed.per_user_models(), cold.per_user_models());
    assert_eq!(refreshed.recommend_per_user().unwrap(), cold.recommend_per_user().unwrap());
}

#[test]
fn refresh_requires_a_cache_and_a_per_user_sweep() {
    let dataset = taxi_dataset(6, 3);
    let no_cache = AutoConf::for_system(SystemDefinition::paper_geoi())
        .dataset(&dataset)
        .sweep(|s| s.points(9).seed(1).per_user())
        .fit()
        .unwrap()
        .require("poi-retrieval", at_most(0.6))
        .unwrap();
    assert!(no_cache.cache_stats().is_none());
    assert!(no_cache.refresh(&dataset).is_err());

    let cache = fresh_cache_dir("refresh-needs-per-user");
    let no_per_user = AutoConf::for_system(SystemDefinition::paper_geoi())
        .dataset(&dataset)
        .sweep(|s| s.points(9).seed(1).cached(cache))
        .fit()
        .unwrap()
        .require("poi-retrieval", at_most(0.6))
        .unwrap();
    assert!(no_per_user.refresh(&dataset).is_err());
}

/// Corrupts every cached sweep file in `dir` with `damage`, returning how
/// many files were touched.
fn damage_cache_files(dir: &Path, damage: impl Fn(Vec<u8>) -> Vec<u8>) -> usize {
    let mut touched = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "bin") {
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, damage(bytes)).unwrap();
            touched += 1;
        }
    }
    touched
}

#[test]
fn corrupted_truncated_or_mismatched_cache_files_fall_back_cold_with_a_warning() {
    let dataset = taxi_dataset(6, 5);

    // Flipped payload byte (checksum mismatch), truncation, and a wrong
    // magic/version header must all demote the run to cold — with the
    // result bit-identical to the genuine cold run, and a warning raised.
    type Damage = Box<dyn Fn(Vec<u8>) -> Vec<u8>>;
    let corruptions: Vec<(&str, Damage)> = vec![
        (
            "bit-flip",
            Box::new(|mut bytes: Vec<u8>| {
                let last = bytes.len() - 1;
                bytes[last] ^= 0x5a;
                bytes
            }),
        ),
        ("truncation", Box::new(|bytes: Vec<u8>| bytes[..bytes.len() / 2].to_vec())),
        (
            "version-mismatch",
            Box::new(|mut bytes: Vec<u8>| {
                bytes[..8].copy_from_slice(b"GPCACHE9");
                bytes
            }),
        ),
    ];

    for (name, damage) in corruptions {
        let cache = fresh_cache_dir(&format!("integrity-{name}"));
        let cold = study(&dataset, &cache).unwrap();
        assert!(damage_cache_files(&cache, damage) > 0, "{name}: no cache file written");

        let recovered = study(&dataset, &cache).unwrap();
        let stats = recovered.cache_stats().unwrap();
        assert_eq!(stats.hits, 0, "{name}: a damaged file must never hit");
        assert_eq!(stats.misses, stats.users, "{name}");
        assert!(!stats.warnings.is_empty(), "{name}: damage must be reported");

        assert_eq!(recovered.sweep_result(), cold.sweep_result(), "{name}");
        assert_eq!(
            recovered.recommend_per_user().unwrap(),
            cold.recommend_per_user().unwrap(),
            "{name}"
        );
    }
}

#[test]
fn incremental_refit_matches_a_full_refit_bit_for_bit() {
    use geopriv::core::{ExperimentRunner, Modeler, SweepConfig, SweepPlan};

    let dataset = taxi_dataset(8, 13);
    let users = dataset.users();
    let perturbed = vec![users[0], users[5]];
    let drifted = perturb_users(&dataset, &perturbed, 17).unwrap();

    let cache = fresh_cache_dir("refit");
    let plan = SweepPlan::grid(SweepConfig { points: 9, repetitions: 1, seed: 42, parallel: true })
        .per_user()
        .cached(&cache);
    let system = SystemDefinition::paper_geoi();
    let runner = ExperimentRunner::with_plan(plan);

    let before = runner.run_cached(&system, &dataset).unwrap().result;
    let previous = Modeler::new().fit_per_user(&before).unwrap();

    let after = runner.run_cached(&system, &drifted).unwrap().result;
    let full = Modeler::new().fit_per_user(&after).unwrap();
    let incremental = Modeler::new().refit_per_user(&after, &previous, &perturbed).unwrap();
    assert_eq!(incremental, full);
}
