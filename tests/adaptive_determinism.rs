//! Property-based determinism contract of adaptive sweep planning
//! ([`SweepMode::Adaptive`]): refinement points are *planned* from models
//! fitted mid-run, yet measurements must stay a pure function of (seed,
//! plan). Point-identity seeding is what makes this hold — every evaluation
//! derives its RNG from the point's coordinates, never from the order or
//! round in which the planner emitted it.

use geopriv::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn taxi_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    TaxiFleetBuilder::new()
        .drivers(3)
        .duration_hours(1.0)
        .sampling_interval_s(60.0)
        .build(&mut rng)
        .expect("static generator configuration is valid")
}

fn adaptive_sweep(dataset: &Dataset, seed: u64, budget: usize) -> SweepResult {
    let system = SystemDefinition::paper_geoi();
    let config = SweepConfig { points: 5, repetitions: 1, seed, parallel: true };
    ExperimentRunner::with_plan(SweepPlan::adaptive(config, budget))
        .run(&system, dataset)
        .expect("adaptive sweep succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Same seed and budget → bit-identical sweeps, including every
    /// refinement point the planner chose.
    #[test]
    fn adaptive_sweeps_are_bit_identical_under_the_same_seed(
        seed in 0u64..1_000,
        budget in 0usize..12,
    ) {
        let dataset = taxi_dataset(41);
        let a = adaptive_sweep(&dataset, seed, budget);
        let b = adaptive_sweep(&dataset, seed, budget);
        prop_assert_eq!(&a, &b);
        // The coarse pass is never traded away for refinement, and the
        // budget is a hard ceiling once it exceeds the coarse size.
        prop_assert!(a.len() >= 5);
        prop_assert!(a.len() <= budget.max(5));
    }

    /// Growing the budget must not change the values measured at points both
    /// runs share: each point's measurement is keyed by its coordinates.
    #[test]
    fn shared_points_measure_identically_across_budgets(
        seed in 0u64..1_000,
        small_budget in 6usize..9,
        extra in 1usize..4,
    ) {
        let dataset = taxi_dataset(41);
        let small = adaptive_sweep(&dataset, seed, small_budget);
        let large = adaptive_sweep(&dataset, seed, small_budget + extra);
        for (i, point) in small.points.iter().enumerate() {
            let token = point.cache_token();
            let Some(j) = large.points.iter().position(|p| p.cache_token() == token) else {
                continue;
            };
            for (sc, lc) in small.columns.iter().zip(&large.columns) {
                prop_assert_eq!(sc.means[i].to_bits(), lc.means[j].to_bits());
            }
        }
    }

    /// A budget at or below the coarse-pass size disables refinement and the
    /// run degenerates to the plain grid, bit for bit (only the mode tag
    /// records that adaptive planning was requested).
    #[test]
    fn refinement_free_adaptive_is_the_grid(
        seed in 0u64..1_000,
        budget in 0usize..6,
    ) {
        let dataset = taxi_dataset(41);
        let system = SystemDefinition::paper_geoi();
        let config = SweepConfig { points: 5, repetitions: 1, seed, parallel: true };
        let adaptive = adaptive_sweep(&dataset, seed, budget);
        let mut grid = ExperimentRunner::with_plan(SweepPlan::grid(config))
            .run(&system, &dataset)
            .expect("grid sweep succeeds");
        grid.mode = SweepMode::Adaptive;
        prop_assert_eq!(adaptive, grid);
    }
}
