//! Row-path vs column-path equivalence.
//!
//! Every shipped mechanism overrides [`Lppm::protect_view`] to write
//! protected coordinates straight into the output columns; the trait default
//! materializes each view and falls back to `protect_trace` (the historical
//! row layout). The override contract is that both paths draw from the RNG
//! in exactly the same per-record order, so a sweep over the columnar path
//! must be **bit-identical** to the same sweep forced through the row path —
//! at dataset grain and at per-user grain alike.

use geopriv::core::{
    ExperimentRunner, GeoIndistinguishabilityFactory, LppmFactory, SweepConfig, SweepPlan,
    SystemDefinition,
};
use geopriv::lppm::{ConfigPoint, ConfigSpace, Lppm, LppmError, ParameterDescriptor};
use geopriv::metrics::{AreaCoverage, PoiRetrieval};
use geopriv::mobility::{Dataset, Trace};
use geopriv::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Wraps any mechanism and strips its columnar fast path: `protect_trace`
/// delegates, but `protect_view` and `protect_dataset` deliberately stay at
/// the trait defaults, so every trace goes through the row-materializing
/// fallback.
struct ForcedRowPath(Box<dyn Lppm>);

impl Lppm for ForcedRowPath {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn parameters(&self) -> Vec<ParameterDescriptor> {
        self.0.parameters()
    }

    fn protect_trace(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, LppmError> {
        self.0.protect_trace(trace, rng)
    }

    // No protect_view / protect_dataset overrides: that is the point.
}

/// Factory wrapper instantiating [`ForcedRowPath`]-wrapped mechanisms.
struct ForcedRowPathFactory(Box<dyn LppmFactory>);

impl LppmFactory for ForcedRowPathFactory {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn space(&self) -> ConfigSpace {
        self.0.space()
    }

    fn instantiate_at(
        &self,
        point: &ConfigPoint,
    ) -> Result<Box<dyn Lppm>, geopriv::core::CoreError> {
        Ok(Box::new(ForcedRowPath(self.0.instantiate_at(point)?)))
    }
}

fn fleet(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    TaxiFleetBuilder::new()
        .drivers(4)
        .duration_hours(4.0)
        .sampling_interval_s(60.0)
        .build(&mut rng)
        .expect("static generator configuration is valid")
}

fn paired_systems() -> (SystemDefinition, SystemDefinition) {
    let columnar = SystemDefinition::with_pair(
        Box::new(GeoIndistinguishabilityFactory::new()),
        Box::new(PoiRetrieval::default()),
        Box::new(AreaCoverage::default()),
    )
    .expect("valid system");
    let row = SystemDefinition::with_pair(
        Box::new(ForcedRowPathFactory(Box::new(GeoIndistinguishabilityFactory::new()))),
        Box::new(PoiRetrieval::default()),
        Box::new(AreaCoverage::default()),
    )
    .expect("valid system");
    (columnar, row)
}

#[test]
fn forced_row_path_protection_is_bit_identical() {
    let dataset = fleet(11);
    let lppm = GeoIndistinguishability::new(Epsilon::new(0.01).expect("valid"));
    let columnar = lppm.protect_dataset(&dataset, &mut StdRng::seed_from_u64(5)).expect("protects");
    let row = ForcedRowPath(Box::new(lppm))
        .protect_dataset(&dataset, &mut StdRng::seed_from_u64(5))
        .expect("protects");
    assert_eq!(columnar, row);
}

#[test]
fn dataset_grain_sweeps_agree_across_layouts() {
    let dataset = fleet(12);
    let (columnar, row) = paired_systems();
    let config = SweepConfig { points: 5, repetitions: 2, seed: 77, parallel: true };
    let fast = ExperimentRunner::new(config).run(&columnar, &dataset).expect("sweep runs");
    let slow = ExperimentRunner::new(config).run(&row, &dataset).expect("sweep runs");
    assert_eq!(fast, slow);
}

#[test]
fn per_user_sweeps_agree_across_layouts() {
    let dataset = fleet(13);
    let (columnar, row) = paired_systems();
    let plan = SweepPlan::grid(SweepConfig { points: 5, repetitions: 1, seed: 78, parallel: true })
        .per_user();
    let fast =
        ExperimentRunner::with_plan(plan.clone()).run(&columnar, &dataset).expect("sweep runs");
    let slow = ExperimentRunner::with_plan(plan).run(&row, &dataset).expect("sweep runs");
    assert_eq!(fast, slow);
    assert!(!fast.user_columns.is_empty());
}

#[test]
fn sharded_sweeps_agree_across_layouts() {
    let dataset = fleet(14);
    let (columnar, row) = paired_systems();
    let plan = SweepPlan::grid(SweepConfig { points: 4, repetitions: 1, seed: 79, parallel: true })
        .per_user()
        .shard_users(2);
    let fast =
        ExperimentRunner::with_plan(plan.clone()).run(&columnar, &dataset).expect("sweep runs");
    let slow = ExperimentRunner::with_plan(plan).run(&row, &dataset).expect("sweep runs");
    assert_eq!(fast, slow);
}
