//! End-to-end integration test of the full framework pipeline on the
//! synthetic taxi workload: sweep → model → invert → verify, i.e. the
//! paper's three steps followed by a measurement at the recommended
//! configuration.

use geopriv::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn taxi_dataset(drivers: usize, hours: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    TaxiFleetBuilder::new()
        .drivers(drivers)
        .duration_hours(hours)
        .sampling_interval_s(60.0)
        .build(&mut rng)
        .expect("static generator configuration is valid")
}

#[test]
fn figure_1_shape_holds_on_the_synthetic_taxi_workload() {
    let dataset = taxi_dataset(6, 8.0, 1);
    let system = SystemDefinition::paper_geoi();
    let sweep =
        ExperimentRunner::new(SweepConfig { points: 9, repetitions: 1, seed: 7, parallel: true })
            .run(&system, &dataset)
            .expect("sweep succeeds");

    let privacy = sweep.privacy_values();
    let utility = sweep.utility_values();

    // Both metrics are bounded and overall increasing in epsilon (Figure 1).
    for (p, u) in privacy.iter().zip(&utility) {
        assert!((0.0..=1.0).contains(p));
        assert!((0.0..=1.0).contains(u));
    }
    assert!(privacy.last().unwrap() > privacy.first().unwrap());
    assert!(utility.last().unwrap() > utility.first().unwrap());

    // At the strongest noise almost nothing is retrievable; at the weakest
    // noise most POIs are retrievable and utility is near perfect.
    assert!(privacy[0] < 0.25, "privacy at eps=1e-4 is {}", privacy[0]);
    assert!(*privacy.last().unwrap() > 0.6, "privacy at eps=1 is {}", privacy.last().unwrap());
    assert!(utility[0] < 0.6, "utility at eps=1e-4 is {}", utility[0]);
    assert!(*utility.last().unwrap() > 0.9, "utility at eps=1 is {}", utility.last().unwrap());
}

#[test]
fn equation_2_fit_and_inversion_recover_a_usable_operating_point() {
    let dataset = taxi_dataset(8, 10.0, 2);
    let system = SystemDefinition::paper_geoi();
    let sweep =
        ExperimentRunner::new(SweepConfig { points: 13, repetitions: 1, seed: 3, parallel: true })
            .run(&system, &dataset)
            .expect("sweep succeeds");

    let fitted = Modeler::new().fit(&sweep).expect("modeling succeeds");

    // Equation 2 shape: both metrics increase with ln(epsilon), and the
    // privacy metric responds more steeply than the utility metric.
    assert!(fitted.privacy.model.slope() > 0.0);
    assert!(fitted.utility.model.slope() > 0.0);
    assert!(fitted.privacy.model.slope() > fitted.utility.model.slope());
    assert!(
        fitted.privacy.model.r_squared() > 0.6,
        "R² privacy {}",
        fitted.privacy.model.r_squared()
    );
    assert!(
        fitted.utility.model.r_squared() > 0.6,
        "R² utility {}",
        fitted.utility.model.r_squared()
    );

    // Invert for moderately strict objectives; the recommendation must fall
    // inside its own feasible range and inside the paper's epsilon range.
    let objectives = Objectives::new(
        PrivacyObjective::at_most(0.3).expect("valid"),
        UtilityObjective::at_least(0.5).expect("valid"),
    );
    let configurator = Configurator::new(fitted, system.parameter().scale());
    let recommendation = configurator.recommend(objectives).expect("objectives are feasible");
    assert!(recommendation.parameter >= recommendation.feasible_range.0);
    assert!(recommendation.parameter <= recommendation.feasible_range.1);
    assert!(recommendation.parameter > 1e-4 && recommendation.parameter < 1.0);
    assert!(recommendation.predicted_privacy <= 0.3 + 0.05);
    assert!(recommendation.predicted_utility >= 0.5 - 0.05);

    // Verify by re-measuring at the recommended epsilon. The log-linear model
    // flattens the steep part of the privacy response (the paper fits the
    // same shape), so the model may over-estimate the adversary's success —
    // that direction is conservative and acceptable. What must hold is that
    // the measured values satisfy the stated objectives (with a small
    // sampling tolerance) and that utility is predicted reasonably well.
    let lppm =
        system.factory().instantiate(recommendation.parameter).expect("instantiation succeeds");
    let mut rng = StdRng::seed_from_u64(11);
    let protected = lppm.protect_dataset(&dataset, &mut rng).expect("protection succeeds");
    let measured_privacy =
        PoiRetrieval::default().evaluate(&dataset, &protected).expect("metric succeeds");
    let measured_utility =
        AreaCoverage::default().evaluate(&dataset, &protected).expect("metric succeeds");
    assert!(
        measured_privacy.value() <= objectives.privacy.bound() + 0.1,
        "measured privacy {} violates the objective {}",
        measured_privacy.value(),
        objectives.privacy
    );
    assert!(
        measured_privacy.value() <= recommendation.predicted_privacy + 0.1,
        "model under-estimated the privacy risk: measured {} vs predicted {}",
        measured_privacy.value(),
        recommendation.predicted_privacy
    );
    assert!(
        measured_utility.value() >= objectives.utility.bound() - 0.1,
        "measured utility {} violates the objective {}",
        measured_utility.value(),
        objectives.utility
    );
    assert!(
        (measured_utility.value() - recommendation.predicted_utility).abs() < 0.2,
        "measured utility {} vs predicted {}",
        measured_utility.value(),
        recommendation.predicted_utility
    );
}

#[test]
fn infeasible_objectives_are_detected() {
    let dataset = taxi_dataset(5, 6.0, 4);
    let system = SystemDefinition::paper_geoi();
    let sweep =
        ExperimentRunner::new(SweepConfig { points: 9, repetitions: 1, seed: 5, parallel: true })
            .run(&system, &dataset)
            .expect("sweep succeeds");
    let fitted = Modeler::new().fit(&sweep).expect("modeling succeeds");
    let configurator = Configurator::new(fitted, system.parameter().scale());

    // Essentially perfect privacy and perfect utility at the same time.
    let impossible = Objectives::new(
        PrivacyObjective::at_most(0.001).expect("valid"),
        UtilityObjective::at_least(0.999).expect("valid"),
    );
    match configurator.recommend(impossible) {
        Err(CoreError::Infeasible { .. }) => {}
        other => panic!("expected infeasible objectives to be rejected, got {other:?}"),
    }
}
