//! End-to-end integration test of the full framework pipeline on the
//! synthetic taxi workload: sweep → model → invert → verify, i.e. the
//! paper's three steps followed by a measurement at the recommended
//! configuration.

use geopriv::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn taxi_dataset(drivers: usize, hours: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    TaxiFleetBuilder::new()
        .drivers(drivers)
        .duration_hours(hours)
        .sampling_interval_s(60.0)
        .build(&mut rng)
        .expect("static generator configuration is valid")
}

fn privacy_id() -> MetricId {
    MetricId::new("poi-retrieval")
}

fn utility_id() -> MetricId {
    MetricId::new("area-coverage")
}

#[test]
fn figure_1_shape_holds_on_the_synthetic_taxi_workload() {
    let dataset = taxi_dataset(6, 8.0, 1);
    let system = SystemDefinition::paper_geoi();
    let sweep =
        ExperimentRunner::new(SweepConfig { points: 9, repetitions: 1, seed: 7, parallel: true })
            .run(&system, &dataset)
            .expect("sweep succeeds");

    let privacy = sweep.values(&privacy_id()).expect("privacy column exists");
    let utility = sweep.values(&utility_id()).expect("utility column exists");

    // Both metrics are bounded and overall increasing in epsilon (Figure 1).
    for (p, u) in privacy.iter().zip(utility) {
        assert!((0.0..=1.0).contains(p));
        assert!((0.0..=1.0).contains(u));
    }
    assert!(privacy.last().unwrap() > privacy.first().unwrap());
    assert!(utility.last().unwrap() > utility.first().unwrap());

    // At the strongest noise almost nothing is retrievable; at the weakest
    // noise most POIs are retrievable and utility is near perfect.
    assert!(privacy[0] < 0.25, "privacy at eps=1e-4 is {}", privacy[0]);
    assert!(*privacy.last().unwrap() > 0.6, "privacy at eps=1 is {}", privacy.last().unwrap());
    assert!(utility[0] < 0.6, "utility at eps=1e-4 is {}", utility[0]);
    assert!(*utility.last().unwrap() > 0.9, "utility at eps=1 is {}", utility.last().unwrap());
}

#[test]
fn equation_2_fit_and_inversion_recover_a_usable_operating_point() {
    let dataset = taxi_dataset(8, 10.0, 2);
    let system = SystemDefinition::paper_geoi();
    let sweep =
        ExperimentRunner::new(SweepConfig { points: 13, repetitions: 1, seed: 3, parallel: true })
            .run(&system, &dataset)
            .expect("sweep succeeds");

    let fitted = Modeler::new().fit(&sweep).expect("modeling succeeds");
    let privacy_model =
        &fitted.model(&privacy_id()).expect("privacy model").axis().expect("1-D fit").model;
    let utility_model =
        &fitted.model(&utility_id()).expect("utility model").axis().expect("1-D fit").model;

    // Equation 2 shape: both metrics increase with ln(epsilon), and the
    // privacy metric responds more steeply than the utility metric.
    assert!(privacy_model.slope() > 0.0);
    assert!(utility_model.slope() > 0.0);
    assert!(privacy_model.slope() > utility_model.slope());
    assert!(privacy_model.r_squared() > 0.6, "R² privacy {}", privacy_model.r_squared());
    assert!(utility_model.r_squared() > 0.6, "R² utility {}", utility_model.r_squared());

    // Invert for moderately strict objectives; the recommendation must fall
    // inside its own feasible range and inside the paper's epsilon range.
    let objectives = Objectives::new()
        .require("poi-retrieval", at_most(0.3))
        .expect("valid")
        .require("area-coverage", at_least(0.5))
        .expect("valid");
    let configurator = Configurator::new(fitted);
    let recommendation = configurator.recommend(&objectives).expect("objectives are feasible");
    assert!(recommendation.parameter() >= recommendation.feasible_range().0);
    assert!(recommendation.parameter() <= recommendation.feasible_range().1);
    assert!(recommendation.parameter() > 1e-4 && recommendation.parameter() < 1.0);
    assert!(recommendation.predicted(&privacy_id()).unwrap() <= 0.3 + 0.05);
    assert!(recommendation.predicted(&utility_id()).unwrap() >= 0.5 - 0.05);

    // Verify by re-measuring at the recommended epsilon. The log-linear model
    // flattens the steep part of the privacy response (the paper fits the
    // same shape), so the model may over-estimate the adversary's success —
    // that direction is conservative and acceptable. What must hold is that
    // the measured values satisfy the stated objectives (with a small
    // sampling tolerance) and that utility is predicted reasonably well.
    let lppm =
        system.factory().instantiate_at(&recommendation.point).expect("instantiation succeeds");
    let mut rng = StdRng::seed_from_u64(11);
    let protected = lppm.protect_dataset(&dataset, &mut rng).expect("protection succeeds");
    let measured_privacy =
        PoiRetrieval::default().evaluate(&dataset, &protected).expect("metric succeeds");
    let measured_utility =
        AreaCoverage::default().evaluate(&dataset, &protected).expect("metric succeeds");
    assert!(
        measured_privacy.value() <= 0.3 + 0.1,
        "measured privacy {} violates the objective",
        measured_privacy.value(),
    );
    assert!(
        measured_privacy.value() <= recommendation.predicted(&privacy_id()).unwrap() + 0.1,
        "model under-estimated the privacy risk: measured {} vs predicted {:?}",
        measured_privacy.value(),
        recommendation.predicted(&privacy_id()),
    );
    assert!(
        measured_utility.value() >= 0.5 - 0.1,
        "measured utility {} violates the objective",
        measured_utility.value(),
    );
    assert!(
        (measured_utility.value() - recommendation.predicted(&utility_id()).unwrap()).abs() < 0.2,
        "measured utility {} vs predicted {:?}",
        measured_utility.value(),
        recommendation.predicted(&utility_id()),
    );
}

#[test]
fn the_autoconf_facade_matches_the_explicit_path_bit_for_bit() {
    let dataset = taxi_dataset(6, 8.0, 3);

    // Explicit three-step path.
    let system = SystemDefinition::paper_geoi();
    let config = SweepConfig { points: 11, repetitions: 1, seed: 17, parallel: true };
    let sweep = ExperimentRunner::new(config).run(&system, &dataset).expect("sweep succeeds");
    let fitted = Modeler::new().fit(&sweep).expect("modeling succeeds");
    let explicit = Configurator::new(fitted)
        .recommend(
            &Objectives::new()
                .require("poi-retrieval", at_most(0.3))
                .expect("valid")
                .require("area-coverage", at_least(0.5))
                .expect("valid"),
        )
        .expect("feasible");

    // Facade path with identical settings.
    let facade = AutoConf::for_system(SystemDefinition::paper_geoi())
        .dataset(&dataset)
        .sweep(|s| s.points(11).repetitions(1).seed(17))
        .fit()
        .expect("fit succeeds")
        .require("poi-retrieval", at_most(0.3))
        .expect("known metric")
        .require("area-coverage", at_least(0.5))
        .expect("known metric")
        .recommend()
        .expect("feasible");

    assert_eq!(facade, explicit);
    // The recommendation lands inside every constraint's feasible range by
    // construction; its model predictions satisfy the constraints too.
    assert!(at_most(0.3).is_satisfied_by(facade.predicted(&privacy_id()).unwrap()));
    assert!(at_least(0.5).is_satisfied_by(facade.predicted(&utility_id()).unwrap()));
}

#[test]
fn infeasible_objectives_are_detected() {
    let dataset = taxi_dataset(5, 6.0, 4);
    let system = SystemDefinition::paper_geoi();
    let sweep =
        ExperimentRunner::new(SweepConfig { points: 9, repetitions: 1, seed: 5, parallel: true })
            .run(&system, &dataset)
            .expect("sweep succeeds");
    let fitted = Modeler::new().fit(&sweep).expect("modeling succeeds");
    let configurator = Configurator::new(fitted);

    // Essentially perfect privacy and perfect utility at the same time.
    let impossible = Objectives::new()
        .require("poi-retrieval", at_most(0.001))
        .expect("valid")
        .require("area-coverage", at_least(0.999))
        .expect("valid");
    match configurator.recommend(&impossible) {
        Err(CoreError::Infeasible { .. }) => {}
        other => panic!("expected infeasible objectives to be rejected, got {other:?}"),
    }
}
