//! The configuration-space redesign's equivalence contract.
//!
//! A one-axis [`geopriv::lppm::ConfigSpace`] sweep must be **bit-identical**
//! to the pre-redesign single-scalar sweep: the legacy measurement loop
//! (sweep the descriptor, instantiate per scalar value, protect with the
//! `derive_unit_seed` stream, average repetitions in order) is re-derived
//! inline here — independently of `ExperimentRunner` — and the design
//! matrix, metric columns, campaign cells and the recommendation are
//! compared exactly, never approximately. The second half of the contract:
//! a 2-D grid study (GEO-I ε × cloaking cell size through a pipeline) runs
//! end to end through `AutoConf` and recommends a `ConfigPoint` satisfying
//! every stated constraint.

use geopriv::prelude::*;
use geopriv::AutoConf;
use geopriv_core::derive_unit_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn taxi_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    TaxiFleetBuilder::new()
        .drivers(4)
        .duration_hours(6.0)
        .sampling_interval_s(60.0)
        .build(&mut rng)
        .expect("static generator configuration is valid")
}

fn privacy_id() -> MetricId {
    MetricId::new("poi-retrieval")
}

fn utility_id() -> MetricId {
    MetricId::new("area-coverage")
}

/// The pre-redesign measurement loop, re-derived from first principles on
/// the paper system: scalar values from `ParameterDescriptor::sweep`, one
/// mechanism per value, the `derive_unit_seed` RNG stream per
/// `(point, repetition)`, direct metric evaluation, repetition-order means.
fn legacy_scalar_sweep(dataset: &Dataset, config: SweepConfig) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let system = SystemDefinition::paper_geoi();
    let values = system.parameter().sweep(config.points);
    let privacy_metric = PoiRetrieval::default();
    let utility_metric = AreaCoverage::default();
    let mut privacy_means = Vec::new();
    let mut utility_means = Vec::new();
    for (point, &value) in values.iter().enumerate() {
        let lppm = system.factory().instantiate(value).expect("value is in range");
        let mut privacy_runs = Vec::new();
        let mut utility_runs = Vec::new();
        for repetition in 0..config.repetitions {
            let mut rng = StdRng::seed_from_u64(derive_unit_seed(config.seed, point, repetition));
            let protected = lppm.protect_dataset(dataset, &mut rng).expect("protection succeeds");
            privacy_runs
                .push(privacy_metric.evaluate(dataset, &protected).expect("metric").value());
            utility_runs
                .push(utility_metric.evaluate(dataset, &protected).expect("metric").value());
        }
        privacy_means.push(privacy_runs.iter().sum::<f64>() / privacy_runs.len() as f64);
        utility_means.push(utility_runs.iter().sum::<f64>() / utility_runs.len() as f64);
    }
    (values, privacy_means, utility_means)
}

fn two_axis_system() -> SystemDefinition {
    SystemDefinition::with_pair(
        Box::new(
            PipelineFactory::new()
                .then(GeoIndistinguishabilityFactory::new())
                .then(GridCloakingFactory::with_range(100.0, 2000.0).expect("valid range")),
        ),
        Box::new(PoiRetrieval::default()),
        Box::new(AreaCoverage::default()),
    )
    .expect("distinct metric names")
}

#[test]
fn a_one_axis_config_space_sweep_is_bit_identical_to_the_scalar_sweep() {
    let dataset = taxi_dataset(2016);
    let config = SweepConfig { points: 9, repetitions: 2, seed: 77, parallel: true };

    let (parameters, privacy, utility) = legacy_scalar_sweep(&dataset, config);
    let sweep = ExperimentRunner::new(config)
        .run(&SystemDefinition::paper_geoi(), &dataset)
        .expect("sweep succeeds");

    // The design matrix is the scalar sweep, value for value, in order —
    // and both sweep modes enumerate it identically on one axis.
    assert_eq!(sweep.parameters(), parameters);
    assert_eq!(
        sweep.points.iter().map(|p| p.single().expect("one axis")).collect::<Vec<_>>(),
        parameters
    );
    let one_at_a_time = ExperimentRunner::with_plan(SweepPlan::one_at_a_time(config))
        .run(&SystemDefinition::paper_geoi(), &dataset)
        .expect("sweep succeeds");
    assert_eq!(one_at_a_time.points, sweep.points);
    assert_eq!(one_at_a_time.columns, sweep.columns);

    // The measured columns are the legacy loop's means, bit for bit.
    assert_eq!(sweep.values(&privacy_id()).expect("privacy column"), privacy.as_slice());
    assert_eq!(sweep.values(&utility_id()).expect("utility column"), utility.as_slice());
}

#[test]
fn campaign_cells_on_a_one_axis_space_match_the_scalar_sweep() {
    let dataset = taxi_dataset(5);
    let config = SweepConfig { points: 5, repetitions: 2, seed: 11, parallel: true };

    let (parameters, privacy, utility) = legacy_scalar_sweep(&dataset, config);
    let campaign = CampaignRunner::new(config)
        .run(&[SystemDefinition::paper_geoi()], std::slice::from_ref(&dataset))
        .expect("campaign succeeds");
    let cell = campaign.get(0, 0).expect("cell exists");

    assert_eq!(cell.parameters(), parameters);
    assert_eq!(cell.values(&privacy_id()).expect("privacy column"), privacy.as_slice());
    assert_eq!(cell.values(&utility_id()).expect("utility column"), utility.as_slice());
}

#[test]
fn one_axis_recommendations_match_the_analytic_scalar_inversion() {
    let dataset = taxi_dataset(2016);
    let config = SweepConfig { points: 13, repetitions: 1, seed: 42, parallel: true };
    let sweep = ExperimentRunner::new(config)
        .run(&SystemDefinition::paper_geoi(), &dataset)
        .expect("sweep succeeds");
    let fitted = Modeler::new().fit(&sweep).expect("modeling succeeds");

    // Legacy-style inversion, derived from the fitted models by hand: clip
    // each constraint's critical parameter to the shared domain, intersect,
    // and take the geometric midpoint (the axis is logarithmic).
    let privacy_model =
        &fitted.model(&privacy_id()).expect("privacy model").axis().expect("1-D fit").model;
    let utility_model =
        &fitted.model(&utility_id()).expect("utility model").axis().expect("1-D fit").model;
    let domain = {
        let p = privacy_model.domain();
        let u = utility_model.domain();
        (p.0.max(u.0), p.1.min(u.1))
    };
    let privacy_interval =
        (domain.0, privacy_model.invert(0.30).expect("invertible").min(domain.1));
    let utility_interval =
        (utility_model.invert(0.50).expect("invertible").max(domain.0), domain.1);
    let feasible =
        (privacy_interval.0.max(utility_interval.0), privacy_interval.1.min(utility_interval.1));
    let expected_parameter = (feasible.0 * feasible.1).sqrt();

    let objectives = Objectives::new()
        .require("poi-retrieval", at_most(0.30))
        .expect("valid")
        .require("area-coverage", at_least(0.50))
        .expect("valid");
    let recommendation =
        Configurator::new(fitted.clone()).recommend(&objectives).expect("feasible");
    assert_eq!(recommendation.feasible_range(), feasible);
    assert_eq!(recommendation.parameter(), expected_parameter);
    assert_eq!(recommendation.point.single(), Some(expected_parameter));
    assert_eq!(
        recommendation.predicted(&privacy_id()).expect("prediction"),
        privacy_model.predict(expected_parameter)
    );
    assert_eq!(
        recommendation.predicted(&utility_id()).expect("prediction"),
        utility_model.predict(expected_parameter)
    );
}

#[test]
fn a_two_axis_grid_study_runs_end_to_end_through_autoconf() {
    let dataset = taxi_dataset(9);
    let studied = AutoConf::for_system(two_axis_system())
        .dataset(&dataset)
        .sweep(|s| s.points_per_axis(5).seed(2016))
        .fit()
        .expect("2-D fit succeeds");

    // The full factorial was measured: 5 ε values × 5 cell sizes.
    let sweep = studied.sweep_result();
    assert_eq!(sweep.len(), 25);
    assert_eq!(sweep.space.names(), vec!["epsilon", "cell_size"]);
    assert!(sweep.columns.iter().all(|c| c.means.iter().all(|v| (0.0..=1.0).contains(v))));

    // Loose-but-real constraints on both metrics: the study must produce a
    // recommended ConfigPoint whose predictions satisfy every one of them.
    let studied = studied
        .require("poi-retrieval", at_most(0.6))
        .expect("known metric")
        .require("area-coverage", at_least(0.3))
        .expect("known metric");
    let recommendation = studied.recommend().expect("objectives are feasible");
    assert_eq!(recommendation.point.len(), 2);
    let epsilon = recommendation.point.get("epsilon").expect("epsilon axis");
    let cell = recommendation.point.get("cell_size").expect("cell_size axis");
    assert!((1e-4..=1.0).contains(&epsilon));
    assert!((100.0..=2000.0).contains(&cell));
    assert!(at_most(0.6).is_satisfied_by(recommendation.predicted(&privacy_id()).unwrap()));
    assert!(at_least(0.3).is_satisfied_by(recommendation.predicted(&utility_id()).unwrap()));

    // And the recommendation is actionable: instantiating the pipeline at
    // the recommended point and re-measuring keeps the metrics in bounds.
    let measured =
        studied.measure_at_point(&dataset, &recommendation.point, 99).expect("measure succeeds");
    assert_eq!(measured.len(), 2);
    assert!(measured.iter().all(|(_, v)| (0.0..=1.0).contains(v)));
}

#[test]
fn multi_axis_campaigns_match_independent_multi_axis_sweeps() {
    // The campaign engine follows the redesign: a 2-axis system next to a
    // 1-axis system in one campaign, each cell bit-identical to its
    // independent ExperimentRunner sweep.
    let dataset = taxi_dataset(21);
    let config = SweepConfig { points: 3, repetitions: 1, seed: 33, parallel: true };
    let systems = vec![two_axis_system(), SystemDefinition::paper_geoi()];
    let campaign = CampaignRunner::new(config)
        .run(&systems, std::slice::from_ref(&dataset))
        .expect("campaign succeeds");
    for (index, system) in systems.iter().enumerate() {
        let independent =
            ExperimentRunner::new(config).run(system, &dataset).expect("sweep succeeds");
        assert_eq!(campaign.get(index, 0).expect("cell exists"), &independent, "system {index}");
    }
    // The 2-axis cell really is the 3×3 grid.
    assert_eq!(campaign.get(0, 0).expect("cell exists").len(), 9);
}
