//! Cross-crate integration tests: persistence, mechanism composition,
//! property analysis and metric plumbing working together through the
//! umbrella crate's public API.

use geopriv::geo::Meters;
use geopriv::metrics::MeanDistortion;
use geopriv::mobility::io;
use geopriv::mobility::TraceProperties;
use geopriv::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_fleet(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    TaxiFleetBuilder::new()
        .drivers(3)
        .duration_hours(4.0)
        .sampling_interval_s(60.0)
        .build(&mut rng)
        .expect("static generator configuration is valid")
}

#[test]
fn protected_dataset_roundtrips_through_csv() {
    let dataset = small_fleet(1);
    let mut rng = StdRng::seed_from_u64(2);
    let protected = GeoIndistinguishability::new(Epsilon::new(0.02).expect("valid"))
        .protect_dataset(&dataset, &mut rng)
        .expect("protection succeeds");

    let mut buffer = Vec::new();
    io::write_csv(&protected, &mut buffer).expect("serialization succeeds");
    let reloaded = io::read_csv(buffer.as_slice()).expect("deserialization succeeds");

    assert_eq!(reloaded.user_count(), protected.user_count());
    assert_eq!(reloaded.record_count(), protected.record_count());

    // The reloaded dataset is still comparable against the original actual
    // dataset: metric values barely move despite the 6-decimal rounding of CSV.
    let utility_original =
        AreaCoverage::default().evaluate(&dataset, &protected).expect("metric succeeds").value();
    let utility_reloaded =
        AreaCoverage::default().evaluate(&dataset, &reloaded).expect("metric succeeds").value();
    assert!((utility_original - utility_reloaded).abs() < 0.02);
}

#[test]
fn pipelines_compose_mechanisms_and_degrade_both_metrics() {
    let dataset = small_fleet(3);
    let privacy_metric = PoiRetrieval::default();
    // The strict cell-overlap variant: dropping records can only lose covered
    // cells, so the pipeline's utility cannot exceed the noise-only utility.
    let utility_metric = AreaCoverage::cell_overlap();

    let geoi_only = GeoIndistinguishability::new(Epsilon::new(0.01).expect("valid"));
    let pipeline = Pipeline::new()
        .then(TemporalDownsampling::new(4).expect("valid"))
        .then(GeoIndistinguishability::new(Epsilon::new(0.01).expect("valid")));

    let mut rng = StdRng::seed_from_u64(4);
    let protected_geoi =
        geoi_only.protect_dataset(&dataset, &mut rng).expect("protection succeeds");
    let mut rng = StdRng::seed_from_u64(4);
    let protected_pipeline =
        pipeline.protect_dataset(&dataset, &mut rng).expect("protection succeeds");

    // The pipeline drops records…
    assert!(protected_pipeline.record_count() < protected_geoi.record_count());
    // …and metrics stay well defined on the thinner release stream.
    let privacy_pipeline =
        privacy_metric.evaluate(&dataset, &protected_pipeline).expect("metric succeeds");
    assert!((0.0..=1.0).contains(&privacy_pipeline.value()));

    // An aggressive pipeline (32x down-sampling, then noise) leaves too few
    // records per stop for the adversary to cluster POIs at all.
    let aggressive = Pipeline::new()
        .then(TemporalDownsampling::new(32).expect("valid"))
        .then(GeoIndistinguishability::new(Epsilon::new(0.01).expect("valid")));
    let mut rng = StdRng::seed_from_u64(4);
    let protected_aggressive =
        aggressive.protect_dataset(&dataset, &mut rng).expect("protection succeeds");
    let privacy_aggressive =
        privacy_metric.evaluate(&dataset, &protected_aggressive).expect("metric succeeds");
    assert!(
        privacy_aggressive.value() <= 0.1,
        "aggressive pipeline still leaks POIs: {}",
        privacy_aggressive.value()
    );

    // Utility of the pipeline cannot exceed the noise-only utility by much.
    let utility_geoi = utility_metric.evaluate(&dataset, &protected_geoi).expect("metric succeeds");
    let utility_pipeline =
        utility_metric.evaluate(&dataset, &protected_pipeline).expect("metric succeeds");
    assert!(utility_pipeline.value() <= utility_geoi.value() + 0.05);

    // Both protected datasets displaced records by roughly 2/epsilon meters.
    let displacement =
        MeanDistortion::new().of_datasets(&dataset, &protected_geoi).expect("distortion succeeds");
    assert!((displacement.as_f64() - 200.0).abs() < 80.0, "displacement {displacement}");
}

#[test]
fn dataset_properties_feed_the_pca_selection() {
    let mut rng = StdRng::seed_from_u64(5);
    let taxis = TaxiFleetBuilder::new()
        .drivers(5)
        .duration_hours(5.0)
        .sampling_interval_s(60.0)
        .build(&mut rng)
        .expect("valid");
    // Same sampling interval for both populations so that property carries no
    // variance and must rank below the genuinely discriminating ones.
    let commuters = CommuterBuilder::new()
        .users(5)
        .days(1)
        .sampling_interval_s(60.0)
        .first_user_id(50)
        .build(&mut rng)
        .expect("valid");
    let mut traces = taxis.to_traces();
    traces.extend(commuters.to_traces());
    let merged = Dataset::new(traces).expect("non-empty");

    let properties = DatasetProperties::compute(&merged, Meters::new(200.0)).expect("properties");
    assert_eq!(properties.rows().len(), merged.len());
    assert_eq!(properties.as_matrix()[0].len(), TraceProperties::NAMES.len());

    let selection = PropertySelector::default().select(&properties).expect("selection succeeds");
    assert!(!selection.selected_names().is_empty());
    assert!(selection.ranked.len() == TraceProperties::NAMES.len());
    // Taxi drivers travel much farther than commuters, so travelled distance
    // or coverage-related properties must rank above the sampling interval.
    let rank_of = |name: &str| {
        selection.ranked.iter().position(|p| p.name == name).expect("property is ranked")
    };
    assert!(rank_of("travelled_km") < rank_of("sampling_interval_s"));
}

#[test]
fn other_lppm_families_can_be_swept_through_the_framework() {
    // The framework is not GEO-I specific: sweep the Gaussian baseline too.
    let dataset = small_fleet(6);
    let system = SystemDefinition::with_pair(
        Box::new(GaussianPerturbationFactory::new()),
        Box::new(PoiRetrieval::default()),
        Box::new(AreaCoverage::default()),
    )
    .expect("distinct metric names");
    let sweep =
        ExperimentRunner::new(SweepConfig { points: 7, repetitions: 1, seed: 9, parallel: false })
            .run(&system, &dataset)
            .expect("sweep succeeds");

    assert_eq!(sweep.lppm_name, "gaussian-perturbation");
    assert_eq!(sweep.space.names(), vec!["sigma"]);
    // For Gaussian noise the metrics *decrease* with sigma (more noise), the
    // mirror image of the epsilon behaviour.
    let privacy = sweep.values(&"poi-retrieval".into()).expect("privacy column exists");
    let utility = sweep.values(&"area-coverage".into()).expect("utility column exists");
    assert!(privacy.first().unwrap() >= privacy.last().unwrap());
    assert!(utility.first().unwrap() > utility.last().unwrap());
}
