//! The per-user grain's equivalence contract, verified end to end:
//!
//! * a per-user sweep's *aggregate* columns are bit-identical to a
//!   dataset-grain sweep with the same seed (the grain only adds data, it
//!   never changes the numbers the rest of the framework sees);
//! * every aggregate is exactly the mean of the per-user breakdown it came
//!   from (single-repetition sweeps share the constructor's summation order,
//!   so the equality is bit-exact);
//! * the whole per-user pipeline — one sweep, N user models, one
//!   recommendation per user with an explicit verdict — holds its feasibility
//!   promises under the user's own models.

use geopriv::prelude::*;
use geopriv::AutoConf;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn taxi_dataset(drivers: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    TaxiFleetBuilder::new()
        .drivers(drivers)
        .duration_hours(4.0)
        .sampling_interval_s(60.0)
        .build(&mut rng)
        .unwrap()
}

#[test]
fn per_user_sweep_aggregates_are_bit_identical_to_dataset_grain() {
    let dataset = taxi_dataset(4, 11);
    let system = SystemDefinition::paper_geoi();
    for seed in [1u64, 42, 20161212] {
        let config = SweepConfig { points: 7, repetitions: 2, seed, parallel: true };
        let dataset_grain = ExperimentRunner::new(config).run(&system, &dataset).unwrap();
        let per_user = ExperimentRunner::with_plan(SweepPlan::grid(config).per_user())
            .run(&system, &dataset)
            .unwrap();

        // Same design matrix, same aggregate columns, byte for byte.
        assert_eq!(per_user.points, dataset_grain.points, "seed {seed}");
        assert_eq!(per_user.columns, dataset_grain.columns, "seed {seed}");
        assert_eq!(per_user.space, dataset_grain.space, "seed {seed}");
        // Only the grain and the user columns differ.
        assert_eq!(dataset_grain.grain, Grain::Dataset);
        assert_eq!(per_user.grain, Grain::PerUser);
        assert!(dataset_grain.user_columns.is_empty());
        assert_eq!(per_user.user_columns.len(), per_user.columns.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The bit-identity holds for any seed and design size, and (for
    /// single-repetition sweeps) every aggregate mean is exactly the mean of
    /// the user curves at that point.
    #[test]
    fn per_user_grain_never_changes_the_aggregates(
        seed in 0u64..1_000,
        points in 5usize..9,
        drivers in 2usize..5,
    ) {
        let dataset = taxi_dataset(drivers, seed ^ 0xD5);
        let system = SystemDefinition::paper_geoi();
        let config = SweepConfig { points, repetitions: 1, seed, parallel: true };
        let dataset_grain = ExperimentRunner::new(config).run(&system, &dataset).unwrap();
        let per_user = ExperimentRunner::with_plan(SweepPlan::grid(config).per_user())
            .run(&system, &dataset)
            .unwrap();
        prop_assert_eq!(&per_user.columns, &dataset_grain.columns);
        prop_assert_eq!(&per_user.points, &dataset_grain.points);

        for user_column in &per_user.user_columns {
            let aggregate = per_user.column(&user_column.id).unwrap();
            for point in 0..per_user.len() {
                if user_column.user_count() == 0 {
                    // Defined-zero case: no user evaluable at all.
                    prop_assert_eq!(aggregate.means[point], 0.0);
                    continue;
                }
                let mean = user_column.curves.iter().map(|c| c[point]).sum::<f64>()
                    / user_column.user_count() as f64;
                prop_assert_eq!(mean, aggregate.means[point], "{} point {}", &user_column.id, point);
            }
        }
    }
}

#[test]
fn per_user_recommendations_hold_their_feasibility_promises() {
    let dataset = taxi_dataset(6, 7);
    let system = SystemDefinition::paper_geoi();
    let plan =
        SweepPlan::grid(SweepConfig { points: 13, repetitions: 1, seed: 42, parallel: true })
            .per_user();
    let sweep = ExperimentRunner::with_plan(plan).run(&system, &dataset).unwrap();
    let fitted = Modeler::new().fit(&sweep).unwrap();
    let per_user = Modeler::new().fit_per_user(&sweep).unwrap();
    assert_eq!(per_user.len(), sweep.users().len());

    let objectives = Objectives::new()
        .require("poi-retrieval", at_most(0.6))
        .unwrap()
        .require("area-coverage", at_least(0.3))
        .unwrap();
    let configurator = Configurator::new(fitted);
    let recommendation = configurator.recommend_per_user(&per_user, &objectives).unwrap();

    assert_eq!(recommendation.users.len(), per_user.len());
    assert_eq!(
        recommendation.feasible_count() + recommendation.fallback_count(),
        recommendation.users.len()
    );
    for user in &recommendation.users {
        match &user.verdict {
            UserVerdict::Feasible => {
                // The user's own models satisfy every constraint at her point.
                assert!(
                    at_most(0.6).is_satisfied_by(user.predicted(&"poi-retrieval".into()).unwrap())
                );
                assert!(
                    at_least(0.3).is_satisfied_by(user.predicted(&"area-coverage".into()).unwrap())
                );
                // And her models really are her own: the suite fitted for her
                // predicts the same numbers.
                let suite = per_user.fitted(user.user).unwrap();
                for (id, predicted) in &user.predictions {
                    let own = suite.model(id).unwrap().predict(&user.point).unwrap();
                    assert_eq!(own, *predicted);
                }
            }
            UserVerdict::Infeasible { reason } | UserVerdict::Unmodeled { reason } => {
                assert!(!reason.is_empty());
                assert_eq!(user.point, recommendation.dataset.point);
                assert!(user.used_fallback());
            }
        }
    }

    // The facade drives exactly the same engine.
    let studied = AutoConf::for_system(SystemDefinition::paper_geoi())
        .dataset(&dataset)
        .sweep(|s| s.points(13).seed(42).per_user())
        .fit()
        .unwrap()
        .require("poi-retrieval", at_most(0.6))
        .unwrap()
        .require("area-coverage", at_least(0.3))
        .unwrap();
    assert_eq!(studied.recommend_per_user().unwrap(), recommendation);
}

#[test]
fn per_user_campaign_cells_equal_independent_per_user_sweeps() {
    let dataset = taxi_dataset(3, 21);
    let systems = [SystemDefinition::paper_geoi()];
    let plan = SweepPlan::grid(SweepConfig { points: 5, repetitions: 2, seed: 9, parallel: true })
        .per_user();
    let campaign = CampaignRunner::with_plan(plan.clone())
        .run(&systems, std::slice::from_ref(&dataset))
        .unwrap();
    let independent = ExperimentRunner::with_plan(plan).run(&systems[0], &dataset).unwrap();
    assert_eq!(campaign.get(0, 0).unwrap(), &independent);
    assert!(!independent.user_columns.is_empty());
}
