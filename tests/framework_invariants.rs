//! Property-based invariants of the framework, checked through the umbrella
//! crate's public API on small synthetic traces (kept deliberately tiny so
//! hundreds of proptest cases stay fast).

use geopriv::geo::{GeoPoint, Meters, Seconds};
use geopriv::lppm::Lppm;
use geopriv::mobility::{Record, Trace, UserId};
use geopriv::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small trace around San Francisco with `n` records every 30 s, following
/// a deterministic zig-zag controlled by `scale` (meters per step).
fn synthetic_trace(n: usize, scale: f64) -> Trace {
    let records: Vec<Record> = (0..n.max(2))
        .map(|i| {
            let dx = (i % 7) as f64 * scale;
            let dy = (i % 5) as f64 * scale;
            Record::new(
                Seconds::new(i as f64 * 30.0),
                GeoPoint::clamped(37.75 + dy / 111_000.0, -122.44 + dx / 88_000.0),
            )
        })
        .collect();
    Trace::new(UserId::new(1), records).expect("records are ordered")
}

fn synthetic_dataset(n: usize, scale: f64) -> Dataset {
    Dataset::new(vec![synthetic_trace(n, scale)]).expect("non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn geoi_preserves_structure_for_any_epsilon(
        epsilon in 1e-4f64..1.0,
        n in 2usize..120,
        scale in 0.0f64..400.0,
        seed in 0u64..1_000,
    ) {
        let dataset = synthetic_dataset(n, scale);
        let geoi = GeoIndistinguishability::new(Epsilon::new(epsilon).unwrap());
        let mut rng = StdRng::seed_from_u64(seed);
        let protected = geoi.protect_dataset(&dataset, &mut rng).unwrap();

        // Same number of users, traces, records; identical timestamps.
        prop_assert_eq!(protected.user_count(), dataset.user_count());
        prop_assert_eq!(protected.record_count(), dataset.record_count());
        for (a, p) in dataset.paired_with(&protected).unwrap() {
            for (ra, rp) in a.iter().zip(p.iter()) {
                prop_assert_eq!(ra.timestamp(), rp.timestamp());
                // Coordinates remain valid WGS-84.
                prop_assert!((-90.0..=90.0).contains(&rp.location().latitude()));
                prop_assert!((-180.0..=180.0).contains(&rp.location().longitude()));
            }
        }
    }

    #[test]
    fn metrics_are_always_bounded(
        epsilon in 1e-4f64..1.0,
        n in 8usize..150,
        scale in 0.0f64..300.0,
        seed in 0u64..1_000,
    ) {
        let dataset = synthetic_dataset(n, scale);
        let geoi = GeoIndistinguishability::new(Epsilon::new(epsilon).unwrap());
        let mut rng = StdRng::seed_from_u64(seed);
        let protected = geoi.protect_dataset(&dataset, &mut rng).unwrap();

        let privacy = PoiRetrieval::default().evaluate(&dataset, &protected).unwrap();
        let utility = AreaCoverage::default().evaluate(&dataset, &protected).unwrap();
        prop_assert!((0.0..=1.0).contains(&privacy.value()));
        prop_assert!((0.0..=1.0).contains(&utility.value()));
        for (_, v) in privacy.per_user().iter().chain(utility.per_user()) {
            prop_assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn identity_is_never_beaten_on_utility(
        epsilon in 1e-4f64..0.05,
        n in 10usize..100,
        scale in 10.0f64..300.0,
        seed in 0u64..1_000,
    ) {
        let dataset = synthetic_dataset(n, scale);
        let mut rng = StdRng::seed_from_u64(seed);
        let noisy = GeoIndistinguishability::new(Epsilon::new(epsilon).unwrap())
            .protect_dataset(&dataset, &mut rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let released = Identity::new().protect_dataset(&dataset, &mut rng).unwrap();

        let utility_noisy = AreaCoverage::default().evaluate(&dataset, &noisy).unwrap().value();
        let utility_identity = AreaCoverage::default().evaluate(&dataset, &released).unwrap().value();
        prop_assert!(utility_identity + 1e-9 >= utility_noisy);
    }

    #[test]
    fn cloaking_displacement_is_bounded_by_the_cell_diagonal(
        cell in 50.0f64..2_000.0,
        n in 2usize..80,
        scale in 0.0f64..500.0,
    ) {
        let dataset = synthetic_dataset(n, scale);
        let cloaking = GridCloaking::new(Meters::new(cell)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let protected = cloaking.protect_dataset(&dataset, &mut rng).unwrap();
        let max_allowed = cell / 2.0 * 2f64.sqrt() * 1.02;
        for (a, p) in dataset.paired_with(&protected).unwrap() {
            for (ra, rp) in a.iter().zip(p.iter()) {
                let d = geopriv::geo::distance::haversine(ra.location(), rp.location()).as_f64();
                prop_assert!(d <= max_allowed, "displacement {} exceeds {}", d, max_allowed);
            }
        }
    }

    #[test]
    fn configurator_recommendation_always_lies_in_its_feasible_range(
        privacy_bound in 0.05f64..0.95,
        utility_bound in 0.05f64..0.95,
        slope_p in 0.05f64..0.3,
        slope_u in 0.02f64..0.2,
    ) {
        // Build an analytic Equation-2-like sweep, fit it, and invert random
        // objectives; whenever a recommendation is produced it must respect
        // its own feasible range and domain.
        let parameters: Vec<f64> =
            (0..25).map(|i| 1e-4 * (1.0f64 / 1e-4).powf(i as f64 / 24.0)).collect();
        let privacy: Vec<f64> =
            parameters.iter().map(|e| (0.8 + slope_p * e.ln()).clamp(0.0, 1.0)).collect();
        let utility: Vec<f64> =
            parameters.iter().map(|e| (1.1 + slope_u * e.ln()).clamp(0.0, 1.0)).collect();
        let sweep = SweepResult::from_axis(
            "geo-indistinguishability",
            geopriv::lppm::ParameterDescriptor::new(
                "epsilon",
                1e-4,
                1.0,
                geopriv::lppm::ParameterScale::Logarithmic,
            )
            .unwrap(),
            &parameters,
            vec![
                MetricColumn {
                    id: MetricId::new("poi-retrieval"),
                    direction: Direction::LowerIsBetter,
                    means: privacy,
                    runs: vec![],
                },
                MetricColumn {
                    id: MetricId::new("area-coverage"),
                    direction: Direction::HigherIsBetter,
                    means: utility,
                    runs: vec![],
                },
            ],
        )
        .unwrap();
        let fitted = match Modeler::new().fit(&sweep) {
            Ok(f) => f,
            Err(_) => return Ok(()), // degenerate saturation layouts are allowed to fail
        };
        let configurator = Configurator::new(fitted);
        let objectives = Objectives::new()
            .require("poi-retrieval", at_most(privacy_bound))
            .unwrap()
            .require("area-coverage", at_least(utility_bound))
            .unwrap();
        match configurator.recommend(&objectives) {
            Ok(r) => {
                prop_assert!(r.feasible_range().0 <= r.feasible_range().1);
                prop_assert!(
                    r.parameter() >= r.feasible_range().0
                        && r.parameter() <= r.feasible_range().1
                );
                prop_assert!(r.parameter() > 0.0);
                // The model's own predictions at the recommendation satisfy the
                // objectives up to a small tolerance.
                let predicted_privacy = r.predicted(&MetricId::new("poi-retrieval")).unwrap();
                let predicted_utility = r.predicted(&MetricId::new("area-coverage")).unwrap();
                prop_assert!(predicted_privacy <= privacy_bound + 1e-6);
                prop_assert!(predicted_utility >= utility_bound - 1e-6);
            }
            Err(CoreError::Infeasible { .. }) => {} // conflicting objectives are a valid outcome
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        }
    }
}
