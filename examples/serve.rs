//! From recommendation to enforcement — the full hand-off: run the paper's
//! per-user configuration pipeline offline, export the resulting
//! [`geopriv::core::PerUserRecommendation`] to its JSON wire format, load it
//! into a [`geopriv::serve::GeoPrivServer`], and protect live `(user,
//! record)` updates over HTTP on a loopback port.
//!
//! The served mechanism per user is instantiated at *her* recommended
//! configuration point; users the recommendation cannot vouch for (and users
//! it has never seen) ride the dataset-level fallback, per the normative
//! policy on [`geopriv::core::UserVerdict`].
//!
//! ```text
//! cargo run --release --example serve
//! ```

use geopriv::core::report::per_user_recommendation_to_json;
use geopriv::prelude::*;
use geopriv::serve::{AssignmentRegistry, GeoPrivServer, HttpClient, ServeConfig};
use geopriv::AutoConf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Offline: sweep once at per-user grain and recommend a point per user.
    let mut rng = StdRng::seed_from_u64(2016);
    let dataset = TaxiFleetBuilder::new()
        .drivers(8)
        .duration_hours(10.0)
        .sampling_interval_s(30.0)
        .build(&mut rng)?;
    let recommendation = AutoConf::for_system(SystemDefinition::paper_geoi())
        .dataset(&dataset)
        .sweep(|s| s.points(15).seed(42).per_user())
        .fit()?
        .require("poi-retrieval", at_most(0.12))?
        .require("area-coverage", at_least(0.75))?
        .recommend_per_user()?;
    println!(
        "offline recommendation: {} users ({} feasible, {} on the dataset fallback)",
        recommendation.users.len(),
        recommendation.feasible_count(),
        recommendation.fallback_count()
    );

    // The hand-off is a document, not a data structure: the server loads the
    // same JSON the offline pipeline exports (and rejects tampered copies).
    let wire = per_user_recommendation_to_json(&recommendation);
    let registry = AssignmentRegistry::from_json(
        Box::new(GeoIndistinguishabilityFactory::new()),
        &wire,
        20161212, // master seed: fixes every user's protection stream.
    )?;
    println!("registry loaded: {} per-user assignments", registry.assigned_users());

    // Online: a real server on an ephemeral loopback port.
    let server = GeoPrivServer::start(registry, &ServeConfig::default())?;
    println!("serving on http://{}", server.local_addr());
    let mut client = HttpClient::connect(server.local_addr())?;

    // Ask which mechanism configuration two users got...
    for user in [1_u64, 424_242] {
        let (status, body) = client.get(&format!("/assignment/{user}"))?;
        println!("GET /assignment/{user} -> {status} {body}");
    }

    // ...then protect a short stream of updates for user 1.
    for i in 0..3 {
        let body = format!(
            "{{\"user\": 1, \"t\": {}, \"lat\": {}, \"lon\": -122.44}}",
            f64::from(i) * 30.0,
            37.762 + f64::from(i) * 1e-4
        );
        let (status, released) = client.post("/protect", &body)?;
        println!("POST /protect -> {status} {released}");
    }

    // The middleware stack counted everything above.
    let (_, metrics) = client.get("/metrics")?;
    for line in metrics.lines().filter(|l| l.starts_with("geopriv_requests_total")) {
        println!("{line}");
    }

    server.shutdown();
    Ok(())
}
