//! Incremental recomputation — the warm path end to end: a cached per-user
//! study, a handful of drivers whose traces drift, and a
//! [`geopriv::FittedAutoConf::refresh`] that re-measures *only* the drifted
//! drivers while everyone else is served from the on-disk measurement cache.
//!
//! Run it twice: the first run is cold (every user measured, the cache
//! populated under `.geopriv-cache/`), the second is warm (users load from
//! disk). Both runs print the same recommendations digest — the warm ≡ cold
//! contract made grep-able, which is exactly what the CI smoke job checks.
//!
//! ```text
//! cargo run --release --example incremental
//! cargo run --release --example incremental   # warm: users come from cache
//! ```
//!
//! Delete `.geopriv-cache/` to force a cold run again.

use geopriv::mobility::generator::{perturb_users, scaled};
use geopriv::prelude::*;
use geopriv::AutoConf;

/// FNV-1a over `text` — a stable digest for comparing recommendation
/// tables across runs without diffing the whole rendering.
fn digest(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash = (hash ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down taxi fleet; the measurement cache lives next to the
    // repo (gitignored), so repeated runs of this example stay warm.
    let cache = std::path::Path::new(".geopriv-cache");
    let dataset = scaled(60, 2016)?;
    println!("dataset: {} drivers, {} records", dataset.user_count(), dataset.record_count());

    // The cached per-user study: cold on the first run, warm afterwards —
    // either way, bit-identical results (the warm ≡ cold contract).
    let studied = AutoConf::for_system(SystemDefinition::paper_geoi())
        .dataset(&dataset)
        .sweep(|s| s.points(11).seed(42).per_user().cached(cache))
        .fit()?
        .require("poi-retrieval", at_most(0.6))?
        .require("area-coverage", at_least(0.3))?;
    let stats = studied.cache_stats().expect("cached sweep").clone();
    println!(
        "cache: {} of {} users served from cache, {} re-measured",
        stats.hits, stats.users, stats.misses
    );
    for warning in &stats.warnings {
        println!("cache warning: {warning}");
    }

    let recommendation = studied.recommend_per_user()?;
    let table = geopriv::core::report::per_user_csv(&recommendation);
    println!("recommendations digest: {:016x}", digest(&table));
    println!(
        "dataset point: {}; {} of {} users feasible on their own models",
        recommendation.dataset.point,
        recommendation.feasible_count(),
        recommendation.users.len()
    );
    println!();

    // A few drivers' traces drift (about 5 % of the fleet); refresh the
    // study: unchanged drivers ride the cache, drifted ones are re-measured
    // and refitted, and the report names every recommendation that moved.
    let users = dataset.users();
    let drifting: Vec<UserId> = users.iter().copied().step_by(20).collect();
    let drifted = perturb_users(&dataset, &drifting, 7)?;
    let (refreshed, report) = studied.refresh(&drifted)?;
    println!("refresh of {} drifted driver(s): {report}", drifting.len());
    for moved in report.moved.iter().take(8) {
        println!(
            "  {} moved [{}]: {} -> {} ({})",
            moved.user,
            moved.reason.label(),
            moved.old_point.as_ref().map_or_else(|| "none".to_string(), ToString::to_string),
            moved.new_point,
            moved.new_verdict.label()
        );
    }
    if report.moved.len() > 8 {
        println!("  ... and {} more", report.moved.len() - 8);
    }

    let after = refreshed.recommend_per_user()?;
    let after_table = geopriv::core::report::per_user_csv(&after);
    println!("refreshed recommendations digest: {:016x}", digest(&after_table));
    Ok(())
}
