//! Dataset-property analysis: compute the candidate `d_j` properties of two
//! very different workloads (taxi fleet vs commuters) and run the framework's
//! PCA-based selection to see which properties carry the variance.
//!
//! ```text
//! cargo run --release --example dataset_properties
//! ```

use geopriv::geo::Meters;
use geopriv::mobility::TraceProperties;
use geopriv::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(12);

    let taxis = TaxiFleetBuilder::new()
        .drivers(8)
        .duration_hours(10.0)
        .sampling_interval_s(60.0)
        .build(&mut rng)?;
    let commuters = CommuterBuilder::new()
        .users(8)
        .days(1)
        .sampling_interval_s(120.0)
        .first_user_id(100)
        .build(&mut rng)?;

    println!("== Mean per-user properties ==");
    println!("{:<24} {:>12} {:>12}", "property", "taxis", "commuters");
    let taxi_props = DatasetProperties::compute(&taxis, Meters::new(200.0))?;
    let commuter_props = DatasetProperties::compute(&commuters, Meters::new(200.0))?;
    for (i, name) in TraceProperties::NAMES.iter().enumerate() {
        println!(
            "{:<24} {:>12.2} {:>12.2}",
            name,
            taxi_props.means()[i],
            commuter_props.means()[i]
        );
    }

    // Merge both populations and let the PCA rank the properties.
    let mut traces = taxis.to_traces();
    traces.extend(commuters.to_traces());
    let merged = Dataset::new(traces)?;
    let merged_props = DatasetProperties::compute(&merged, Meters::new(200.0))?;
    let selection = PropertySelector::default().select(&merged_props)?;

    println!();
    println!("== PCA-based selection over the merged population ==");
    println!("{selection}");
    println!("selected: {:?}", selection.selected_names());
    Ok(())
}
