//! The explicit, step-by-step path through the framework — what the
//! [`geopriv::AutoConf`] facade (see `examples/configure_geoi.rs`) drives
//! underneath. Useful when a study needs to inspect or persist the
//! intermediate artifacts: the raw sweep, the fitted models, the frontier.
//!
//! ```text
//! cargo run --release --example step_by_step
//! ```

use geopriv::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2016);
    let dataset = TaxiFleetBuilder::new()
        .drivers(10)
        .duration_hours(10.0)
        .sampling_interval_s(30.0)
        .build(&mut rng)?;
    println!("dataset: {} drivers, {} records", dataset.user_count(), dataset.record_count());

    // Step 1 — system definition.
    let system = SystemDefinition::paper_geoi();
    println!("system: {system:?}");

    // Step 2a — measurement: sweep epsilon, one column per suite metric.
    let sweep =
        ExperimentRunner::new(SweepConfig { points: 15, repetitions: 1, seed: 42, parallel: true })
            .run(&system, &dataset)?;
    println!();
    println!("{}", report::sweep_to_table(&sweep));

    // Step 2b — modeling: detect each metric's non-saturated zone and fit
    // the invertible log-linear model of Equation 2.
    let fitted = Modeler::new().fit(&sweep)?;
    println!("{}", report::suite_report(&fitted));

    // The measured trade-off frontier: which objective pairs are reachable.
    let frontier = ParetoFrontier::from_sweep(&sweep)?;
    println!("frontier has {} non-dominated points; knee:", frontier.len());
    if let Some(knee) = frontier.knee() {
        println!("  {knee}");
    }

    // Step 3 — configuration: per-metric constraints, then inversion.
    let objectives = Objectives::new()
        .require("poi-retrieval", at_most(0.10))?
        .require("area-coverage", at_least(0.80))?;
    println!("objectives: {objectives}");
    let configurator = Configurator::new(fitted);
    match configurator.recommend(&objectives) {
        Ok(recommendation) => println!("{}", report::recommendation_report(&recommendation)),
        Err(CoreError::Infeasible { reason }) => {
            println!("the requested objectives cannot be met on this dataset: {reason}");
        }
        Err(other) => return Err(other.into()),
    }
    Ok(())
}
