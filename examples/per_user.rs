//! Per-user configuration — the paper's headline scenario: *one* sweep of
//! the configuration space yields a privacy/utility curve per user, and
//! every user gets her own recommended operating point.
//!
//! The example sweeps GEO-I's ε once at per-user grain, fits one model per
//! (user, metric) from the shared sweep, recommends a `ConfigPoint` per user
//! under the stated objectives, prints the per-user table (including the
//! documented fallback policy for infeasible users), and then *verifies* the
//! promise: each feasible user's traces are re-protected at her own ε and
//! every constraint is re-checked against the measured values.
//!
//! ```text
//! cargo run --release --example per_user
//! ```

use geopriv::prelude::*;
use geopriv::AutoConf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The fleet to protect — one trace per driver.
    let mut rng = StdRng::seed_from_u64(2016);
    let dataset = TaxiFleetBuilder::new()
        .drivers(8)
        .duration_hours(10.0)
        .sampling_interval_s(30.0)
        .build(&mut rng)?;
    println!("dataset: {} drivers, {} records", dataset.user_count(), dataset.record_count());

    // One sweep at per-user grain: the aggregate columns are bit-identical
    // to a dataset-grain sweep, and every user's own response curves are
    // recorded on the side.
    let privacy_bound = at_most(0.12);
    let utility_bound = at_least(0.75);
    let studied = AutoConf::for_system(SystemDefinition::paper_geoi())
        .dataset(&dataset)
        .sweep(|s| s.points(15).seed(42).per_user())
        .fit()?
        .require("poi-retrieval", privacy_bound)?
        .require("area-coverage", utility_bound)?;

    let models = studied.per_user_models().expect("per-user sweep");
    println!(
        "one sweep, {} user models ({} users modeled, {} not)",
        models.len(),
        models.fitted_count(),
        models.len() - models.fitted_count()
    );
    println!("objectives: {}", studied.objectives());
    println!();

    // One recommendation per user, with an explicit feasibility verdict.
    // Fallback policy: infeasible and unmodeled users get the dataset-level
    // point — the best configuration the population models can justify.
    let recommendation = studied.recommend_per_user()?;
    println!("{}", geopriv::core::report::per_user_table(&recommendation));

    // Verify the promise against the data, not the models: re-protect each
    // user's own traces at her recommended point and re-measure both
    // metrics.
    println!("re-measured per user (seed 7):");
    for user in &recommendation.users {
        let traces = dataset.traces_of(user.user);
        let single = Dataset::new(traces.into_iter().map(|t| t.to_trace()).collect())?;
        let measured = studied.measure_at_point(&single, &user.point, 7)?;
        let privacy = measured[0].1;
        let utility = measured[1].1;
        println!(
            "  {:>8} [{:>10}]  epsilon = {:.5}  poi-retrieval = {:.3}  area-coverage = {:.3}",
            user.user.to_string(),
            user.verdict.label(),
            user.point.single().expect("one-axis system"),
            privacy,
            utility
        );
        if user.verdict.is_feasible() {
            assert!(
                privacy_bound.is_satisfied_by(privacy),
                "{}: measured poi-retrieval {privacy:.3} violates {privacy_bound}",
                user.user
            );
            assert!(
                utility_bound.is_satisfied_by(utility),
                "{}: measured area-coverage {utility:.3} violates {utility_bound}",
                user.user
            );
        }
    }
    println!();
    println!("every feasible user's point satisfies both constraints under re-measurement.");

    // The same table, machine-consumable.
    println!();
    println!("CSV:\n{}", geopriv::core::report::per_user_csv(&recommendation));
    Ok(())
}
