//! The paper's end-to-end scenario: automatically configure
//! Geo-Indistinguishability so that at most 10 % of POIs are retrievable
//! while at least 80 % utility is preserved.
//!
//! The three framework steps (define → model → invert) are spelled out
//! explicitly; this is the programmatic equivalent of the `operating_point`
//! reproduction binary.
//!
//! ```text
//! cargo run --release --example configure_geoi
//! ```

use geopriv::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The dataset to protect (stand-in for the SF taxi traces).
    let mut rng = StdRng::seed_from_u64(2016);
    let dataset = TaxiFleetBuilder::new()
        .drivers(10)
        .duration_hours(10.0)
        .sampling_interval_s(30.0)
        .build(&mut rng)?;
    println!("dataset: {} drivers, {} records", dataset.user_count(), dataset.record_count());

    // Step 1 — system definition: GEO-I swept over epsilon, POI retrieval as
    // privacy, city-block area coverage as utility.
    let system = SystemDefinition::paper_geoi();
    println!("system: {system:?}");

    // Step 2 — modeling: sweep epsilon, measure both metrics, fit Equation 2.
    let sweep =
        ExperimentRunner::new(SweepConfig { points: 15, repetitions: 1, seed: 42, parallel: true })
            .run(&system, &dataset)?;
    println!();
    println!("{}", report::sweep_to_table(&sweep));
    let fitted = Modeler::new().fit(&sweep)?;
    println!("{}", report::relationship_report(&fitted));

    // Step 3 — configuration: state objectives and invert the model.
    let objectives = Objectives::paper_example();
    println!("objectives: {objectives}");
    let configurator = Configurator::new(fitted, system.parameter().scale());
    match configurator.recommend(objectives) {
        Ok(recommendation) => {
            println!("{}", report::recommendation_report(&recommendation));

            // Sanity check: protect with the recommended epsilon and re-measure.
            let lppm = system.factory().instantiate(recommendation.parameter)?;
            let protected = lppm.protect_dataset(&dataset, &mut rng)?;
            let privacy = PoiRetrieval::default().evaluate(&dataset, &protected)?;
            let utility = AreaCoverage::default().evaluate(&dataset, &protected)?;
            println!(
                "re-measured at the recommendation: privacy = {:.3} (target ≤ {:.2}), utility = {:.3} (target ≥ {:.2})",
                privacy.value(),
                objectives.privacy.bound(),
                utility.value(),
                objectives.utility.bound()
            );
        }
        Err(CoreError::Infeasible { reason }) => {
            println!("the requested objectives cannot be met on this dataset: {reason}");
            println!("relax one of the objectives and re-run.");
        }
        Err(other) => return Err(other.into()),
    }
    Ok(())
}
