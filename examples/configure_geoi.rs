//! The paper's end-to-end scenario: automatically configure
//! Geo-Indistinguishability so that at most 10 % of POIs are retrievable
//! while at least 80 % utility is preserved — through the fluent
//! [`AutoConf`] facade (the explicit step-by-step equivalent lives in
//! `examples/step_by_step.rs`).
//!
//! ```text
//! cargo run --release --example configure_geoi
//! ```

use geopriv::prelude::*;
use geopriv::AutoConf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The dataset to protect (stand-in for the SF taxi traces).
    let mut rng = StdRng::seed_from_u64(2016);
    let dataset = TaxiFleetBuilder::new()
        .drivers(10)
        .duration_hours(10.0)
        .sampling_interval_s(30.0)
        .build(&mut rng)?;
    println!("dataset: {} drivers, {} records", dataset.user_count(), dataset.record_count());

    // Step 1 — system definition: GEO-I swept over epsilon, POI retrieval as
    // privacy, city-block area coverage as utility.
    let system = SystemDefinition::paper_geoi();
    println!("system: {system:?}");

    // Steps 2–3 in one chain: sweep epsilon, measure every suite metric, fit
    // the invertible models, state the paper's objectives, and invert.
    let studied = AutoConf::for_system(system)
        .dataset(&dataset)
        .sweep(|s| s.points(15).repetitions(1).seed(42))
        .fit()?;
    println!();
    println!("{}", report::sweep_to_table(studied.sweep_result()));
    println!("{}", report::suite_report(studied.fitted()));
    println!("  paper Equation 2: a = 0.84, b = 0.17, α = 1.21, β = 0.09");

    let studied = studied
        .require("poi-retrieval", at_most(0.10))?
        .require("area-coverage", at_least(0.80))?;
    println!("objectives: {}", studied.objectives());
    match studied.recommend() {
        Ok(recommendation) => {
            println!("{}", report::recommendation_report(&recommendation));

            // Sanity check: protect with the recommended epsilon and re-measure.
            let lppm = studied.system().factory().instantiate_at(&recommendation.point)?;
            let protected = lppm.protect_dataset(&dataset, &mut rng)?;
            let privacy = PoiRetrieval::default().evaluate(&dataset, &protected)?;
            let utility = AreaCoverage::default().evaluate(&dataset, &protected)?;
            println!(
                "re-measured at the recommendation: privacy = {:.3} (target ≤ 0.10), utility = {:.3} (target ≥ 0.80)",
                privacy.value(),
                utility.value(),
            );
        }
        Err(geopriv::Error::Core(CoreError::Infeasible { reason })) => {
            println!("the requested objectives cannot be met on this dataset: {reason}");
            println!("relax one of the objectives and re-run.");
        }
        Err(other) => return Err(other.into()),
    }
    Ok(())
}
