//! Run a whole evaluation campaign — several systems, one dataset — through
//! the campaign engine's shared work pool, then print the per-system sweep
//! summaries side by side.
//!
//! Compared to looping `ExperimentRunner::run` over the systems, the campaign
//! extracts the actual dataset's POIs and bounds once for all systems, points
//! and repetitions, and schedules everything at `(system, point, repetition)`
//! granularity — while returning bit-identical results.
//!
//! ```text
//! cargo run --release --example campaign
//! ```

use geopriv::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    let dataset = TaxiFleetBuilder::new()
        .drivers(6)
        .duration_hours(8.0)
        .sampling_interval_s(30.0)
        .build(&mut rng)?;
    println!("dataset: {} drivers, {} records", dataset.user_count(), dataset.record_count());

    // Three systems sharing the paper's metric pair, so the campaign extracts
    // the actual POIs exactly once for all of them.
    let systems = vec![
        SystemDefinition::paper_geoi(),
        SystemDefinition::with_pair(
            Box::new(GridCloakingFactory::new()),
            Box::new(PoiRetrieval::default()),
            Box::new(AreaCoverage::default()),
        )?,
        SystemDefinition::with_pair(
            Box::new(GaussianPerturbationFactory::new()),
            Box::new(PoiRetrieval::default()),
            Box::new(AreaCoverage::default()),
        )?,
    ];

    let config = SweepConfig { points: 9, repetitions: 1, seed: 2016, parallel: true };
    let campaign = CampaignRunner::new(config).run(&systems, std::slice::from_ref(&dataset))?;

    for run in &campaign.runs {
        let sweep = &run.result;
        println!();
        println!("== {} ({} sweep points) ==", sweep.lppm_name, sweep.len());
        for axis in sweep.space.names() {
            let values = sweep.axis_values(axis).expect("axis belongs to the space");
            let (lo, hi) = values
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
            println!("   parameter {axis} in [{lo}, {hi}]");
        }
        for column in &sweep.columns {
            println!(
                "   {} ({}): {:.3} -> {:.3}",
                column.id,
                column.direction,
                column.means.first().expect("sweep is non-empty"),
                column.means.last().expect("sweep is non-empty")
            );
        }
    }
    Ok(())
}
