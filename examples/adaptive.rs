//! Adaptive sweep planning on the two-parameter study: instead of measuring
//! the full 7 × 7 factorial, the staged planner
//! ([`geopriv::core::SweepMode::Adaptive`]) measures a coarse 4 × 4 pass,
//! fits the metric models, and spends the rest of its evaluation budget
//! bisecting where the models are still uncertain — near the fitted
//! feasibility boundaries and active-zone edges.
//!
//! Both designs feed the same downstream pipeline (fit → require →
//! recommend), so the example prints the evaluations saved alongside both
//! recommendations to show what the saving costs in accuracy.
//!
//! ```text
//! cargo run --release --example adaptive
//! ```

use geopriv::prelude::*;
use geopriv::AutoConf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn two_axis_system() -> Result<SystemDefinition, CoreError> {
    SystemDefinition::with_pair(
        Box::new(
            PipelineFactory::new()
                .then(GeoIndistinguishabilityFactory::new())
                .then(GridCloakingFactory::with_range(100.0, 2000.0)?),
        ),
        Box::new(PoiRetrieval::default()),
        Box::new(AreaCoverage::default()),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2016);
    let dataset = TaxiFleetBuilder::new()
        .drivers(8)
        .duration_hours(8.0)
        .sampling_interval_s(30.0)
        .build(&mut rng)?;
    println!("dataset: {} drivers, {} records", dataset.user_count(), dataset.record_count());

    // The reference: the full 7 × 7 factorial (49 evaluations).
    let grid = AutoConf::for_system(two_axis_system()?)
        .dataset(&dataset)
        .sweep(|s| s.points_per_axis(7).seed(42))
        .fit()?
        .require("poi-retrieval", at_most(0.5))?
        .require("area-coverage", at_least(0.4))?;
    let grid_points = grid.sweep_result().len();
    println!();
    println!("full grid: {grid_points} design points");

    // The adaptive study: a 4 × 4 coarse pass, then model-guided refinement
    // up to 24 total evaluations — under half the grid's cost.
    let adaptive = AutoConf::for_system(two_axis_system()?)
        .dataset(&dataset)
        .sweep(|s| s.points_per_axis(4).adaptive(24).seed(42))
        .fit()?
        .require("poi-retrieval", at_most(0.5))?
        .require("area-coverage", at_least(0.4))?;
    let adaptive_points = adaptive.sweep_result().len();
    println!(
        "adaptive:  {adaptive_points} design points ({} coarse + {} refined) — {} evaluations \
         saved ({:.0}%)",
        16,
        adaptive_points - 16,
        grid_points - adaptive_points,
        100.0 * (grid_points - adaptive_points) as f64 / grid_points as f64
    );
    println!();
    println!("{}", report::sweep_to_table(adaptive.sweep_result()));

    for (label, study) in [("full grid", &grid), ("adaptive", &adaptive)] {
        match study.recommend() {
            Ok(recommendation) => {
                println!("{label} recommendation:");
                println!("{}", report::recommendation_report(&recommendation));
            }
            Err(geopriv::Error::Core(CoreError::Infeasible { reason })) => {
                println!("{label}: objectives are infeasible on this dataset: {reason}");
            }
            Err(other) => return Err(other.into()),
        }
    }
    Ok(())
}
