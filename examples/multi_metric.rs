//! A four-metric study through the same API that runs the paper's pair: POI
//! retrieval (privacy), displacement-based utility, city-block area coverage
//! and hotspot preservation, swept side by side in one [`geopriv::AutoConf`]
//! chain — the "more metrics and parameters" extension the paper's future
//! work calls for, at the cost of one `.metric(...)`-style suite entry per
//! dimension instead of a fork of the framework.
//!
//! ```text
//! cargo run --release --example multi_metric
//! ```

use geopriv::prelude::*;
use geopriv::AutoConf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2016);
    let dataset = TaxiFleetBuilder::new()
        .drivers(10)
        .duration_hours(10.0)
        .sampling_interval_s(30.0)
        .build(&mut rng)?;
    println!("dataset: {} drivers, {} records", dataset.user_count(), dataset.record_count());

    // One suite, four direction-tagged metrics.
    let suite = MetricSuite::new(vec![
        SuiteMetric::privacy(PoiRetrieval::default()),
        SuiteMetric::utility(DistortionUtility::default()),
        SuiteMetric::utility(AreaCoverage::default()),
        SuiteMetric::utility(HotspotPreservation::default()),
    ])?;
    let system = SystemDefinition::new(Box::new(GeoIndistinguishabilityFactory::new()), suite);

    let studied =
        AutoConf::for_system(system).dataset(&dataset).sweep(|s| s.points(15).seed(42)).fit()?;
    println!();
    println!("{}", report::sweep_to_table(studied.sweep_result()));
    println!("{}", report::suite_report(studied.fitted()));

    // Constrain three of the four metrics; the fourth is predicted anyway.
    let studied = studied
        .require("poi-retrieval", at_most(0.10))?
        .require("area-coverage", at_least(0.75))?
        .require("hotspot-preservation", at_least(0.5))?;
    println!("objectives: {}", studied.objectives());
    match studied.recommend() {
        Ok(recommendation) => println!("{}", report::recommendation_report(&recommendation)),
        Err(geopriv::Error::Core(CoreError::Infeasible { reason })) => {
            println!("objectives are infeasible on this dataset: {reason}");
        }
        Err(other) => return Err(other.into()),
    }

    // Frontiers over any metric pair, not just privacy vs utility.
    let frontier = studied.frontier_for(&"poi-retrieval".into(), &"hotspot-preservation".into())?;
    println!("{frontier}");
    Ok(())
}
