//! A two-parameter configuration study — the paper's "configuration
//! parameters p_i" in the plural: GEO-I's ε and grid cloaking's cell size
//! swept *together* as one composed pipeline, through one
//! [`geopriv::AutoConf`] chain.
//!
//! The study measures the full 7 × 7 factorial grid, fits one multivariate
//! response surface per metric (log-axes, Equation 1's `f(p₁, p₂)`), and
//! searches the modeled space for a recommended `ConfigPoint` satisfying
//! both objectives. A one-at-a-time variant (the paper's "vary in turn"
//! design) runs alongside for comparison.
//!
//! ```text
//! cargo run --release --example multi_param
//! ```

use geopriv::prelude::*;
use geopriv::AutoConf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn two_axis_system() -> Result<SystemDefinition, CoreError> {
    SystemDefinition::with_pair(
        Box::new(
            PipelineFactory::new()
                .then(GeoIndistinguishabilityFactory::new())
                .then(GridCloakingFactory::with_range(100.0, 2000.0)?),
        ),
        Box::new(PoiRetrieval::default()),
        Box::new(AreaCoverage::default()),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2016);
    let dataset = TaxiFleetBuilder::new()
        .drivers(8)
        .duration_hours(8.0)
        .sampling_interval_s(30.0)
        .build(&mut rng)?;
    println!("dataset: {} drivers, {} records", dataset.user_count(), dataset.record_count());

    let system = two_axis_system()?;
    println!("system: {system:?}");
    println!("configuration space: {}", system.space());

    // Full-factorial grid study: 7 ε values × 7 cell sizes.
    let studied = AutoConf::for_system(two_axis_system()?)
        .dataset(&dataset)
        .sweep(|s| s.points_per_axis(7).seed(42))
        .fit()?;
    println!();
    println!(
        "grid study: {} design points over {}",
        studied.sweep_result().len(),
        studied.sweep_result().space.names().join(" × ")
    );
    println!();
    println!("{}", report::sweep_to_table(studied.sweep_result()));
    println!("{}", report::suite_report(studied.fitted()));

    let studied =
        studied.require("poi-retrieval", at_most(0.5))?.require("area-coverage", at_least(0.4))?;
    println!("objectives: {}", studied.objectives());
    match studied.recommend() {
        Ok(recommendation) => {
            println!("{}", report::recommendation_report(&recommendation));
            // Double-check against the data: protect at the recommended
            // point and re-measure both metrics directly.
            let measured = studied.measure_at_point(&dataset, &recommendation.point, 7)?;
            for (id, value) in &measured {
                println!("re-measured {id} = {value:.3}");
            }
        }
        Err(geopriv::Error::Core(CoreError::Infeasible { reason })) => {
            println!("objectives are infeasible on this dataset: {reason}");
        }
        Err(other) => return Err(other.into()),
    }

    // The paper's one-at-a-time design on the same system: each axis sweeps
    // while the other sits at its default (ε = 0.01, the geometric midpoint).
    let one_at_a_time = AutoConf::for_system(two_axis_system()?)
        .dataset(&dataset)
        .sweep(|s| s.one_at_a_time().points_per_axis(7).seed(42))
        .fit()?;
    println!();
    println!(
        "one-at-a-time study: {} design points (vs {} on the grid)",
        one_at_a_time.sweep_result().len(),
        7 * 7
    );
    println!("{}", report::suite_report(one_at_a_time.fitted()));
    Ok(())
}
