//! Quickstart: protect a synthetic mobility dataset with
//! Geo-Indistinguishability and measure what the protection costs and buys.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use geopriv::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate a small taxi fleet (the stand-in for the SF cabspotting data).
    let mut rng = StdRng::seed_from_u64(7);
    let dataset = TaxiFleetBuilder::new()
        .drivers(5)
        .duration_hours(8.0)
        .sampling_interval_s(30.0)
        .build(&mut rng)?;
    println!(
        "generated {} drivers / {} records over {} km²",
        dataset.user_count(),
        dataset.record_count(),
        dataset.bounding_box()?.area_km2().round()
    );

    // 2. Protect it with GEO-I at the paper's recommended operating point.
    let epsilon = Epsilon::new(0.01)?;
    let geoi = GeoIndistinguishability::new(epsilon);
    println!(
        "protecting with {} (epsilon = {}, expected noise radius {} m)",
        geoi.name(),
        epsilon.value(),
        epsilon.expected_noise_radius_m()
    );
    let protected = geoi.protect_dataset(&dataset, &mut rng)?;

    // 3. Evaluate the paper's two metrics.
    let privacy = PoiRetrieval::default().evaluate(&dataset, &protected)?;
    let utility = AreaCoverage::default().evaluate(&dataset, &protected)?;
    let distortion = MeanDistortion::new().of_datasets(&dataset, &protected)?;

    println!();
    println!("privacy  (POI retrieval, lower is better):  {:.3}", privacy.value());
    println!("utility  (area coverage, higher is better): {:.3}", utility.value());
    println!("mean displacement introduced by the noise:  {:.0} m", distortion.as_f64());
    println!();
    println!(
        "per-user POI retrieval: {:?}",
        privacy.per_user().iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    Ok(())
}
