//! Quickstart: one fluent `AutoConf` chain from a raw mobility dataset to a
//! recommended Geo-Indistinguishability configuration, then a protection run
//! at the recommended ε to see what the protection costs and buys.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use geopriv::prelude::*;
use geopriv::AutoConf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate a small taxi fleet (the stand-in for the SF cabspotting data).
    let mut rng = StdRng::seed_from_u64(7);
    let dataset = TaxiFleetBuilder::new()
        .drivers(5)
        .duration_hours(8.0)
        .sampling_interval_s(30.0)
        .build(&mut rng)?;
    println!(
        "generated {} drivers / {} records over {} km²",
        dataset.user_count(),
        dataset.record_count(),
        dataset.bounding_box()?.area_km2().round()
    );

    // 2. Ask the framework for a configuration: sweep ε, fit the invertible
    //    models, and invert under "≤ 15 % POI retrieval, ≥ 70 % utility".
    let recommendation = AutoConf::for_system(SystemDefinition::paper_geoi())
        .dataset(&dataset)
        .sweep(|s| s.points(13).seed(42))
        .fit()?
        .require("poi-retrieval", at_most(0.15))?
        .require("area-coverage", at_least(0.70))?
        .recommend()?;
    println!();
    println!(
        "recommended epsilon = {:.4} m⁻¹ (feasible in [{:.4}, {:.4}])",
        recommendation.parameter(),
        recommendation.feasible_range().0,
        recommendation.feasible_range().1
    );
    for (metric, predicted) in &recommendation.predictions {
        println!("  predicted {metric}: {predicted:.3}");
    }

    // 3. Protect at the recommended ε and re-measure the paper's two metrics.
    let epsilon = Epsilon::new(recommendation.parameter())?;
    let geoi = GeoIndistinguishability::new(epsilon);
    println!();
    println!(
        "protecting with {} (expected noise radius {:.0} m)",
        geoi.name(),
        epsilon.expected_noise_radius_m()
    );
    let protected = geoi.protect_dataset(&dataset, &mut rng)?;
    let privacy = PoiRetrieval::default().evaluate(&dataset, &protected)?;
    let utility = AreaCoverage::default().evaluate(&dataset, &protected)?;
    let distortion = MeanDistortion::new().of_datasets(&dataset, &protected)?;
    println!("privacy  (POI retrieval, lower is better):  {:.3}", privacy.value());
    println!("utility  (area coverage, higher is better): {:.3}", utility.value());
    println!("mean displacement introduced by the noise:  {:.0} m", distortion.as_f64());
    Ok(())
}
