//! Compare several protection mechanisms on the same dataset — the "other
//! LPPMs" the paper's future work plans to feed through the framework —
//! through the current facade: one [`geopriv::AutoConf`] study per system,
//! identical sweep settings and objectives, side-by-side recommendations.
//!
//! Each system pairs a mechanism factory (including a composed
//! [`PipelineFactory`]) with the paper's metric pair; the facade sweeps the
//! mechanism's configuration space, fits the response models, and inverts
//! the shared objectives.
//!
//! ```text
//! cargo run --release --example compare_lppms
//! ```

use geopriv::prelude::*;
use geopriv::AutoConf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn paper_pair(factory: Box<dyn LppmFactory>) -> Result<SystemDefinition, CoreError> {
    SystemDefinition::with_pair(
        factory,
        Box::new(PoiRetrieval::default()),
        Box::new(AreaCoverage::default()),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    let dataset = TaxiFleetBuilder::new()
        .drivers(6)
        .duration_hours(8.0)
        .sampling_interval_s(30.0)
        .build(&mut rng)?;
    println!("dataset: {} drivers, {} records", dataset.user_count(), dataset.record_count());
    println!();

    // The contenders, all through the factory API — the composed pipeline
    // sweeps two axes (ε × cell size) where the others sweep one.
    let systems: Vec<SystemDefinition> = vec![
        paper_pair(Box::new(GeoIndistinguishabilityFactory::new()))?,
        paper_pair(Box::new(GaussianPerturbationFactory::with_range(20.0, 2000.0)?))?,
        paper_pair(Box::new(GridCloakingFactory::with_range(100.0, 2000.0)?))?,
        paper_pair(Box::new(
            PipelineFactory::new()
                .then(GeoIndistinguishabilityFactory::new())
                .then(GridCloakingFactory::with_range(100.0, 2000.0)?),
        ))?,
    ];

    println!(
        "objectives for every system: poi-retrieval ≤ 0.60, area-coverage ≥ 0.30 (shared sweep \
         seed, 7 points per axis)"
    );
    for system in systems {
        let name = system.factory().name().to_string();
        let axes = system.space().names().join(" × ");
        let studied = AutoConf::for_system(system)
            .dataset(&dataset)
            .sweep(|s| s.points_per_axis(7).seed(7))
            .fit()?;
        println!();
        println!("== {name} (axes: {axes}) ==");
        let result = studied
            .require("poi-retrieval", at_most(0.60))?
            .require("area-coverage", at_least(0.30))?
            .recommend();
        match result {
            Ok(recommendation) => {
                println!("   recommended {}", recommendation.point);
                for (id, value) in &recommendation.predictions {
                    println!("   predicted {id} = {value:.3}");
                }
            }
            Err(geopriv::Error::Core(CoreError::Infeasible { reason })) => {
                println!("   infeasible under the shared objectives: {reason}");
            }
            Err(other) => return Err(other.into()),
        }
    }
    Ok(())
}
