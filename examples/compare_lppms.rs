//! Compare several protection mechanisms on the same dataset — the "other
//! LPPMs" the paper's future work plans to feed through the framework.
//!
//! Each mechanism is evaluated with the paper's two metrics plus the mean
//! displacement it introduces, at configurations chosen to have comparable
//! noise scales (~200 m).
//!
//! ```text
//! cargo run --release --example compare_lppms
//! ```

use geopriv::metrics::MeanDistortion;
use geopriv::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    let dataset = TaxiFleetBuilder::new()
        .drivers(6)
        .duration_hours(8.0)
        .sampling_interval_s(30.0)
        .build(&mut rng)?;
    println!("dataset: {} drivers, {} records", dataset.user_count(), dataset.record_count());
    println!();

    let mechanisms: Vec<Box<dyn Lppm>> = vec![
        Box::new(Identity::new()),
        Box::new(GeoIndistinguishability::new(Epsilon::new(0.01)?)),
        Box::new(GaussianPerturbation::new(geopriv::geo::Meters::new(160.0))?),
        Box::new(GridCloaking::new(geopriv::geo::Meters::new(400.0))?),
        Box::new(TemporalDownsampling::new(8)?),
        Box::new(
            Pipeline::new()
                .then(TemporalDownsampling::new(4)?)
                .then(GeoIndistinguishability::new(Epsilon::new(0.01)?)),
        ),
    ];

    let privacy_metric = PoiRetrieval::default();
    let utility_metric = AreaCoverage::default();
    // The actual dataset never changes across the comparison: prepare the
    // actual-side metric state (POI extraction, bounds) once and share it.
    let prepared_privacy = privacy_metric.prepare(&dataset)?;
    let prepared_utility = utility_metric.prepare(&dataset)?;

    println!("{:<55} {:>9} {:>9} {:>14}", "mechanism", "privacy", "utility", "displacement");
    for mechanism in &mechanisms {
        let mut mechanism_rng = StdRng::seed_from_u64(7);
        let protected = mechanism.protect_dataset(&dataset, &mut mechanism_rng)?;
        let privacy = privacy_metric.evaluate_prepared(&prepared_privacy, &dataset, &protected)?;
        let utility = utility_metric.evaluate_prepared(&prepared_utility, &dataset, &protected)?;
        let displacement = MeanDistortion::new().of_datasets(&dataset, &protected)?;
        println!(
            "{:<55} {:>9.3} {:>9.3} {:>12.0} m",
            mechanism.name(),
            privacy.value(),
            utility.value(),
            displacement.as_f64()
        );
    }
    println!();
    println!(
        "privacy = POI retrieval (lower is better); utility = area coverage (higher is better)"
    );
    Ok(())
}
