//! Offline, API-compatible subset of
//! [`proptest`](https://crates.io/crates/proptest), vendored because this
//! build environment has no network access.
//!
//! The subset covers what the geopriv property suites use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`],
//! * range strategies over primitives, tuple strategies, `Just`,
//!   [`Strategy::prop_map`], [`Strategy::prop_filter`], and
//!   `prop::collection::vec`.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case reports the generated inputs via the
//!   panic message and the deterministic case seed instead;
//! * generation is derandomized: the stream is a pure function of the test
//!   name and case index, so failures always reproduce.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches upstream proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion or hit an unexpected error.
    Fail(String),
    /// The case's inputs were rejected by a precondition (`prop_assume!`).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "test case failed: {reason}"),
            TestCaseError::Reject(reason) => write!(f, "test case rejected: {reason}"),
        }
    }
}

/// The generation-time state handed to strategies. A thin wrapper over the
/// vendored [`StdRng`] so strategies can be written against a concrete type.
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A runner whose stream is a pure function of `(test_name, case)`.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`, regenerating (upstream
    /// proptest rejects and retries too; `_why` mirrors its signature).
    fn prop_filter<F>(self, _why: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }

    /// Boxes the strategy, erasing its concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).generate(runner)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        self.0.generate(runner)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(runner);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values");
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Mirrors the `proptest::prop` facade module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRunner};
        use rand::Rng;

        /// The size of a generated collection: either fixed or a range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                SizeRange { lo: r.start, hi: r.end }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi: *r.end() + 1 }
            }
        }

        /// A strategy for `Vec<T>` with sizes drawn from a [`SizeRange`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let len = if self.size.lo + 1 >= self.size.hi {
                    self.size.lo
                } else {
                    runner.rng().gen_range(self.size.lo..self.size.hi)
                };
                (0..len).map(|_| self.element.generate(runner)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`: vectors of `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRunner,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Upstream proptest rejects and regenerates; the shim simply moves on to
/// the next case, which preserves soundness (no false failures) at a small
/// cost in per-test case counts.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @config($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut runner =
                        $crate::TestRunner::deterministic(concat!(module_path!(), "::", stringify!($name)), case);
                    // Bodies may `return Ok(())` early, `prop_assume!`
                    // away the case, or surface a `TestCaseError`, exactly
                    // like upstream proptest's closure-per-case shape.
                    #[allow(unreachable_code)]
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = $crate::Strategy::generate(&($strategy), &mut runner);)+
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(reason)) => {
                            panic!("proptest case {case} of {}: {reason}", stringify!($name))
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut runner = TestRunner::deterministic("t", 0);
        for _ in 0..100 {
            let (x, n) = Strategy::generate(&(0.0f64..1.0, 3usize..10), &mut runner);
            assert!((0.0..1.0).contains(&x));
            assert!((3..10).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_respects_fixed_and_ranged_sizes() {
        let mut runner = TestRunner::deterministic("v", 1);
        let fixed = prop::collection::vec(0.0f64..1.0, 3).generate(&mut runner);
        assert_eq!(fixed.len(), 3);
        for _ in 0..50 {
            let v = prop::collection::vec(0u64..5, 1..4).generate(&mut runner);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_and_filter_compose() {
        let mut runner = TestRunner::deterministic("m", 2);
        let s = (0u32..100).prop_map(|n| n * 2).prop_filter("even half", |n| *n >= 50);
        for _ in 0..50 {
            let n = s.generate(&mut runner);
            assert!(n % 2 == 0 && n >= 50);
        }
    }

    #[test]
    fn deterministic_runner_reproduces() {
        let a: Vec<u64> = {
            let mut r = TestRunner::deterministic("x", 7);
            (0..10).map(|_| Strategy::generate(&(0u64..1000), &mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRunner::deterministic("x", 7);
            (0..10).map(|_| Strategy::generate(&(0u64..1000), &mut r)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assume!(n > 1);
            prop_assert_ne!(n, 1);
            prop_assert_eq!(n, n);
        }
    }
}
