//! Derive macros for the vendored `serde` shim.
//!
//! The shim's `Serialize`/`Deserialize` are marker traits, so the derives
//! only need to emit the trivial impl for the deriving type. To stay
//! dependency-free (no `syn`/`quote`), the type name and generics are
//! recovered with a tiny hand-rolled scan of the item's token stream, and
//! the impl is emitted with fully-erased generics only when the item has
//! none; generic items get no impl, which is fine for marker traits that
//! nothing bounds on. All `#[serde(...)]` helper attributes are accepted
//! and ignored.

use proc_macro::{TokenStream, TokenTree};

/// Returns the identifier following the `struct`/`enum` keyword, plus
/// whether the item declares generics.
fn item_name(input: TokenStream) -> Option<(String, bool)> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    let generic = matches!(
                        tokens.peek(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    return Some((name.to_string(), generic));
                }
            }
        }
    }
    None
}

fn marker_impl(input: TokenStream, impl_line: &str) -> TokenStream {
    match item_name(input) {
        Some((name, false)) => {
            impl_line.replace("$NAME", &name).parse().expect("generated impl parses")
        }
        // Generic items (or unparseable input): emit nothing. The marker
        // traits carry no behavior, so a missing impl only matters if
        // somebody later adds a `T: Serialize` bound — at which point the
        // real serde should be dropped in.
        _ => TokenStream::new(),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "impl ::serde::Serialize for $NAME {}")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "impl<'de> ::serde::Deserialize<'de> for $NAME {}")
}
