//! Offline, API-compatible subset of
//! [`criterion`](https://crates.io/crates/criterion), vendored because this
//! build environment has no network access.
//!
//! Covers what the geopriv benches use: `criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], [`Throughput`] and `Bencher::iter`. Instead of
//! criterion's full statistical pipeline, each benchmark runs a short
//! warm-up followed by a fixed number of timed samples and reports the
//! median and min, plus derived throughput when configured — enough to
//! compare runs by eye and to keep `cargo bench` wired end to end.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    samples: u32,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one sample per call after a warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        self.measured.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.measured.push(start.elapsed());
        }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10, throughput: None }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let group_name = name.to_string();
        run_one(&group_name, None, 10, None, f);
        self
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&self.name, Some(&id.to_string()), self.sample_size, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, Some(&id.to_string()), self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; drop would do).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: Option<&str>,
    samples: u32,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { samples, measured: Vec::new() };
    f(&mut bencher);
    let label = match id {
        Some(id) => format!("{group}/{id}"),
        None => group.to_string(),
    };
    if bencher.measured.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    bencher.measured.sort_unstable();
    let median = bencher.measured[bencher.measured.len() / 2];
    let min = bencher.measured[0];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{label:<60} median {median:>12.3?}  min {min:>12.3?}{rate}");
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point (`harness = false` main).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Mirror real criterion: `--list` prints targets and exits
            // (cargo's test harness probing relies on tolerating flags).
            if std::env::args().any(|a| a == "--list") {
                println!("benchmarks: shim");
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run_their_closures() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2).throughput(Throughput::Elements(10));
            group.bench_function("a", |b| b.iter(|| calls += 1));
            group.bench_with_input(BenchmarkId::from_parameter(1.5), &1.5, |b, &x| {
                b.iter(|| std::hint::black_box(x * 2.0))
            });
            group.finish();
        }
        assert!(calls >= 2);
        c.bench_function("standalone", |b| b.iter(|| std::hint::black_box(1 + 1)));
    }
}
