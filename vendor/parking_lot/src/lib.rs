//! Offline, API-compatible subset of
//! [`parking_lot`](https://crates.io/crates/parking_lot), vendored because
//! this build environment has no network access.
//!
//! Provides [`Mutex`] and [`RwLock`] with parking_lot's ergonomics
//! (no poisoning, `lock()` returns the guard directly), implemented on top
//! of the std primitives. A poisoned std lock only occurs after a panic in
//! a critical section, at which point the process is failing anyway, so the
//! shim recovers the inner value like parking_lot would.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (parking_lot-style: no poison `Result`s).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock (parking_lot-style: no poison `Result`s).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4_000);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
