//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API), vendored because this build environment has no network
//! access to crates.io.
//!
//! Only the surface the `geopriv` workspace uses is provided:
//!
//! * [`RngCore`], [`SeedableRng`] and the blanket [`Rng`] extension trait
//!   (`gen_range` over the primitive ranges used here, plus `gen_bool`);
//! * [`rngs::StdRng`], a deterministic xoshiro256** generator seeded through
//!   SplitMix64 — same construction as the `rand_xoshiro` reference
//!   implementation, so streams are stable across platforms and runs.
//!
//! The statistical quality matches the upstream generators for the purposes
//! of this workspace (uniform floats with 53-bit precision, unbiased-enough
//! integer ranges for simulation workloads). It makes no cryptographic
//! claims, exactly like `StdRng` makes no reproducibility claims upstream.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random bits.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed type, a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// the same construction upstream `rand` uses, chosen so that nearby
    /// integer seeds still yield decorrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)` with 53-bit
/// precision (the standard `>> 11` construction).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples a single value uniformly from `self`.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Unlike upstream `StdRng` (which explicitly reserves the right to
    /// change algorithms), this vendored version guarantees stable streams
    /// across runs and platforms — several geopriv tests rely on that.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro requires a nonzero state; the all-zero seed maps to
            // an arbitrary fixed state like upstream implementations do.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x: f64 = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&x));
            let n: usize = rng.gen_range(0..17);
            assert!(n < 17);
            let m: u64 = rng.gen_range(3..=9);
            assert!((3..=9).contains(&m));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fill_bytes_fills_every_byte_length() {
        let mut rng = StdRng::seed_from_u64(5);
        for len in 0..33 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }

    #[test]
    fn dyn_rng_core_works_through_references() {
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
    }
}
