//! Offline, API-compatible subset of
//! [`tiny_http`](https://crates.io/crates/tiny_http), vendored because this
//! build environment has no network access.
//!
//! A synchronous HTTP/1.1 server over [`std::net::TcpListener`], just large
//! enough for the `geopriv-serve` request path:
//!
//! * [`Server::http`] binds an address; [`Server::recv`] blocks for the next
//!   request; [`Server::unblock`] wakes a blocked `recv` so the server can
//!   shut down cleanly.
//! * [`Request`] exposes the method, URL and body; [`Request::respond`]
//!   writes a [`Response`] back on the same connection.
//! * Keep-alive is honored (HTTP/1.1 default), bodies are `Content-Length`
//!   delimited, responses carry `Content-Length` always.
//!
//! Deliberate simplifications versus the real crate: one connection is
//! served at a time (the accept loop moves on when the peer disconnects or
//! sends `Connection: close`), there is no TLS/chunked-encoding/expect-100
//! support, and header storage is a plain `Vec` of `(name, value)` pairs.
//! Untrusted input is bounded at the transport: request and header lines
//! are capped at 8 KiB each, requests at 100 header lines, bodies at
//! 16 MiB — a peer streaming bytes without a newline gets its connection
//! torn down instead of growing server memory (and, with the
//! single-connection design, starving every other client).
//! The serving crate layers its own concurrency control (rate limiting,
//! timeouts) above this, so a single-connection transport keeps the shim
//! small without constraining the middleware stack under test.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// HTTP request methods understood by the shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `PUT`
    Put,
    /// `DELETE`
    Delete,
    /// `HEAD`
    Head,
    /// `OPTIONS`
    Options,
    /// Anything else (kept so unknown methods can be answered with 405
    /// rather than dropped at the transport).
    NonStandard,
}

impl Method {
    fn parse(token: &str) -> Method {
        match token {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "HEAD" => Method::Head,
            "OPTIONS" => Method::Options,
            _ => Method::NonStandard,
        }
    }

    /// The method token as sent on the wire (`NonStandard` renders as `?`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
            Method::Options => "OPTIONS",
            Method::NonStandard => "?",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A response status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusCode(pub u16);

impl From<u16> for StatusCode {
    fn from(code: u16) -> Self {
        StatusCode(code)
    }
}

impl StatusCode {
    fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }
}

/// An HTTP response: status code, content type and a byte body.
#[derive(Debug, Clone)]
pub struct Response {
    status: StatusCode,
    content_type: String,
    body: Vec<u8>,
}

impl Response {
    /// A 200 response carrying `body` as `text/plain; charset=utf-8`.
    pub fn from_string<S: Into<String>>(body: S) -> Response {
        Response {
            status: StatusCode(200),
            content_type: "text/plain; charset=utf-8".to_string(),
            body: body.into().into_bytes(),
        }
    }

    /// A 200 response carrying raw bytes as `application/octet-stream`.
    pub fn from_data<D: Into<Vec<u8>>>(body: D) -> Response {
        Response {
            status: StatusCode(200),
            content_type: "application/octet-stream".to_string(),
            body: body.into(),
        }
    }

    /// Replaces the status code.
    #[must_use]
    pub fn with_status_code<C: Into<StatusCode>>(mut self, code: C) -> Response {
        self.status = code.into();
        self
    }

    /// Replaces the `Content-Type` header value.
    #[must_use]
    pub fn with_content_type(mut self, content_type: &str) -> Response {
        self.content_type = content_type.to_string();
        self
    }

    /// The status code.
    pub fn status_code(&self) -> StatusCode {
        self.status
    }

    /// The body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: \
             keep-alive\r\n\r\n",
            self.status.0,
            self.status.reason(),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// One received HTTP request, holding the connection it arrived on until
/// [`Request::respond`] is called.
#[derive(Debug)]
pub struct Request {
    method: Method,
    url: String,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    stream: TcpStream,
    keep_alive: bool,
}

impl Request {
    /// The request method.
    pub fn method(&self) -> &Method {
        &self.method
    }

    /// The request target as sent (path and query, e.g. `/metrics`).
    pub fn url(&self) -> &str {
        &self.url
    }

    /// The value of a header, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// The request body bytes (empty when no `Content-Length` was sent).
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// The body decoded as UTF-8, when it is valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Sends `response` on the request's connection.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the peer went away mid-write.
    pub fn respond(mut self, response: Response) -> std::io::Result<()> {
        response.write_to(&mut self.stream)
    }
}

/// A listening HTTP server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    closing: Arc<AtomicBool>,
    /// The connection currently being served, kept across `recv` calls so
    /// HTTP/1.1 keep-alive works: the next request is read from the same
    /// stream until the peer closes it.
    current: std::cell::RefCell<Option<BufReader<TcpStream>>>,
}

impl Server {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns a boxed error when the address cannot be bound.
    pub fn http<A: ToSocketAddrs>(
        addr: A,
    ) -> Result<Server, Box<dyn std::error::Error + Send + Sync>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            closing: Arc::new(AtomicBool::new(false)),
            current: std::cell::RefCell::new(None),
        })
    }

    /// The bound socket address (useful with port 0).
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that wakes a blocked [`Server::recv`] when triggered from
    /// another thread.
    pub fn unblock_handle(&self) -> Unblocker {
        Unblocker { addr: self.addr, closing: Arc::clone(&self.closing) }
    }

    /// Wakes a blocked [`Server::recv`]; it will return an error and the
    /// accept loop can exit.
    pub fn unblock(&self) {
        self.unblock_handle().unblock();
    }

    /// Blocks until the next request arrives.
    ///
    /// # Errors
    ///
    /// Returns an I/O error after [`Server::unblock`] (kind
    /// [`std::io::ErrorKind::Interrupted`]) or on a failed accept.
    pub fn recv(&self) -> std::io::Result<Request> {
        loop {
            if self.closing.load(Ordering::SeqCst) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "server unblocked",
                ));
            }
            // Try the live keep-alive connection first. The stream carries a
            // short read timeout (set at accept), so an idle connection
            // yields control back here periodically — that is what lets
            // `unblock` interrupt a recv parked on a kept-alive peer, not
            // just one parked in accept. `fill_buf` is used as the idle
            // probe because it never consumes: a request arriving right at
            // the timeout boundary is not torn.
            let mut current = self.current.borrow_mut();
            if let Some(reader) = current.as_mut() {
                match reader.fill_buf() {
                    // Clean close between requests.
                    Ok([]) => *current = None,
                    Ok(_) => match read_request(reader) {
                        Ok(Some(request)) => {
                            if !request.keep_alive {
                                *current = None;
                            }
                            return Ok(request);
                        }
                        // Peer closed mid-request (or sent garbage): drop
                        // the connection and go accept a new one.
                        Ok(None) | Err(_) => *current = None,
                    },
                    // Idle timeout: keep the connection, re-check the
                    // closing flag at the top of the loop.
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(_) => *current = None,
                }
                continue;
            }
            drop(current);

            let (stream, _) = self.listener.accept()?;
            if self.closing.load(Ordering::SeqCst) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "server unblocked",
                ));
            }
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(std::time::Duration::from_millis(25))).ok();
            *self.current.borrow_mut() = Some(BufReader::new(stream));
        }
    }
}

/// Wakes a [`Server`] blocked in `recv` from another thread.
#[derive(Clone)]
pub struct Unblocker {
    addr: SocketAddr,
    closing: Arc<AtomicBool>,
}

impl Unblocker {
    /// Sets the closing flag and pokes the listener with a throwaway
    /// connection so the blocked accept returns.
    pub fn unblock(&self) {
        self.closing.store(true, Ordering::SeqCst);
        // Ignore failure: if the listener is already gone, recv has exited.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Transport cap on one request or header line. `read_line` on an untrusted
/// stream is otherwise unbounded: a peer streaming bytes with no newline
/// would grow memory without limit (and, single-connection as the shim is,
/// starve every other client while doing it).
const MAX_LINE: u64 = 8 * 1024;

/// Transport cap on the number of header lines per request.
const MAX_HEADERS: usize = 100;

/// Reads one `\n`-terminated line of at most [`MAX_LINE`] bytes. `Ok(None)`
/// means EOF before any byte; an over-long line is an error that tears the
/// connection down.
fn read_line_bounded(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<String>> {
    let mut buf = Vec::new();
    let read = reader.by_ref().take(MAX_LINE).read_until(b'\n', &mut buf)?;
    if read == 0 {
        return Ok(None);
    }
    if !buf.ends_with(b"\n") && read as u64 == MAX_LINE {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "request line exceeds the transport cap",
        ));
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 header line"))
}

/// Reads one request from an open connection. `Ok(None)` means the peer
/// closed the connection cleanly between requests.
fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<Request>> {
    let line = match read_line_bounded(reader)? {
        Some(line) => line,
        None => return Ok(None),
    };
    let mut parts = line.split_whitespace();
    let (method, url, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(u), Some(v)) => (Method::parse(m), u.to_string(), v.to_string()),
        _ => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "malformed request line",
            ))
        }
    };

    let mut headers = Vec::new();
    loop {
        let header_line = match read_line_bounded(reader)? {
            Some(line) => line,
            None => return Ok(None),
        };
        let trimmed = header_line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "header count exceeds the transport cap",
            ));
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    // Transport-level body cap: a deliberately hostile Content-Length must
    // not make the shim allocate unboundedly.
    const MAX_BODY: usize = 16 * 1024 * 1024;
    if content_length > MAX_BODY {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "request body exceeds the transport cap",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 and `Connection: close`
    // tear the connection down after the response.
    let connection = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("connection"))
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => version == "HTTP/1.1",
    };

    let stream = reader.get_ref().try_clone()?;
    Ok(Some(Request { method, url, headers, body, stream, keep_alive }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    fn roundtrip(stream: &mut TcpStream, request: &str) -> (u16, String) {
        stream.write_all(request.as_bytes()).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(value) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = value.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    #[test]
    fn serves_requests_with_keep_alive_and_unblocks() {
        let server = Server::http("127.0.0.1:0").unwrap();
        let addr = server.server_addr();
        let unblocker = server.unblock_handle();
        let worker = std::thread::spawn(move || {
            let mut served = 0;
            while let Ok(request) = server.recv() {
                served += 1;
                let echoed = format!(
                    "{} {} body={}",
                    request.method(),
                    request.url(),
                    request.body_str().unwrap_or("")
                );
                assert!(request.header("host").is_some());
                assert!(request.header("HOST").is_some());
                let response = Response::from_string(echoed)
                    .with_status_code(200)
                    .with_content_type("application/json");
                request.respond(response).unwrap();
            }
            served
        });

        // Two requests down one keep-alive connection.
        let mut stream = TcpStream::connect(addr).unwrap();
        let (status, body) = roundtrip(&mut stream, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        assert_eq!(body, "GET /healthz body=");
        let (status, body) = roundtrip(
            &mut stream,
            "POST /protect HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\n\r\nhi",
        );
        assert_eq!(status, 200);
        assert_eq!(body, "POST /protect body=hi");
        drop(stream);

        // A second, separate connection is accepted after the first closes.
        let mut stream = TcpStream::connect(addr).unwrap();
        let (status, _) =
            roundtrip(&mut stream, "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        drop(stream);

        unblocker.unblock();
        assert_eq!(worker.join().unwrap(), 3);
    }

    #[test]
    fn hostile_header_streams_are_torn_down_not_buffered() {
        let server = Server::http("127.0.0.1:0").unwrap();
        let addr = server.server_addr();
        let unblocker = server.unblock_handle();
        let worker = std::thread::spawn(move || {
            let mut served = 0;
            while let Ok(request) = server.recv() {
                served += 1;
                request.respond(Response::from_string("ok")).unwrap();
            }
            served
        });

        // A request line far beyond the 8 KiB cap, never newline-terminated:
        // the server must cut the connection instead of buffering forever.
        // Writes/reads are tolerant — the server may reset mid-write.
        let mut hostile = TcpStream::connect(addr).unwrap();
        let _ = hostile.write_all(&vec![b'A'; 64 * 1024]);
        let _ = hostile.flush();
        let mut sink = Vec::new();
        let _ = hostile.read_to_end(&mut sink);
        drop(hostile);

        // More header lines than the cap: same fate.
        let mut hostile = TcpStream::connect(addr).unwrap();
        let _ = hostile.write_all(b"GET / HTTP/1.1\r\n");
        for i in 0..150 {
            if hostile.write_all(format!("X-H-{i}: v\r\n").as_bytes()).is_err() {
                break;
            }
        }
        let mut sink = Vec::new();
        let _ = hostile.read_to_end(&mut sink);
        drop(hostile);

        // The accept loop survived both: a well-formed request still works.
        let mut stream = TcpStream::connect(addr).unwrap();
        let (status, _) =
            roundtrip(&mut stream, "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        drop(stream);

        unblocker.unblock();
        assert_eq!(worker.join().unwrap(), 1);
    }

    #[test]
    fn status_codes_and_response_builders() {
        let response =
            Response::from_string("{}").with_status_code(422).with_content_type("application/json");
        assert_eq!(response.status_code(), StatusCode(422));
        assert_eq!(response.body(), b"{}");
        assert_eq!(StatusCode(429).reason(), "Too Many Requests");
        assert_eq!(StatusCode(504).reason(), "Gateway Timeout");
        assert_eq!(StatusCode(999).reason(), "Unknown");
        let raw = Response::from_data(vec![1u8, 2]);
        assert_eq!(raw.body(), &[1, 2]);
        assert_eq!(Method::parse("PATCH"), Method::NonStandard);
        assert_eq!(Method::Post.to_string(), "POST");
    }
}
