//! Offline, API-compatible subset of [`serde`](https://crates.io/crates/serde),
//! vendored because this build environment has no network access.
//!
//! The geopriv workspace uses serde purely declaratively today: types derive
//! `Serialize`/`Deserialize` (and annotate `#[serde(...)]`) so that swapping
//! in the real crate later is zero-effort, but nothing serializes at runtime
//! (persistence goes through the hand-rolled CSV codec in
//! `geopriv-mobility::io`). The shim therefore provides the two marker
//! traits and derive macros that accept the attributes and implement them.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
