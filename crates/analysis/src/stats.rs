//! Descriptive statistics.

use crate::error::AnalysisError;
use serde::{Deserialize, Serialize};

fn check_finite(data: &[f64]) -> Result<(), AnalysisError> {
    if data.iter().any(|v| !v.is_finite()) {
        Err(AnalysisError::NonFiniteInput)
    } else {
        Ok(())
    }
}

/// Arithmetic mean of a slice.
///
/// # Errors
///
/// Returns [`AnalysisError::NotEnoughData`] for an empty slice and
/// [`AnalysisError::NonFiniteInput`] if any value is NaN or infinite.
pub fn mean(data: &[f64]) -> Result<f64, AnalysisError> {
    if data.is_empty() {
        return Err(AnalysisError::NotEnoughData { required: 1, actual: 0 });
    }
    check_finite(data)?;
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Sample variance (Bessel-corrected, `n - 1` denominator).
///
/// # Errors
///
/// Requires at least two samples.
pub fn variance(data: &[f64]) -> Result<f64, AnalysisError> {
    if data.len() < 2 {
        return Err(AnalysisError::NotEnoughData { required: 2, actual: data.len() });
    }
    let m = mean(data)?;
    Ok(data.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (data.len() - 1) as f64)
}

/// Sample standard deviation.
///
/// # Errors
///
/// Requires at least two samples.
pub fn std_dev(data: &[f64]) -> Result<f64, AnalysisError> {
    variance(data).map(f64::sqrt)
}

/// Population variance (`n` denominator), used by PCA on full property matrices.
///
/// # Errors
///
/// Requires at least one sample.
pub fn population_variance(data: &[f64]) -> Result<f64, AnalysisError> {
    let m = mean(data)?;
    Ok(data.iter().map(|v| (v - m).powi(2)).sum::<f64>() / data.len() as f64)
}

/// Minimum of a slice.
///
/// # Errors
///
/// Returns an error for an empty or non-finite slice.
pub fn min(data: &[f64]) -> Result<f64, AnalysisError> {
    if data.is_empty() {
        return Err(AnalysisError::NotEnoughData { required: 1, actual: 0 });
    }
    check_finite(data)?;
    Ok(data.iter().copied().fold(f64::INFINITY, f64::min))
}

/// Maximum of a slice.
///
/// # Errors
///
/// Returns an error for an empty or non-finite slice.
pub fn max(data: &[f64]) -> Result<f64, AnalysisError> {
    if data.is_empty() {
        return Err(AnalysisError::NotEnoughData { required: 1, actual: 0 });
    }
    check_finite(data)?;
    Ok(data.iter().copied().fold(f64::NEG_INFINITY, f64::max))
}

/// Quantile with linear interpolation between closest ranks.
///
/// `q` must lie in `[0, 1]`; `quantile(data, 0.5)` is the median.
///
/// # Errors
///
/// Returns [`AnalysisError::OutOfDomain`] for `q` outside `[0, 1]` and the
/// usual data errors otherwise.
pub fn quantile(data: &[f64], q: f64) -> Result<f64, AnalysisError> {
    if !(0.0..=1.0).contains(&q) || !q.is_finite() {
        return Err(AnalysisError::OutOfDomain { value: q, min: 0.0, max: 1.0 });
    }
    if data.is_empty() {
        return Err(AnalysisError::NotEnoughData { required: 1, actual: 0 });
    }
    check_finite(data)?;
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
    let pos = q * (sorted.len() - 1) as f64;
    let lower = pos.floor() as usize;
    let upper = pos.ceil() as usize;
    let frac = pos - lower as f64;
    Ok(sorted[lower] * (1.0 - frac) + sorted[upper] * frac)
}

/// Median (the 0.5 quantile).
///
/// # Errors
///
/// Returns an error for an empty or non-finite slice.
pub fn median(data: &[f64]) -> Result<f64, AnalysisError> {
    quantile(data, 0.5)
}

/// Sample covariance between two equally-long slices.
///
/// # Errors
///
/// Requires two samples and equal lengths.
pub fn covariance(x: &[f64], y: &[f64]) -> Result<f64, AnalysisError> {
    if x.len() != y.len() {
        return Err(AnalysisError::LengthMismatch { left: x.len(), right: y.len() });
    }
    if x.len() < 2 {
        return Err(AnalysisError::NotEnoughData { required: 2, actual: x.len() });
    }
    let mx = mean(x)?;
    let my = mean(y)?;
    Ok(x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum::<f64>() / (x.len() - 1) as f64)
}

/// Pearson correlation coefficient in `[-1, 1]`.
///
/// # Errors
///
/// Returns [`AnalysisError::ZeroVariance`] if either input is constant.
pub fn pearson_correlation(x: &[f64], y: &[f64]) -> Result<f64, AnalysisError> {
    let cov = covariance(x, y)?;
    let sx = std_dev(x)?;
    let sy = std_dev(y)?;
    if sx == 0.0 || sy == 0.0 {
        return Err(AnalysisError::ZeroVariance);
    }
    Ok((cov / (sx * sy)).clamp(-1.0, 1.0))
}

/// A compact five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single sample).
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of the sample.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty or non-finite sample.
    pub fn of(data: &[f64]) -> Result<Self, AnalysisError> {
        Ok(Self {
            count: data.len(),
            mean: mean(data)?,
            std_dev: if data.len() >= 2 { std_dev(data)? } else { 0.0 },
            min: min(data)?,
            q1: quantile(data, 0.25)?,
            median: median(data)?,
            q3: quantile(data, 0.75)?,
            max: max(data)?,
        })
    }

    /// Interquartile range (`q3 - q1`).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Full range (`max - min`).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// Standardizes a sample to zero mean and unit variance (z-scores).
///
/// Constant samples are mapped to all-zeros rather than NaN.
///
/// # Errors
///
/// Returns an error for an empty or non-finite sample.
pub fn standardize(data: &[f64]) -> Result<Vec<f64>, AnalysisError> {
    let m = mean(data)?;
    let s = if data.len() >= 2 { std_dev(data)? } else { 0.0 };
    if s == 0.0 {
        return Ok(vec![0.0; data.len()]);
    }
    Ok(data.iter().map(|v| (v - m) / s).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&data).unwrap(), 5.0);
        assert!((variance(&data).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((population_variance(&data).unwrap() - 4.0).abs() < 1e-12);
        assert!((std_dev(&data).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_non_finite_inputs_error() {
        assert!(mean(&[]).is_err());
        assert!(mean(&[1.0, f64::NAN]).is_err());
        assert!(variance(&[1.0]).is_err());
        assert!(min(&[]).is_err());
        assert!(max(&[f64::INFINITY]).is_err());
        assert!(median(&[]).is_err());
    }

    #[test]
    fn quantiles_and_median() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 4.0);
        assert_eq!(median(&data).unwrap(), 2.5);
        assert_eq!(quantile(&data, 0.25).unwrap(), 1.75);
        assert!(quantile(&data, 1.5).is_err());
        assert!(quantile(&data, -0.1).is_err());

        let odd = [5.0, 1.0, 3.0];
        assert_eq!(median(&odd).unwrap(), 3.0);
    }

    #[test]
    fn covariance_and_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 4.0, 6.0, 8.0, 10.0];
        assert!((pearson_correlation(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let y_neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson_correlation(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
        assert!((covariance(&x, &y).unwrap() - 5.0).abs() < 1e-12);

        assert!(covariance(&x, &y[..3]).is_err());
        assert!(pearson_correlation(&x, &[1.0, 1.0, 1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn summary_is_consistent() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let s = Summary::of(&data).unwrap();
        assert_eq!(s.count, 8);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert!(s.q1 <= s.median && s.median <= s.q3);
        assert!((s.range() - 8.0).abs() < 1e-12);
        assert!(s.iqr() >= 0.0);

        let single = Summary::of(&[4.2]).unwrap();
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.median, 4.2);
    }

    #[test]
    fn standardize_produces_zscores() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let z = standardize(&data).unwrap();
        assert!((mean(&z).unwrap()).abs() < 1e-12);
        assert!((std_dev(&z).unwrap() - 1.0).abs() < 1e-12);

        let constant = standardize(&[7.0, 7.0, 7.0]).unwrap();
        assert_eq!(constant, vec![0.0, 0.0, 0.0]);
    }
}
