//! Small dense matrices.
//!
//! The modeling phase of the framework only ever manipulates tiny matrices
//! (a handful of configuration parameters and dataset properties), so a
//! straightforward row-major `Vec<f64>` implementation with Gaussian
//! elimination and a Jacobi eigen-solver is both sufficient and dependency
//! free.

use crate::error::AnalysisError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use geopriv_analysis::Matrix;
///
/// # fn main() -> Result<(), geopriv_analysis::AnalysisError> {
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// assert_eq!(a.multiply(&b)?, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of equally-long rows.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::DimensionMismatch`] if rows have different
    /// lengths or the input is empty, and [`AnalysisError::NonFiniteInput`]
    /// if any entry is NaN or infinite.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, AnalysisError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(AnalysisError::DimensionMismatch {
                expected: "at least one non-empty row".to_string(),
                actual: format!("{} rows", rows.len()),
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(AnalysisError::DimensionMismatch {
                    expected: format!("row of length {cols}"),
                    actual: format!("row {i} of length {}", row.len()),
                });
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(AnalysisError::NonFiniteInput);
            }
            data.extend_from_slice(row);
        }
        Ok(Self { rows: rows.len(), cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::DimensionMismatch`] if the inner dimensions disagree.
    pub fn multiply(&self, other: &Matrix) -> Result<Matrix, AnalysisError> {
        if self.cols != other.rows {
            return Err(AnalysisError::DimensionMismatch {
                expected: format!("{} rows", self.cols),
                actual: format!("{} rows", other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn multiply_vec(&self, v: &[f64]) -> Result<Vec<f64>, AnalysisError> {
        if v.len() != self.cols {
            return Err(AnalysisError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                actual: format!("vector of length {}", v.len()),
            });
        }
        Ok((0..self.rows).map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum()).collect())
    }

    /// Solves the linear system `self · x = b` by Gaussian elimination with
    /// partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::SingularMatrix`] if the matrix is singular and
    /// [`AnalysisError::DimensionMismatch`] for shape errors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, AnalysisError> {
        if !self.is_square() {
            return Err(AnalysisError::DimensionMismatch {
                expected: "square matrix".to_string(),
                actual: format!("{}x{}", self.rows, self.cols),
            });
        }
        if b.len() != self.rows {
            return Err(AnalysisError::DimensionMismatch {
                expected: format!("rhs of length {}", self.rows),
                actual: format!("rhs of length {}", b.len()),
            });
        }
        let n = self.rows;
        // Augmented copy.
        let mut a = self.data.clone();
        let mut rhs = b.to_vec();

        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for row in (col + 1)..n {
                let candidate = a[row * n + col].abs();
                if candidate > best {
                    best = candidate;
                    pivot = row;
                }
            }
            if best < 1e-12 {
                return Err(AnalysisError::SingularMatrix);
            }
            if pivot != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot * n + j);
                }
                rhs.swap(col, pivot);
            }
            // Eliminate below.
            for row in (col + 1)..n {
                let factor = a[row * n + col] / a[col * n + col];
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[row * n + j] -= factor * a[col * n + j];
                }
                rhs[row] -= factor * rhs[col];
            }
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for row in (0..n).rev() {
            let mut sum = rhs[row];
            for j in (row + 1)..n {
                sum -= a[row * n + j] * x[j];
            }
            x[row] = sum / a[row * n + row];
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(AnalysisError::SingularMatrix);
        }
        Ok(x)
    }

    /// Computes the sample covariance matrix of a data matrix whose rows are
    /// observations and columns are variables.
    ///
    /// # Errors
    ///
    /// Requires at least two observations.
    pub fn covariance_matrix(&self) -> Result<Matrix, AnalysisError> {
        if self.rows < 2 {
            return Err(AnalysisError::NotEnoughData { required: 2, actual: self.rows });
        }
        let means: Vec<f64> =
            (0..self.cols).map(|j| self.column(j).iter().sum::<f64>() / self.rows as f64).collect();
        let mut cov = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut sum = 0.0;
                for r in 0..self.rows {
                    sum += (self[(r, i)] - means[i]) * (self[(r, j)] - means[j]);
                }
                let c = sum / (self.rows - 1) as f64;
                cov[(i, j)] = c;
                cov[(j, i)] = c;
            }
        }
        Ok(cov)
    }

    /// Maximum absolute off-diagonal element of a square matrix.
    ///
    /// Used by the Jacobi eigen-solver as a convergence measure.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn max_off_diagonal(&self) -> f64 {
        assert!(self.is_square(), "max_off_diagonal requires a square matrix");
        let mut best: f64 = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    best = best.max(self[(i, j)].abs());
                }
            }
        }
        best
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index ({i}, {j}) out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index ({i}, {j}) out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<f64>]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let a = m(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 3);
        assert!(!a.is_square());
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.column(2), vec![3.0, 6.0]);
        assert_eq!(a[(0, 1)], 2.0);

        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![]]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_rows(&[vec![f64::NAN]]).is_err());
    }

    #[test]
    fn identity_and_zeros() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3[(0, 0)], 1.0);
        assert_eq!(i3[(0, 1)], 0.0);
        let z = Matrix::zeros(2, 4);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 4);
        assert!(z.row(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn transpose_and_multiply() {
        let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t[(0, 2)], 5.0);

        let b = m(&[vec![7.0, 8.0], vec![9.0, 10.0]]);
        let prod = a.multiply(&b).unwrap();
        assert_eq!(prod.rows(), 3);
        assert_eq!(prod.cols(), 2);
        assert_eq!(prod[(0, 0)], 1.0 * 7.0 + 2.0 * 9.0);
        assert_eq!(prod[(2, 1)], 5.0 * 8.0 + 6.0 * 10.0);

        assert!(b.multiply(&a).is_err()); // 2x2 times 3x2 is invalid

        let identity = Matrix::identity(2);
        assert_eq!(a.multiply(&identity).unwrap(), a);
    }

    #[test]
    fn multiply_vec() {
        let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.multiply_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.multiply_vec(&[1.0]).is_err());
    }

    #[test]
    fn solve_linear_system() {
        // 2x + y = 5 ; x + 3y = 10 -> x = 1, y = 3
        let a = m(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);

        // Needs pivoting (zero on the diagonal).
        let b = m(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let y = b.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(y, vec![3.0, 2.0]);

        // Singular matrix.
        let s = m(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(s.solve(&[1.0, 2.0]), Err(AnalysisError::SingularMatrix));

        // Shape errors.
        let rect = m(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert!(rect.solve(&[1.0, 2.0]).is_err());
        assert!(a.solve(&[1.0]).is_err());
    }

    #[test]
    fn solve_larger_system_verifies_by_substitution() {
        let a = m(&[
            vec![4.0, -2.0, 1.0, 0.5],
            vec![-2.0, 5.0, -1.0, 0.0],
            vec![1.0, -1.0, 6.0, 2.0],
            vec![0.5, 0.0, 2.0, 3.0],
        ]);
        let b = [1.0, -2.0, 3.0, 0.5];
        let x = a.solve(&b).unwrap();
        let back = a.multiply_vec(&x).unwrap();
        for (computed, expected) in back.iter().zip(&b) {
            assert!((computed - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn covariance_matrix_is_symmetric_and_matches_stats() {
        let data =
            m(&[vec![1.0, 10.0], vec![2.0, 8.0], vec![3.0, 13.0], vec![4.0, 9.0], vec![5.0, 15.0]]);
        let cov = data.covariance_matrix().unwrap();
        assert!(cov.is_square());
        assert_eq!(cov[(0, 1)], cov[(1, 0)]);
        let expected = crate::stats::covariance(&data.column(0), &data.column(1)).unwrap();
        assert!((cov[(0, 1)] - expected).abs() < 1e-12);
        let var0 = crate::stats::variance(&data.column(0)).unwrap();
        assert!((cov[(0, 0)] - var0).abs() < 1e-12);

        assert!(m(&[vec![1.0, 2.0]]).covariance_matrix().is_err());
    }

    #[test]
    fn max_off_diagonal() {
        let a = m(&[vec![5.0, -3.0], vec![0.5, 7.0]]);
        assert_eq!(a.max_off_diagonal(), 3.0);
        assert_eq!(Matrix::identity(4).max_off_diagonal(), 0.0);
    }

    #[test]
    fn display_contains_all_rows() {
        let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let s = a.to_string();
        assert!(s.contains("1.0000"));
        assert!(s.contains("4.0000"));
        assert_eq!(s.lines().count(), 2);
    }
}
