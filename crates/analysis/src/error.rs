//! Error type for numerical analysis operations.

use std::fmt;

/// Errors produced by the `geopriv-analysis` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The operation needs more data points than were provided.
    NotEnoughData {
        /// Minimum number of samples required.
        required: usize,
        /// Number of samples actually provided.
        actual: usize,
    },
    /// Input slices that must have equal length did not.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// The input contained NaN or infinite values.
    NonFiniteInput,
    /// Matrix dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the actual shape.
        actual: String,
    },
    /// A linear system was singular (or numerically close to singular).
    SingularMatrix,
    /// The predictor values have zero variance, so no relationship can be fitted.
    ZeroVariance,
    /// The eigenvalue solver did not converge.
    NoConvergence {
        /// Number of iterations attempted.
        iterations: usize,
    },
    /// A function value was requested outside the fitted/observed domain.
    OutOfDomain {
        /// The offending value.
        value: f64,
        /// Lower bound of the valid domain.
        min: f64,
        /// Upper bound of the valid domain.
        max: f64,
    },
    /// A model could not be inverted (zero or non-finite slope).
    NotInvertible,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NotEnoughData { required, actual } => {
                write!(f, "not enough data: need at least {required} samples, got {actual}")
            }
            AnalysisError::LengthMismatch { left, right } => {
                write!(f, "input length mismatch: {left} vs {right}")
            }
            AnalysisError::NonFiniteInput => write!(f, "input contains NaN or infinite values"),
            AnalysisError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            AnalysisError::SingularMatrix => write!(f, "matrix is singular or nearly singular"),
            AnalysisError::ZeroVariance => {
                write!(f, "predictor has zero variance, cannot fit a relationship")
            }
            AnalysisError::NoConvergence { iterations } => {
                write!(f, "iterative solver did not converge after {iterations} iterations")
            }
            AnalysisError::OutOfDomain { value, min, max } => {
                write!(f, "value {value} is outside the valid domain [{min}, {max}]")
            }
            AnalysisError::NotInvertible => write!(f, "model is not invertible"),
        }
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(AnalysisError::NotEnoughData { required: 3, actual: 1 }
            .to_string()
            .contains("at least 3"));
        assert!(AnalysisError::LengthMismatch { left: 2, right: 5 }.to_string().contains("2 vs 5"));
        assert!(AnalysisError::OutOfDomain { value: 9.0, min: 0.0, max: 1.0 }
            .to_string()
            .contains("[0, 1]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<AnalysisError>();
    }
}
