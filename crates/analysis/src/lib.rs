//! # geopriv-analysis
//!
//! Numerical analysis substrate for the `geopriv` workspace: everything the
//! *modeling* phase of Cerf et al.'s configuration framework needs.
//!
//! * [`stats`] — descriptive statistics (means, quantiles, correlation).
//! * [`Matrix`] — small dense matrices with a linear solver.
//! * [`regression`] — ordinary least squares, simple and multiple.
//! * [`Pca`] — principal component analysis (Jacobi eigen-solver), used to
//!   select influential dataset properties (paper §3, step 1).
//! * [`Curve`] — empirical piecewise-linear response curves with inversion.
//! * [`saturation`] — detection of the non-saturated zone of a response
//!   (the vertical lines of Figure 1).
//! * [`model`] — the invertible parametric models of Equation 2
//!   ([`LogLinearModel`], [`LinearModel`]).
//!
//! ## Example: fitting and inverting Equation 2
//!
//! ```
//! use geopriv_analysis::model::{LogLinearModel, ResponseModel};
//!
//! # fn main() -> Result<(), geopriv_analysis::AnalysisError> {
//! let epsilons = [0.007, 0.01, 0.02, 0.04, 0.08];
//! let privacy: Vec<f64> = epsilons.iter().map(|e: &f64| 0.84 + 0.17 * e.ln()).collect();
//!
//! let model = LogLinearModel::fit(&epsilons, &privacy)?;
//! let epsilon_for_10_percent = model.invert(0.10)?;
//! assert!(epsilon_for_10_percent > 0.01 && epsilon_for_10_percent < 0.015);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod interpolation;
pub mod matrix;
pub mod model;
pub mod pca;
pub mod regression;
pub mod saturation;
pub mod stats;

pub use error::AnalysisError;
pub use interpolation::{Curve, Monotonicity};
pub use matrix::Matrix;
pub use model::{LinearModel, LogLinearModel, ResponseModel};
pub use pca::{Pca, PrincipalComponent};
pub use regression::{MultipleLinearRegression, SimpleLinearRegression};
pub use saturation::{find_active_zone, ActiveZone, SaturationDetector};
pub use stats::Summary;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::error::AnalysisError;
    pub use crate::interpolation::{Curve, Monotonicity};
    pub use crate::matrix::Matrix;
    pub use crate::model::{LinearModel, LogLinearModel, ResponseModel};
    pub use crate::pca::{Pca, PrincipalComponent};
    pub use crate::regression::{MultipleLinearRegression, SimpleLinearRegression};
    pub use crate::saturation::{find_active_zone, ActiveZone, SaturationDetector};
    pub use crate::stats::Summary;
}
