//! Principal component analysis.
//!
//! Step 1 of the paper's framework selects the dataset properties `d_j` that
//! actually influence the privacy/utility metrics "soundly chosen using a
//! principal component analysis". [`Pca`] implements exactly that: it
//! standardizes a property matrix (rows = users or datasets, columns =
//! candidate properties), extracts the principal components with a Jacobi
//! eigen-solver, and reports per-property loadings so the framework can keep
//! the most influential properties.

use crate::error::AnalysisError;
use crate::matrix::Matrix;
use crate::stats;
use serde::{Deserialize, Serialize};

const JACOBI_MAX_SWEEPS: usize = 100;
const JACOBI_TOLERANCE: f64 = 1e-12;

/// One principal component: its eigenvalue, the fraction of total variance it
/// explains, and its loading on each original variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrincipalComponent {
    /// Eigenvalue of the (standardized) covariance matrix.
    pub eigenvalue: f64,
    /// Fraction of the total variance explained by this component, in `[0, 1]`.
    pub explained_variance_ratio: f64,
    /// Unit-norm loading vector over the original variables.
    pub loadings: Vec<f64>,
}

/// Result of a principal component analysis.
///
/// # Examples
///
/// ```
/// use geopriv_analysis::pca::Pca;
///
/// # fn main() -> Result<(), geopriv_analysis::AnalysisError> {
/// // Two strongly correlated variables and one independent variable.
/// let data: Vec<Vec<f64>> = (0..30)
///     .map(|i| {
///         let t = i as f64;
///         vec![t, 2.0 * t + (i % 3) as f64, (i % 5) as f64]
///     })
///     .collect();
/// let pca = Pca::fit(&data)?;
/// // The first component captures the shared trend of the first two variables.
/// assert!(pca.components()[0].explained_variance_ratio > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    components: Vec<PrincipalComponent>,
    variable_count: usize,
    observation_count: usize,
    means: Vec<f64>,
    std_devs: Vec<f64>,
}

impl Pca {
    /// Fits a PCA on a matrix whose rows are observations and columns are variables.
    ///
    /// Variables are standardized (z-scored) before the analysis, so the
    /// components are those of the correlation matrix — properties measured
    /// in wildly different units (meters, seconds, counts) are comparable.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::NotEnoughData`] with fewer than two observations.
    /// * [`AnalysisError::DimensionMismatch`] for ragged rows.
    /// * [`AnalysisError::NoConvergence`] if the eigen-solver fails (does not
    ///   happen on real symmetric matrices of this size).
    pub fn fit(observations: &[Vec<f64>]) -> Result<Self, AnalysisError> {
        if observations.len() < 2 {
            return Err(AnalysisError::NotEnoughData { required: 2, actual: observations.len() });
        }
        let raw = Matrix::from_rows(observations)?;
        let p = raw.cols();
        let n = raw.rows();

        // Standardize column by column.
        let mut means = Vec::with_capacity(p);
        let mut std_devs = Vec::with_capacity(p);
        let mut standardized_rows = vec![vec![0.0; p]; n];
        for j in 0..p {
            let col = raw.column(j);
            let m = stats::mean(&col)?;
            let s = stats::std_dev(&col)?;
            means.push(m);
            std_devs.push(s);
            for (row, &value) in standardized_rows.iter_mut().zip(&col) {
                row[j] = if s == 0.0 { 0.0 } else { (value - m) / s };
            }
        }
        let standardized = Matrix::from_rows(&standardized_rows)?;
        let cov = standardized.covariance_matrix()?;

        let (eigenvalues, eigenvectors) = jacobi_eigen(&cov)?;

        // Sort by decreasing eigenvalue.
        let mut order: Vec<usize> = (0..p).collect();
        order.sort_by(|&a, &b| eigenvalues[b].partial_cmp(&eigenvalues[a]).expect("finite"));

        let total: f64 = eigenvalues.iter().map(|&v| v.max(0.0)).sum();
        let components = order
            .iter()
            .map(|&idx| {
                let eigenvalue = eigenvalues[idx].max(0.0);
                PrincipalComponent {
                    eigenvalue,
                    explained_variance_ratio: if total > 0.0 { eigenvalue / total } else { 0.0 },
                    loadings: eigenvectors.column(idx),
                }
            })
            .collect();

        Ok(Self { components, variable_count: p, observation_count: n, means, std_devs })
    }

    /// The principal components in order of decreasing explained variance.
    pub fn components(&self) -> &[PrincipalComponent] {
        &self.components
    }

    /// Number of original variables.
    pub fn variable_count(&self) -> usize {
        self.variable_count
    }

    /// Number of observations used for the fit.
    pub fn observation_count(&self) -> usize {
        self.observation_count
    }

    /// Cumulative explained-variance ratio of the first `k` components.
    pub fn cumulative_explained_variance(&self, k: usize) -> f64 {
        self.components.iter().take(k).map(|c| c.explained_variance_ratio).sum()
    }

    /// Number of components needed to explain at least `threshold` (e.g. 0.9)
    /// of the variance.
    pub fn components_for_variance(&self, threshold: f64) -> usize {
        let mut acc = 0.0;
        for (i, c) in self.components.iter().enumerate() {
            acc += c.explained_variance_ratio;
            if acc >= threshold {
                return i + 1;
            }
        }
        self.components.len()
    }

    /// Importance score of each original variable: the sum over components of
    /// `|loading| · explained_variance_ratio`.
    ///
    /// This is the ranking the framework uses to retain the most influential
    /// dataset properties.
    pub fn variable_importance(&self) -> Vec<f64> {
        let mut scores = vec![0.0; self.variable_count];
        for c in &self.components {
            for (j, &loading) in c.loadings.iter().enumerate() {
                scores[j] += loading.abs() * c.explained_variance_ratio;
            }
        }
        scores
    }

    /// Projects an observation onto the first `k` principal components.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::LengthMismatch`] if the observation length
    /// differs from the fitted variable count.
    pub fn project(&self, observation: &[f64], k: usize) -> Result<Vec<f64>, AnalysisError> {
        if observation.len() != self.variable_count {
            return Err(AnalysisError::LengthMismatch {
                left: observation.len(),
                right: self.variable_count,
            });
        }
        let standardized: Vec<f64> =
            observation
                .iter()
                .enumerate()
                .map(|(j, &v)| {
                    if self.std_devs[j] == 0.0 {
                        0.0
                    } else {
                        (v - self.means[j]) / self.std_devs[j]
                    }
                })
                .collect();
        Ok(self
            .components
            .iter()
            .take(k)
            .map(|c| c.loadings.iter().zip(&standardized).map(|(a, b)| a * b).sum())
            .collect())
    }
}

/// Jacobi eigenvalue iteration for real symmetric matrices.
///
/// Returns `(eigenvalues, eigenvector_matrix)` where column `i` of the matrix
/// is the eigenvector for `eigenvalues[i]`.
fn jacobi_eigen(matrix: &Matrix) -> Result<(Vec<f64>, Matrix), AnalysisError> {
    if !matrix.is_square() {
        return Err(AnalysisError::DimensionMismatch {
            expected: "square matrix".to_string(),
            actual: format!("{}x{}", matrix.rows(), matrix.cols()),
        });
    }
    let n = matrix.rows();
    let mut a = matrix.clone();
    let mut v = Matrix::identity(n);

    for _sweep in 0..JACOBI_MAX_SWEEPS {
        if a.max_off_diagonal() < JACOBI_TOLERANCE {
            let eigenvalues = (0..n).map(|i| a[(i, i)]).collect();
            return Ok((eigenvalues, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() < JACOBI_TOLERANCE {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Rotate A.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    if a.max_off_diagonal() < 1e-8 {
        let eigenvalues = (0..n).map(|i| a[(i, i)]).collect();
        Ok((eigenvalues, v))
    } else {
        Err(AnalysisError::NoConvergence { iterations: JACOBI_MAX_SWEEPS })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // Eigenvalues of [[2, 1], [1, 2]] are 1 and 3.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let (mut values, vectors) = jacobi_eigen(&m).unwrap();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((values[0] - 1.0).abs() < 1e-9);
        assert!((values[1] - 3.0).abs() < 1e-9);
        // Eigenvectors are orthonormal.
        let vt_v = vectors.transpose().multiply(&vectors).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((vt_v[(i, j)] - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn jacobi_rejects_non_square() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert!(jacobi_eigen(&m).is_err());
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Points along y = 2x with small orthogonal jitter: one dominant component.
        let data: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let t = i as f64 / 10.0;
                let jitter = if i % 2 == 0 { 0.05 } else { -0.05 };
                vec![t + jitter, 2.0 * t - jitter]
            })
            .collect();
        let pca = Pca::fit(&data).unwrap();
        assert_eq!(pca.variable_count(), 2);
        assert_eq!(pca.observation_count(), 100);
        assert!(pca.components()[0].explained_variance_ratio > 0.95);
        assert!((pca.cumulative_explained_variance(2) - 1.0).abs() < 1e-9);
        assert_eq!(pca.components_for_variance(0.9), 1);

        // The dominant loadings have equal magnitude on both (standardized) variables.
        let l = &pca.components()[0].loadings;
        assert!((l[0].abs() - l[1].abs()).abs() < 1e-6);
    }

    #[test]
    fn explained_variance_ratios_sum_to_one() {
        let data: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let t = i as f64;
                vec![t.sin(), (t * 0.7).cos(), t % 5.0, (t * t) % 11.0]
            })
            .collect();
        let pca = Pca::fit(&data).unwrap();
        let total: f64 = pca.components().iter().map(|c| c.explained_variance_ratio).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Components are sorted in decreasing order of explained variance.
        for pair in pca.components().windows(2) {
            assert!(pair[0].explained_variance_ratio >= pair[1].explained_variance_ratio - 1e-12);
        }
    }

    #[test]
    fn constant_variable_gets_no_importance() {
        let data: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 5.0, (i % 7) as f64]).collect();
        let pca = Pca::fit(&data).unwrap();
        let importance = pca.variable_importance();
        assert_eq!(importance.len(), 3);
        // The constant column cannot carry variance.
        assert!(importance[1] < importance[0]);
        assert!(importance[1] < importance[2]);
    }

    #[test]
    fn projection_reduces_dimension() {
        let data: Vec<Vec<f64>> =
            (0..50).map(|i| vec![i as f64, 2.0 * i as f64 + 1.0, (i % 3) as f64]).collect();
        let pca = Pca::fit(&data).unwrap();
        let projected = pca.project(&[10.0, 21.0, 1.0], 2).unwrap();
        assert_eq!(projected.len(), 2);
        assert!(projected.iter().all(|v| v.is_finite()));
        assert!(pca.project(&[1.0, 2.0], 2).is_err());
    }

    #[test]
    fn pca_requires_at_least_two_observations() {
        assert!(Pca::fit(&[vec![1.0, 2.0]]).is_err());
        assert!(Pca::fit(&[]).is_err());
        assert!(Pca::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }
}
