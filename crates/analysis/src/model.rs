//! Parametric, invertible response models.
//!
//! The paper's Equation 2 expresses each metric as a log-linear function of
//! the configuration parameter ε:
//!
//! ```text
//! Pr = a + b·ln ε        Ut = α + β·ln ε
//! ```
//!
//! [`LogLinearModel`] is exactly that object: it is fitted on `(ε, metric)`
//! samples restricted to the non-saturated zone, predicts the metric for a
//! given ε, and — crucially for the configuration step — *inverts* to give
//! the ε achieving a target metric value. [`LinearModel`] is the same without
//! the logarithmic transform, used when a parameter already acts linearly.

use crate::error::AnalysisError;
use crate::regression::SimpleLinearRegression;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fitted, invertible model of a metric response to a single parameter.
///
/// Implemented by [`LinearModel`] and [`LogLinearModel`]; the configuration
/// framework treats the two uniformly through this trait.
pub trait ResponseModel: fmt::Debug {
    /// Predicted metric value at parameter value `x`.
    fn predict(&self, x: f64) -> f64;

    /// Parameter value at which the model attains the metric value `y`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NotInvertible`] when the fitted slope is zero
    /// and [`AnalysisError::OutOfDomain`] when the requested value cannot be
    /// reached inside the fitted domain.
    fn invert(&self, y: f64) -> Result<f64, AnalysisError>;

    /// Coefficient of determination of the fit, in `[0, 1]`.
    fn r_squared(&self) -> f64;

    /// Parameter domain `(min, max)` on which the model was fitted.
    fn domain(&self) -> (f64, f64);
}

/// A plain linear model `y = intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    intercept: f64,
    slope: f64,
    r_squared: f64,
    domain: (f64, f64),
}

impl LinearModel {
    /// Fits the model on `(x, y)` samples.
    ///
    /// # Errors
    ///
    /// See [`SimpleLinearRegression::fit`].
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self, AnalysisError> {
        let reg = SimpleLinearRegression::fit(xs, ys)?;
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(Self {
            intercept: reg.intercept(),
            slope: reg.slope(),
            r_squared: reg.r_squared(),
            domain: (min, max),
        })
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted slope.
    pub fn slope(&self) -> f64 {
        self.slope
    }
}

impl ResponseModel for LinearModel {
    fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    fn invert(&self, y: f64) -> Result<f64, AnalysisError> {
        if self.slope == 0.0 || !self.slope.is_finite() {
            return Err(AnalysisError::NotInvertible);
        }
        Ok((y - self.intercept) / self.slope)
    }

    fn r_squared(&self) -> f64 {
        self.r_squared
    }

    fn domain(&self) -> (f64, f64) {
        self.domain
    }
}

impl fmt::Display for LinearModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "y = {:.4} + {:.4}·x (R² = {:.3})", self.intercept, self.slope, self.r_squared)
    }
}

/// The paper's log-linear model `y = intercept + slope · ln x`.
///
/// The parameter `x` must be strictly positive (ε is in m⁻¹ > 0).
///
/// # Examples
///
/// ```
/// use geopriv_analysis::model::{LogLinearModel, ResponseModel};
///
/// # fn main() -> Result<(), geopriv_analysis::AnalysisError> {
/// // Equation 2 of the paper: Pr = 0.84 + 0.17·ln ε.
/// let eps = [0.007, 0.01, 0.02, 0.04, 0.08];
/// let pr: Vec<f64> = eps.iter().map(|e: &f64| 0.84 + 0.17 * e.ln()).collect();
/// let model = LogLinearModel::fit(&eps, &pr)?;
///
/// // Inverting for the 10% POI-retrieval objective gives ε ≈ 0.013.
/// let eps_for_10_percent = model.invert(0.10)?;
/// assert!((eps_for_10_percent - 0.0128).abs() < 0.001);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogLinearModel {
    intercept: f64,
    slope: f64,
    r_squared: f64,
    domain: (f64, f64),
}

impl LogLinearModel {
    /// Fits `y = intercept + slope · ln x` on `(x, y)` samples.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::OutOfDomain`] if any `x` is not strictly positive.
    /// * Otherwise see [`SimpleLinearRegression::fit`].
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self, AnalysisError> {
        if let Some(&bad) = xs.iter().find(|&&x| !(x.is_finite() && x > 0.0)) {
            return Err(AnalysisError::OutOfDomain {
                value: bad,
                min: f64::MIN_POSITIVE,
                max: f64::INFINITY,
            });
        }
        let ln_xs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
        let reg = SimpleLinearRegression::fit(&ln_xs, ys)?;
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(Self {
            intercept: reg.intercept(),
            slope: reg.slope(),
            r_squared: reg.r_squared(),
            domain: (min, max),
        })
    }

    /// The fitted intercept (the paper's `a` / `α`).
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted slope on `ln x` (the paper's `b` / `β`).
    pub fn slope(&self) -> f64 {
        self.slope
    }
}

impl ResponseModel for LogLinearModel {
    fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x.ln()
    }

    fn invert(&self, y: f64) -> Result<f64, AnalysisError> {
        if self.slope == 0.0 || !self.slope.is_finite() {
            return Err(AnalysisError::NotInvertible);
        }
        let ln_x = (y - self.intercept) / self.slope;
        let x = ln_x.exp();
        if !x.is_finite() {
            return Err(AnalysisError::OutOfDomain { value: y, min: f64::MIN, max: f64::MAX });
        }
        Ok(x)
    }

    fn r_squared(&self) -> f64 {
        self.r_squared
    }

    fn domain(&self) -> (f64, f64) {
        self.domain
    }
}

impl fmt::Display for LogLinearModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "y = {:.4} + {:.4}·ln(x) (R² = {:.3})",
            self.intercept, self.slope, self.r_squared
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_model_roundtrip() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 - 2.0 * x).collect();
        let m = LinearModel::fit(&xs, &ys).unwrap();
        assert!((m.intercept() - 5.0).abs() < 1e-12);
        assert!((m.slope() + 2.0).abs() < 1e-12);
        assert_eq!(m.domain(), (0.0, 3.0));
        assert!((m.predict(1.5) - 2.0).abs() < 1e-12);
        assert!((m.invert(2.0).unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(m.r_squared(), 1.0);
        assert!(m.to_string().contains("R²"));
    }

    #[test]
    fn flat_models_are_not_invertible() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [4.0, 4.0, 4.0];
        let lin = LinearModel::fit(&xs, &ys).unwrap();
        assert_eq!(lin.invert(4.0), Err(AnalysisError::NotInvertible));
        let log = LogLinearModel::fit(&xs, &ys).unwrap();
        assert_eq!(log.invert(4.0), Err(AnalysisError::NotInvertible));
    }

    #[test]
    fn log_linear_recovers_paper_coefficients() {
        // Utility side of Equation 2: Ut = 1.21 + 0.09 ln eps.
        let eps: Vec<f64> = (0..30).map(|i| 1e-4 * 10f64.powf(i as f64 / 7.5)).collect();
        let ut: Vec<f64> = eps.iter().map(|e| 1.21 + 0.09 * e.ln()).collect();
        let m = LogLinearModel::fit(&eps, &ut).unwrap();
        assert!((m.intercept() - 1.21).abs() < 1e-9);
        assert!((m.slope() - 0.09).abs() < 1e-9);
        assert!(m.r_squared() > 0.999);

        // Predict utility at eps = 0.01: the paper's 80% operating point.
        let predicted = m.predict(0.01);
        assert!((predicted - 0.7956).abs() < 0.01, "got {predicted}");
        // And invert for 80% utility: close to 0.01.
        let eps_for_80 = m.invert(0.80).unwrap();
        assert!((0.008..0.013).contains(&eps_for_80), "got {eps_for_80}");
    }

    #[test]
    fn log_linear_rejects_non_positive_parameters() {
        assert!(LogLinearModel::fit(&[0.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(LogLinearModel::fit(&[-1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(LogLinearModel::fit(&[f64::NAN, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn trait_objects_are_usable() {
        let xs = [1.0, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| 1.0 + 0.5 * x.ln()).collect();
        let models: Vec<Box<dyn ResponseModel>> = vec![
            Box::new(LinearModel::fit(&xs, &ys).unwrap()),
            Box::new(LogLinearModel::fit(&xs, &ys).unwrap()),
        ];
        // The log-linear model fits these samples perfectly, the linear one does not.
        assert!(models[1].r_squared() > models[0].r_squared() - 1e-9);
        for m in &models {
            assert!(m.predict(3.0).is_finite());
            assert_eq!(m.domain(), (1.0, 8.0));
        }
    }

    #[test]
    fn inversion_roundtrips_prediction() {
        let eps: Vec<f64> = (1..20).map(|i| i as f64 * 0.005).collect();
        let ys: Vec<f64> = eps.iter().map(|e| 0.84 + 0.17 * e.ln()).collect();
        let m = LogLinearModel::fit(&eps, &ys).unwrap();
        for &e in &[0.006, 0.02, 0.05, 0.09] {
            let y = m.predict(e);
            let back = m.invert(y).unwrap();
            assert!((back - e).abs() / e < 1e-9);
        }
    }
}
