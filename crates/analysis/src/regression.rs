//! Least-squares regression.
//!
//! The modeling phase of the paper (Equation 2) fits a *log-linear*
//! relationship between the GEO-I parameter ε and each metric:
//! `Pr = a + b·ln ε` and `Ut = α + β·ln ε`. [`SimpleLinearRegression`] is the
//! ordinary-least-squares engine behind that fit (the caller applies the
//! `ln` transform to the predictor); [`MultipleLinearRegression`] generalizes
//! to several predictors (configuration parameters plus dataset properties,
//! the `f(p₁…pₙ, d₁…dₘ)` of Equation 1).

use crate::error::AnalysisError;
use crate::matrix::Matrix;
use crate::stats;
use serde::{Deserialize, Serialize};

/// Result of an ordinary-least-squares fit `y ≈ intercept + slope · x`.
///
/// # Examples
///
/// ```
/// use geopriv_analysis::regression::SimpleLinearRegression;
///
/// # fn main() -> Result<(), geopriv_analysis::AnalysisError> {
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [3.1, 4.9, 7.2, 8.8];
/// let fit = SimpleLinearRegression::fit(&x, &y)?;
/// assert!((fit.slope() - 2.0).abs() < 0.2);
/// assert!(fit.r_squared() > 0.98);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimpleLinearRegression {
    intercept: f64,
    slope: f64,
    r_squared: f64,
    residual_std: f64,
    n: usize,
}

impl SimpleLinearRegression {
    /// Fits `y ≈ intercept + slope · x` by ordinary least squares.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::LengthMismatch`] if `x` and `y` differ in length.
    /// * [`AnalysisError::NotEnoughData`] with fewer than two samples.
    /// * [`AnalysisError::ZeroVariance`] if `x` is constant.
    /// * [`AnalysisError::NonFiniteInput`] for NaN/infinite samples.
    pub fn fit(x: &[f64], y: &[f64]) -> Result<Self, AnalysisError> {
        if x.len() != y.len() {
            return Err(AnalysisError::LengthMismatch { left: x.len(), right: y.len() });
        }
        if x.len() < 2 {
            return Err(AnalysisError::NotEnoughData { required: 2, actual: x.len() });
        }
        let mean_x = stats::mean(x)?;
        let mean_y = stats::mean(y)?;
        let sxx: f64 = x.iter().map(|v| (v - mean_x).powi(2)).sum();
        if sxx == 0.0 {
            return Err(AnalysisError::ZeroVariance);
        }
        let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mean_x) * (b - mean_y)).sum();
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;

        let ss_tot: f64 = y.iter().map(|v| (v - mean_y).powi(2)).sum();
        let ss_res: f64 = x.iter().zip(y).map(|(a, b)| (b - (intercept + slope * a)).powi(2)).sum();
        let r_squared = if ss_tot == 0.0 { 1.0 } else { (1.0 - ss_res / ss_tot).clamp(0.0, 1.0) };
        let dof = (x.len() as f64 - 2.0).max(1.0);
        let residual_std = (ss_res / dof).sqrt();

        Ok(Self { intercept, slope, r_squared, residual_std, n: x.len() })
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted slope.
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Coefficient of determination R² in `[0, 1]`.
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Residual standard deviation.
    pub fn residual_std(&self) -> f64 {
        self.residual_std
    }

    /// Number of samples the model was fitted on.
    pub fn sample_count(&self) -> usize {
        self.n
    }

    /// Predicts `y` for a given `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Inverts the model: the `x` that yields the requested `y`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NotInvertible`] if the slope is zero or not finite.
    pub fn invert(&self, y: f64) -> Result<f64, AnalysisError> {
        if self.slope == 0.0 || !self.slope.is_finite() {
            return Err(AnalysisError::NotInvertible);
        }
        Ok((y - self.intercept) / self.slope)
    }
}

/// Result of a multiple-linear-regression fit
/// `y ≈ β₀ + β₁ x₁ + … + β_k x_k` via the normal equations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultipleLinearRegression {
    coefficients: Vec<f64>,
    r_squared: f64,
    n: usize,
}

impl MultipleLinearRegression {
    /// Fits the model on a design of `observations x predictors`.
    ///
    /// Each row of `predictors` is one observation; an intercept column is
    /// added automatically.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::LengthMismatch`] if `predictors.len() != responses.len()`.
    /// * [`AnalysisError::NotEnoughData`] if there are fewer observations than
    ///   coefficients to estimate.
    /// * [`AnalysisError::SingularMatrix`] for collinear predictors.
    pub fn fit(predictors: &[Vec<f64>], responses: &[f64]) -> Result<Self, AnalysisError> {
        if predictors.len() != responses.len() {
            return Err(AnalysisError::LengthMismatch {
                left: predictors.len(),
                right: responses.len(),
            });
        }
        if predictors.is_empty() {
            return Err(AnalysisError::NotEnoughData { required: 2, actual: 0 });
        }
        let k = predictors[0].len();
        let n = predictors.len();
        if n < k + 1 {
            return Err(AnalysisError::NotEnoughData { required: k + 1, actual: n });
        }
        // Design matrix with intercept column.
        let design_rows: Vec<Vec<f64>> = predictors
            .iter()
            .map(|row| {
                let mut r = Vec::with_capacity(k + 1);
                r.push(1.0);
                r.extend_from_slice(row);
                r
            })
            .collect();
        let design = Matrix::from_rows(&design_rows)?;
        let xt = design.transpose();
        let xtx = xt.multiply(&design)?;
        let xty = xt.multiply_vec(responses)?;
        let coefficients = xtx.solve(&xty)?;

        let mean_y = stats::mean(responses)?;
        let ss_tot: f64 = responses.iter().map(|v| (v - mean_y).powi(2)).sum();
        let ss_res: f64 = design_rows
            .iter()
            .zip(responses)
            .map(|(row, &y)| {
                let pred: f64 = row.iter().zip(&coefficients).map(|(a, b)| a * b).sum();
                (y - pred).powi(2)
            })
            .sum();
        let r_squared = if ss_tot == 0.0 { 1.0 } else { (1.0 - ss_res / ss_tot).clamp(0.0, 1.0) };

        Ok(Self { coefficients, r_squared, n })
    }

    /// Fitted coefficients `[β₀ (intercept), β₁, …, β_k]`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The intercept `β₀`.
    pub fn intercept(&self) -> f64 {
        self.coefficients[0]
    }

    /// Coefficient of determination R² in `[0, 1]`.
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Number of observations the model was fitted on.
    pub fn sample_count(&self) -> usize {
        self.n
    }

    /// Predicts the response for a new observation.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::LengthMismatch`] if the number of predictors
    /// differs from the fitted model.
    pub fn predict(&self, predictors: &[f64]) -> Result<f64, AnalysisError> {
        if predictors.len() + 1 != self.coefficients.len() {
            return Err(AnalysisError::LengthMismatch {
                left: predictors.len(),
                right: self.coefficients.len() - 1,
            });
        }
        Ok(self.coefficients[0]
            + predictors.iter().zip(&self.coefficients[1..]).map(|(a, b)| a * b).sum::<f64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 + 3.0 * v).collect();
        let fit = SimpleLinearRegression::fit(&x, &y).unwrap();
        assert!((fit.intercept() - 2.0).abs() < 1e-12);
        assert!((fit.slope() - 3.0).abs() < 1e-12);
        assert_eq!(fit.r_squared(), 1.0);
        assert!(fit.residual_std() < 1e-9);
        assert_eq!(fit.sample_count(), 5);
    }

    #[test]
    fn noisy_line_has_good_but_imperfect_fit() {
        let x: Vec<f64> = (0..50).map(|i| i as f64 / 5.0).collect();
        // Deterministic "noise".
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 1.0 + 0.5 * v + if i % 2 == 0 { 0.05 } else { -0.05 })
            .collect();
        let fit = SimpleLinearRegression::fit(&x, &y).unwrap();
        assert!((fit.slope() - 0.5).abs() < 0.02);
        assert!((fit.intercept() - 1.0).abs() < 0.06);
        assert!(fit.r_squared() > 0.97 && fit.r_squared() < 1.0);
        assert!(fit.residual_std() > 0.0);
    }

    #[test]
    fn negative_slope_paper_like_fit() {
        // The paper's Equation 2 in reverse: Pr = 0.84 + 0.17 ln(eps).
        let eps = [0.007, 0.01, 0.02, 0.04, 0.08];
        let x: Vec<f64> = eps.iter().map(|e: &f64| e.ln()).collect();
        let y: Vec<f64> = x.iter().map(|v| 0.84 + 0.17 * v).collect();
        let fit = SimpleLinearRegression::fit(&x, &y).unwrap();
        assert!((fit.intercept() - 0.84).abs() < 1e-10);
        assert!((fit.slope() - 0.17).abs() < 1e-10);
        // Inversion gives back ln(eps) for a target Pr of 10%.
        let ln_eps = fit.invert(0.10).unwrap();
        assert!((ln_eps.exp() - 0.0128).abs() < 0.001);
    }

    #[test]
    fn prediction_and_inversion_roundtrip() {
        let fit = SimpleLinearRegression::fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]).unwrap();
        let y = fit.predict(1.7);
        let x = fit.invert(y).unwrap();
        assert!((x - 1.7).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(SimpleLinearRegression::fit(&[1.0], &[2.0]).is_err());
        assert!(SimpleLinearRegression::fit(&[1.0, 2.0], &[2.0]).is_err());
        assert!(SimpleLinearRegression::fit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_err());
        assert!(SimpleLinearRegression::fit(&[1.0, f64::NAN], &[1.0, 2.0]).is_err());

        // Horizontal line: slope 0 cannot be inverted.
        let flat = SimpleLinearRegression::fit(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]).unwrap();
        assert_eq!(flat.slope(), 0.0);
        assert_eq!(flat.invert(4.0), Err(AnalysisError::NotInvertible));
    }

    #[test]
    fn multiple_regression_recovers_plane() {
        // y = 1 + 2 x1 - 3 x2
        let predictors: Vec<Vec<f64>> =
            (0..20).map(|i| vec![i as f64, (i * i % 7) as f64]).collect();
        let responses: Vec<f64> =
            predictors.iter().map(|p| 1.0 + 2.0 * p[0] - 3.0 * p[1]).collect();
        let fit = MultipleLinearRegression::fit(&predictors, &responses).unwrap();
        let c = fit.coefficients();
        assert!((c[0] - 1.0).abs() < 1e-9);
        assert!((c[1] - 2.0).abs() < 1e-9);
        assert!((c[2] + 3.0).abs() < 1e-9);
        assert!((fit.r_squared() - 1.0).abs() < 1e-9);
        assert_eq!(fit.sample_count(), 20);
        assert!((fit.predict(&[2.0, 1.0]).unwrap() - 2.0).abs() < 1e-9);
        assert!(fit.predict(&[1.0]).is_err());
    }

    #[test]
    fn multiple_regression_rejects_collinear_and_underdetermined() {
        // Perfectly collinear predictors.
        let predictors: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let responses: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(
            MultipleLinearRegression::fit(&predictors, &responses),
            Err(AnalysisError::SingularMatrix)
        );

        // Fewer observations than coefficients.
        assert!(MultipleLinearRegression::fit(&[vec![1.0, 2.0]], &[1.0]).is_err());
        // Mismatched lengths.
        assert!(MultipleLinearRegression::fit(&[vec![1.0], vec![2.0]], &[1.0]).is_err());
        // Empty input.
        assert!(MultipleLinearRegression::fit(&[], &[]).is_err());
    }
}
