//! Piecewise-linear curves and their inversion.
//!
//! Before fitting the parametric log-linear model of Equation 2, the
//! framework represents the measured response of each metric to the swept
//! parameter as an *empirical curve*. [`Curve`] stores such a sampled
//! response, interpolates between samples, and — when the response is
//! monotone — inverts it to answer "which parameter value yields this metric
//! value?" directly from the measurements.

use crate::error::AnalysisError;
use serde::{Deserialize, Serialize};

/// Monotonicity classification of a sampled curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Monotonicity {
    /// Strictly or weakly increasing.
    Increasing,
    /// Strictly or weakly decreasing.
    Decreasing,
    /// Constant everywhere.
    Constant,
    /// Neither increasing nor decreasing.
    NonMonotone,
}

/// A piecewise-linear curve through `(x, y)` samples, sorted by `x`.
///
/// # Examples
///
/// ```
/// use geopriv_analysis::interpolation::Curve;
///
/// # fn main() -> Result<(), geopriv_analysis::AnalysisError> {
/// let curve = Curve::new(vec![(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)])?;
/// assert_eq!(curve.interpolate(0.5)?, 5.0);
/// assert_eq!(curve.invert(15.0)?, 1.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Curve {
    points: Vec<(f64, f64)>,
}

impl Curve {
    /// Creates a curve from `(x, y)` samples.
    ///
    /// Samples are sorted by `x`; duplicate `x` values keep the last `y`.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::NotEnoughData`] with fewer than two distinct samples.
    /// * [`AnalysisError::NonFiniteInput`] for NaN/infinite samples.
    pub fn new(mut samples: Vec<(f64, f64)>) -> Result<Self, AnalysisError> {
        if samples.iter().any(|(x, y)| !x.is_finite() || !y.is_finite()) {
            return Err(AnalysisError::NonFiniteInput);
        }
        samples.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        samples.dedup_by(|a, b| {
            if a.0 == b.0 {
                // Keep the later sample's y in `b` (dedup removes `a`).
                b.1 = a.1;
                true
            } else {
                false
            }
        });
        if samples.len() < 2 {
            return Err(AnalysisError::NotEnoughData { required: 2, actual: samples.len() });
        }
        Ok(Self { points: samples })
    }

    /// The sorted `(x, y)` samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The `x` values of the samples.
    pub fn xs(&self) -> Vec<f64> {
        self.points.iter().map(|(x, _)| *x).collect()
    }

    /// The `y` values of the samples.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|(_, y)| *y).collect()
    }

    /// Domain of the curve: `(min x, max x)`.
    pub fn domain(&self) -> (f64, f64) {
        (self.points[0].0, self.points[self.points.len() - 1].0)
    }

    /// Range of the curve: `(min y, max y)` over the samples.
    pub fn range(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &(_, y) in &self.points {
            min = min.min(y);
            max = max.max(y);
        }
        (min, max)
    }

    /// Classifies the monotonicity of the sampled response.
    pub fn monotonicity(&self) -> Monotonicity {
        let mut increasing = true;
        let mut decreasing = true;
        for w in self.points.windows(2) {
            if w[1].1 > w[0].1 {
                decreasing = false;
            }
            if w[1].1 < w[0].1 {
                increasing = false;
            }
        }
        match (increasing, decreasing) {
            (true, true) => Monotonicity::Constant,
            (true, false) => Monotonicity::Increasing,
            (false, true) => Monotonicity::Decreasing,
            (false, false) => Monotonicity::NonMonotone,
        }
    }

    /// Linearly interpolates the curve at `x`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::OutOfDomain`] if `x` lies outside the sampled domain.
    pub fn interpolate(&self, x: f64) -> Result<f64, AnalysisError> {
        let (min_x, max_x) = self.domain();
        if !x.is_finite() || x < min_x || x > max_x {
            return Err(AnalysisError::OutOfDomain { value: x, min: min_x, max: max_x });
        }
        // Binary search for the segment containing x.
        let idx = self.points.partition_point(|&(px, _)| px <= x).min(self.points.len() - 1);
        let (x1, y1) = self.points[idx.saturating_sub(1)];
        let (x2, y2) = self.points[idx];
        if x2 == x1 {
            return Ok(y2);
        }
        let t = (x - x1) / (x2 - x1);
        Ok(y1 + t * (y2 - y1))
    }

    /// Inverts a monotone curve: finds `x` such that the curve passes through
    /// `(x, y)`.
    ///
    /// If several segments attain `y` exactly (plateaus), the smallest such
    /// `x` is returned.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::NotInvertible`] if the curve is not monotone or constant.
    /// * [`AnalysisError::OutOfDomain`] if `y` is outside the curve's range.
    pub fn invert(&self, y: f64) -> Result<f64, AnalysisError> {
        match self.monotonicity() {
            Monotonicity::Increasing | Monotonicity::Decreasing => {}
            Monotonicity::Constant | Monotonicity::NonMonotone => {
                return Err(AnalysisError::NotInvertible)
            }
        }
        let (min_y, max_y) = self.range();
        if !y.is_finite() || y < min_y || y > max_y {
            return Err(AnalysisError::OutOfDomain { value: y, min: min_y, max: max_y });
        }
        for w in self.points.windows(2) {
            let (x1, y1) = w[0];
            let (x2, y2) = w[1];
            let (lo, hi) = if y1 <= y2 { (y1, y2) } else { (y2, y1) };
            if y >= lo && y <= hi {
                if (y2 - y1).abs() < f64::EPSILON {
                    return Ok(x1);
                }
                let t = (y - y1) / (y2 - y1);
                return Ok(x1 + t * (x2 - x1));
            }
        }
        // Unreachable: y is within range, so some segment brackets it.
        Err(AnalysisError::OutOfDomain { value: y, min: min_y, max: max_y })
    }

    /// Restricts the curve to samples whose `x` lies in `[min_x, max_x]`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NotEnoughData`] if fewer than two samples remain.
    pub fn restricted(&self, min_x: f64, max_x: f64) -> Result<Curve, AnalysisError> {
        Curve::new(self.points.iter().copied().filter(|&(x, _)| x >= min_x && x <= max_x).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(samples: &[(f64, f64)]) -> Curve {
        Curve::new(samples.to_vec()).unwrap()
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let c = Curve::new(vec![(2.0, 20.0), (0.0, 0.0), (1.0, 10.0), (1.0, 12.0)]).unwrap();
        assert_eq!(c.points().len(), 3);
        assert_eq!(c.domain(), (0.0, 2.0));
        // The later sample for x = 1.0 wins.
        assert_eq!(c.interpolate(1.0).unwrap(), 12.0);

        assert!(Curve::new(vec![(0.0, 1.0)]).is_err());
        assert!(Curve::new(vec![(0.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(Curve::new(vec![(0.0, f64::NAN), (1.0, 1.0)]).is_err());
        assert!(Curve::new(vec![]).is_err());
    }

    #[test]
    fn interpolation_between_and_at_samples() {
        let c = curve(&[(0.0, 0.0), (10.0, 100.0)]);
        assert_eq!(c.interpolate(0.0).unwrap(), 0.0);
        assert_eq!(c.interpolate(10.0).unwrap(), 100.0);
        assert_eq!(c.interpolate(2.5).unwrap(), 25.0);
        assert!(c.interpolate(-0.1).is_err());
        assert!(c.interpolate(10.1).is_err());
        assert!(c.interpolate(f64::NAN).is_err());
    }

    #[test]
    fn monotonicity_classification() {
        assert_eq!(
            curve(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]).monotonicity(),
            Monotonicity::Increasing
        );
        assert_eq!(
            curve(&[(0.0, 2.0), (1.0, 1.0), (2.0, 0.0)]).monotonicity(),
            Monotonicity::Decreasing
        );
        assert_eq!(
            curve(&[(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)]).monotonicity(),
            Monotonicity::Constant
        );
        assert_eq!(
            curve(&[(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)]).monotonicity(),
            Monotonicity::NonMonotone
        );
        // Plateaus keep the overall classification.
        assert_eq!(
            curve(&[(0.0, 0.0), (1.0, 0.0), (2.0, 1.0)]).monotonicity(),
            Monotonicity::Increasing
        );
    }

    #[test]
    fn inversion_of_monotone_curves() {
        let inc = curve(&[(0.0, 0.0), (1.0, 10.0), (2.0, 30.0)]);
        assert_eq!(inc.invert(5.0).unwrap(), 0.5);
        assert_eq!(inc.invert(20.0).unwrap(), 1.5);
        assert_eq!(inc.invert(0.0).unwrap(), 0.0);
        assert_eq!(inc.invert(30.0).unwrap(), 2.0);
        assert!(inc.invert(31.0).is_err());
        assert!(inc.invert(-1.0).is_err());

        let dec = curve(&[(0.0, 1.0), (1.0, 0.5), (2.0, 0.0)]);
        assert_eq!(dec.invert(0.75).unwrap(), 0.5);
        assert_eq!(dec.invert(0.25).unwrap(), 1.5);

        let flat = curve(&[(0.0, 1.0), (1.0, 1.0)]);
        assert_eq!(flat.invert(1.0), Err(AnalysisError::NotInvertible));
        let bumpy = curve(&[(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)]);
        assert_eq!(bumpy.invert(1.5), Err(AnalysisError::NotInvertible));
    }

    #[test]
    fn inversion_on_plateau_returns_smallest_x() {
        let c = curve(&[(0.0, 0.0), (1.0, 5.0), (2.0, 5.0), (3.0, 10.0)]);
        assert_eq!(c.invert(5.0).unwrap(), 1.0);
    }

    #[test]
    fn roundtrip_interpolate_invert() {
        let c = curve(&[(0.0, 0.2), (1.0, 0.35), (2.0, 0.6), (3.0, 0.9)]);
        for x in [0.25, 0.8, 1.5, 2.9] {
            let y = c.interpolate(x).unwrap();
            let back = c.invert(y).unwrap();
            assert!((back - x).abs() < 1e-9, "x={x} back={back}");
        }
    }

    #[test]
    fn restriction_keeps_sub_domain() {
        let c = curve(&[(0.0, 0.0), (1.0, 1.0), (2.0, 4.0), (3.0, 9.0), (4.0, 16.0)]);
        let r = c.restricted(1.0, 3.0).unwrap();
        assert_eq!(r.domain(), (1.0, 3.0));
        assert_eq!(r.points().len(), 3);
        assert!(c.restricted(3.5, 3.6).is_err());
    }

    #[test]
    fn range_reports_min_max_y() {
        let c = curve(&[(0.0, 3.0), (1.0, -1.0), (2.0, 7.0)]);
        assert_eq!(c.range(), (-1.0, 7.0));
    }
}
