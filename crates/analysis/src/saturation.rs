//! Saturation-zone detection.
//!
//! Figure 1 of the paper marks with vertical lines the zone where the metrics
//! are *not saturated* — the ε-range over which the metric actually responds
//! to the parameter. Outside that zone the response is flat (the metric is
//! pinned at its floor or ceiling) and a log-linear fit would be meaningless.
//! The paper restricts Equation 2 to this zone; [`find_active_zone`]
//! automates the detection.

use crate::error::AnalysisError;
use crate::interpolation::Curve;
use serde::{Deserialize, Serialize};

/// The detected non-saturated ("active") zone of a response curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveZone {
    /// Smallest `x` of the active zone.
    pub min_x: f64,
    /// Largest `x` of the active zone.
    pub max_x: f64,
    /// Index of the first sample inside the zone.
    pub first_index: usize,
    /// Index of the last sample inside the zone (inclusive).
    pub last_index: usize,
}

impl ActiveZone {
    /// Width of the zone in the (possibly transformed) `x` units.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Number of samples inside the zone.
    pub fn sample_count(&self) -> usize {
        self.last_index - self.first_index + 1
    }

    /// Returns `true` if `x` lies inside the zone.
    pub fn contains(&self, x: f64) -> bool {
        (self.min_x..=self.max_x).contains(&x)
    }
}

/// Configuration for the saturation detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaturationDetector {
    /// Fraction of the total dynamic range below which a sample is considered
    /// saturated at the floor (default 0.05).
    pub low_fraction: f64,
    /// Fraction of the total dynamic range above which a sample is considered
    /// saturated at the ceiling (default 0.95).
    pub high_fraction: f64,
}

impl Default for SaturationDetector {
    fn default() -> Self {
        Self { low_fraction: 0.05, high_fraction: 0.95 }
    }
}

impl SaturationDetector {
    /// Creates a detector with the given floor/ceiling fractions.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::OutOfDomain`] unless `0 ≤ low < high ≤ 1`.
    pub fn new(low_fraction: f64, high_fraction: f64) -> Result<Self, AnalysisError> {
        if !low_fraction.is_finite()
            || !high_fraction.is_finite()
            || !(0.0..1.0).contains(&low_fraction)
            || !(0.0..=1.0).contains(&high_fraction)
            || low_fraction >= high_fraction
        {
            return Err(AnalysisError::OutOfDomain {
                value: low_fraction,
                min: 0.0,
                max: high_fraction,
            });
        }
        Ok(Self { low_fraction, high_fraction })
    }

    /// Finds the contiguous zone of the curve where the response is neither
    /// pinned at its floor nor at its ceiling.
    ///
    /// The zone is the smallest contiguous index range containing every
    /// sample whose normalized response lies strictly between
    /// `low_fraction` and `high_fraction` of the total dynamic range. If a
    /// boundary sample exists on either side it is included, so the zone
    /// brackets the transition like the vertical lines in Figure 1.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::ZeroVariance`] if the curve is flat (no dynamic range).
    /// * [`AnalysisError::NotEnoughData`] if fewer than two samples end up in the zone.
    pub fn find_active_zone(&self, curve: &Curve) -> Result<ActiveZone, AnalysisError> {
        let points = curve.points();
        let (min_y, max_y) = curve.range();
        let span = max_y - min_y;
        if span <= f64::EPSILON {
            return Err(AnalysisError::ZeroVariance);
        }

        let normalized: Vec<f64> = points.iter().map(|&(_, y)| (y - min_y) / span).collect();
        let active: Vec<usize> = normalized
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > self.low_fraction && v < self.high_fraction)
            .map(|(i, _)| i)
            .collect();

        let (mut first, mut last) = match (active.first(), active.last()) {
            (Some(&f), Some(&l)) => (f, l),
            _ => {
                // No strictly-interior samples: the transition happens between
                // two consecutive samples. Find the steepest jump.
                let steepest = normalized
                    .windows(2)
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        (a[1] - a[0]).abs().partial_cmp(&(b[1] - b[0]).abs()).expect("finite")
                    })
                    .map(|(i, _)| i)
                    .ok_or(AnalysisError::NotEnoughData { required: 2, actual: points.len() })?;
                (steepest, steepest + 1)
            }
        };

        // Include one bracketing sample on each side when available.
        first = first.saturating_sub(1);
        last = (last + 1).min(points.len() - 1);

        if last - first + 1 < 2 {
            return Err(AnalysisError::NotEnoughData { required: 2, actual: last - first + 1 });
        }

        Ok(ActiveZone {
            min_x: points[first].0,
            max_x: points[last].0,
            first_index: first,
            last_index: last,
        })
    }
}

/// Finds the active zone with the default detector thresholds.
///
/// # Errors
///
/// See [`SaturationDetector::find_active_zone`].
pub fn find_active_zone(curve: &Curve) -> Result<ActiveZone, AnalysisError> {
    SaturationDetector::default().find_active_zone(curve)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sigmoid-like response: saturated low, transition, saturated high —
    /// the shape of Figure 1a with x = ln(ε).
    fn sigmoid_curve() -> Curve {
        let samples: Vec<(f64, f64)> = (0..41)
            .map(|i| {
                let x = -9.0 + i as f64 * 0.25; // ln(eps) from about -9 to 1
                let y = 0.4 / (1.0 + (-(x + 3.5) * 2.0).exp());
                (x, y)
            })
            .collect();
        Curve::new(samples).unwrap()
    }

    #[test]
    fn detector_validation() {
        assert!(SaturationDetector::new(0.05, 0.95).is_ok());
        assert!(SaturationDetector::new(0.5, 0.5).is_err());
        assert!(SaturationDetector::new(-0.1, 0.9).is_err());
        assert!(SaturationDetector::new(0.1, 1.1).is_err());
        assert!(SaturationDetector::new(f64::NAN, 0.9).is_err());
    }

    #[test]
    fn sigmoid_active_zone_brackets_the_transition() {
        let curve = sigmoid_curve();
        let zone = find_active_zone(&curve).unwrap();
        // The logistic midpoint is at x = -3.5; the zone must contain it.
        assert!(zone.contains(-3.5), "zone {zone:?}");
        // The saturated tails must be excluded.
        assert!(zone.min_x > -9.0);
        assert!(zone.max_x < 1.0);
        assert!(zone.width() > 0.5);
        assert!(zone.sample_count() >= 3);
        assert_eq!(zone.sample_count(), zone.last_index - zone.first_index + 1);
    }

    #[test]
    fn flat_curve_is_rejected() {
        let curve = Curve::new(vec![(0.0, 0.3), (1.0, 0.3), (2.0, 0.3)]).unwrap();
        assert_eq!(find_active_zone(&curve), Err(AnalysisError::ZeroVariance));
    }

    #[test]
    fn linear_curve_is_fully_active() {
        let samples: Vec<(f64, f64)> = (0..11).map(|i| (i as f64, i as f64)).collect();
        let curve = Curve::new(samples).unwrap();
        let zone = find_active_zone(&curve).unwrap();
        // All interior samples are active; the zone spans (almost) everything.
        assert_eq!(zone.first_index, 0);
        assert_eq!(zone.last_index, 10);
    }

    #[test]
    fn step_function_zone_is_the_jump() {
        // 0, 0, 0, 1, 1, 1: no strictly-interior samples.
        let samples = vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 1.0), (4.0, 1.0), (5.0, 1.0)];
        let curve = Curve::new(samples).unwrap();
        let zone = find_active_zone(&curve).unwrap();
        assert!(zone.contains(2.0) && zone.contains(3.0), "zone {zone:?}");
        assert!(zone.width() <= 3.0);
    }

    #[test]
    fn custom_thresholds_change_the_zone_width() {
        let curve = sigmoid_curve();
        let strict = SaturationDetector::new(0.2, 0.8).unwrap().find_active_zone(&curve).unwrap();
        let loose = SaturationDetector::new(0.01, 0.99).unwrap().find_active_zone(&curve).unwrap();
        assert!(loose.width() >= strict.width());
    }

    #[test]
    fn decreasing_response_is_supported() {
        let samples: Vec<(f64, f64)> = (0..31)
            .map(|i| {
                let x = i as f64 * 0.3;
                let y = 1.0 - 1.0 / (1.0 + (-(x - 4.5) * 1.5).exp());
                (x, y)
            })
            .collect();
        let curve = Curve::new(samples).unwrap();
        let zone = find_active_zone(&curve).unwrap();
        assert!(zone.contains(4.5));
    }
}
