//! Property-based tests for the numerical analysis substrate.

use geopriv_analysis::model::{LogLinearModel, ResponseModel};
use geopriv_analysis::{find_active_zone, stats, Curve, Matrix, Pca, SimpleLinearRegression};
use proptest::prelude::*;

fn finite_samples(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, min_len..max_len)
}

proptest! {
    #[test]
    fn mean_is_between_min_and_max(data in finite_samples(1, 50)) {
        let m = stats::mean(&data).unwrap();
        let lo = stats::min(&data).unwrap();
        let hi = stats::max(&data).unwrap();
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn variance_is_nonnegative_and_shift_invariant(data in finite_samples(2, 50), shift in -1e5f64..1e5) {
        let v = stats::variance(&data).unwrap();
        prop_assert!(v >= 0.0);
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        let vs = stats::variance(&shifted).unwrap();
        prop_assert!((v - vs).abs() <= 1e-6 * v.max(1.0));
    }

    #[test]
    fn quantiles_are_monotone(data in finite_samples(1, 50), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = stats::quantile(&data, lo).unwrap();
        let b = stats::quantile(&data, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn correlation_is_bounded(x in finite_samples(3, 30), noise in finite_samples(3, 30)) {
        let n = x.len().min(noise.len());
        let x = &x[..n];
        let y: Vec<f64> = x.iter().zip(&noise[..n]).map(|(a, b)| a * 0.5 + b * 0.1).collect();
        if let Ok(r) = stats::pearson_correlation(x, &y) {
            prop_assert!((-1.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn regression_residuals_are_orthogonal_to_predictor(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        xs in prop::collection::vec(-100.0f64..100.0, 3..30),
        noise in prop::collection::vec(-1.0f64..1.0, 3..30),
    ) {
        let n = xs.len().min(noise.len());
        let xs = &xs[..n];
        let ys: Vec<f64> = xs.iter().zip(&noise[..n]).map(|(x, e)| intercept + slope * x + e).collect();
        if let Ok(fit) = SimpleLinearRegression::fit(xs, &ys) {
            // OLS residuals sum to ~0 and are uncorrelated with x.
            let residuals: Vec<f64> = xs.iter().zip(&ys).map(|(x, y)| y - fit.predict(*x)).collect();
            let sum: f64 = residuals.iter().sum();
            prop_assert!(sum.abs() < 1e-6 * (n as f64) * (1.0 + slope.abs() + intercept.abs()));
            prop_assert!((0.0..=1.0).contains(&fit.r_squared()));
        }
    }

    #[test]
    fn linear_solve_verifies_by_substitution(seed in 0u64..10_000) {
        // Build a well-conditioned system: diagonally dominant 4x4.
        let mut rows = Vec::new();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..4 {
            let mut row: Vec<f64> = (0..4).map(|_| next()).collect();
            row[i] += 10.0;
            rows.push(row);
        }
        let b: Vec<f64> = (0..4).map(|_| next() * 5.0).collect();
        let m = Matrix::from_rows(&rows).unwrap();
        let x = m.solve(&b).unwrap();
        let back = m.multiply_vec(&x).unwrap();
        for (computed, expected) in back.iter().zip(&b) {
            prop_assert!((computed - expected).abs() < 1e-8);
        }
    }

    #[test]
    fn pca_explained_variance_sums_to_one(rows in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3), 5..40)) {
        if let Ok(pca) = Pca::fit(&rows) {
            let total: f64 = pca.components().iter().map(|c| c.explained_variance_ratio).sum();
            prop_assert!((total - 1.0).abs() < 1e-6 || total.abs() < 1e-9);
            for c in pca.components() {
                prop_assert!(c.eigenvalue >= -1e-9);
                // Loadings are unit vectors.
                let norm: f64 = c.loadings.iter().map(|v| v * v).sum::<f64>().sqrt();
                prop_assert!((norm - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn curve_interpolation_stays_within_segment_bounds(
        mut ys in prop::collection::vec(-50.0f64..50.0, 2..20),
        t in 0.0f64..1.0,
    ) {
        let samples: Vec<(f64, f64)> = ys.drain(..).enumerate().map(|(i, y)| (i as f64, y)).collect();
        let curve = Curve::new(samples.clone()).unwrap();
        let (min_x, max_x) = curve.domain();
        let x = min_x + t * (max_x - min_x);
        let y = curve.interpolate(x).unwrap();
        let (min_y, max_y) = curve.range();
        prop_assert!(y >= min_y - 1e-9 && y <= max_y + 1e-9);
    }

    #[test]
    fn monotone_curve_inversion_roundtrips(ys_raw in prop::collection::vec(0.01f64..5.0, 3..15), t in 0.05f64..0.95) {
        // Build a strictly increasing curve from positive increments.
        let mut acc = 0.0;
        let samples: Vec<(f64, f64)> = ys_raw
            .iter()
            .enumerate()
            .map(|(i, dy)| {
                acc += dy;
                (i as f64, acc)
            })
            .collect();
        let curve = Curve::new(samples).unwrap();
        let (min_x, max_x) = curve.domain();
        let x = min_x + t * (max_x - min_x);
        let y = curve.interpolate(x).unwrap();
        let back = curve.invert(y).unwrap();
        prop_assert!((back - x).abs() < 1e-6);
    }

    #[test]
    fn log_linear_model_inversion_roundtrips(intercept in -2.0f64..2.0, slope in 0.01f64..1.0, t in 0.1f64..0.9) {
        let eps: Vec<f64> = (1..25).map(|i| 1e-4 * 1.5f64.powi(i)).collect();
        let ys: Vec<f64> = eps.iter().map(|e| intercept + slope * e.ln()).collect();
        let model = LogLinearModel::fit(&eps, &ys).unwrap();
        let (lo, hi) = model.domain();
        let x = lo * (hi / lo).powf(t);
        let y = model.predict(x);
        let back = model.invert(y).unwrap();
        prop_assert!((back - x).abs() / x < 1e-6);
        prop_assert!(model.r_squared() > 0.999);
    }

    #[test]
    fn active_zone_is_inside_domain(midpoint in -5.0f64..5.0, steepness in 0.5f64..4.0, amplitude in 0.1f64..1.0) {
        let samples: Vec<(f64, f64)> = (0..60)
            .map(|i| {
                let x = -10.0 + i as f64 / 3.0;
                (x, amplitude / (1.0 + (-(x - midpoint) * steepness).exp()))
            })
            .collect();
        let curve = Curve::new(samples).unwrap();
        let zone = find_active_zone(&curve).unwrap();
        let (min_x, max_x) = curve.domain();
        prop_assert!(zone.min_x >= min_x && zone.max_x <= max_x);
        prop_assert!(zone.min_x < zone.max_x);
        prop_assert!(zone.contains(midpoint.clamp(min_x, max_x)) || zone.width() > 0.0);
    }
}
