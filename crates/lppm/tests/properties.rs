//! Property-based tests of the protection mechanisms.

use geopriv_geo::{distance, GeoPoint, Meters, Seconds};
use geopriv_lppm::{
    CoordinateRounding, Epsilon, GaussianPerturbation, GeoIndistinguishability, GridCloaking,
    Identity, Lppm, ReleaseSampling, SpeedSmoothing, TemporalDownsampling,
};
use geopriv_mobility::{Record, Trace, UserId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic trace near San Francisco parameterized by length and step size.
fn trace(n: usize, step_m: f64) -> Trace {
    let records: Vec<Record> = (0..n.max(2))
        .map(|i| {
            Record::new(
                Seconds::new(i as f64 * 30.0),
                GeoPoint::clamped(
                    37.75 + (i as f64 * step_m * ((i % 3) as f64 - 1.0)) / 111_000.0,
                    -122.44 + (i as f64 * step_m) / 88_000.0,
                ),
            )
        })
        .collect();
    Trace::new(UserId::new(9), records).expect("ordered records")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_mechanisms_produce_valid_nonempty_traces(
        n in 2usize..150,
        step in 0.0f64..120.0,
        epsilon in 1e-4f64..1.0,
        sigma in 0.0f64..2_000.0,
        cell in 50.0f64..2_000.0,
        alpha in 10.0f64..1_000.0,
        digits in 0u8..8,
        factor in 1usize..16,
        probability in 0.01f64..1.0,
        seed in 0u64..500,
    ) {
        let t = trace(n, step);
        let mechanisms: Vec<Box<dyn Lppm>> = vec![
            Box::new(Identity::new()),
            Box::new(GeoIndistinguishability::new(Epsilon::new(epsilon).unwrap())),
            Box::new(GaussianPerturbation::new(Meters::new(sigma)).unwrap()),
            Box::new(GridCloaking::new(Meters::new(cell)).unwrap()),
            Box::new(SpeedSmoothing::new(Meters::new(alpha)).unwrap()),
            Box::new(CoordinateRounding::new(digits.min(7)).unwrap()),
            Box::new(TemporalDownsampling::new(factor).unwrap()),
            Box::new(ReleaseSampling::new(probability).unwrap()),
        ];
        for mechanism in &mechanisms {
            let mut rng = StdRng::seed_from_u64(seed);
            let protected = mechanism.protect_trace(&t, &mut rng).unwrap();
            prop_assert!(!protected.is_empty(), "{} emptied the trace", mechanism.name());
            prop_assert_eq!(protected.user(), t.user());
            // Timestamps stay within the original observation window and ordered.
            prop_assert!(protected.first().timestamp() >= t.first().timestamp() - Seconds::new(1e-9));
            prop_assert!(protected.last().timestamp() <= t.last().timestamp() + Seconds::new(1e-9));
            for w in protected.to_records().windows(2) {
                prop_assert!(w[0].timestamp() <= w[1].timestamp());
            }
            // Coordinates stay valid.
            for r in &protected {
                prop_assert!((-90.0..=90.0).contains(&r.location().latitude()));
                prop_assert!((-180.0..=180.0).contains(&r.location().longitude()));
            }
        }
    }

    #[test]
    fn geoi_mean_displacement_scales_inversely_with_epsilon(
        epsilon in 0.002f64..0.5,
        seed in 0u64..500,
    ) {
        // Enough records for the empirical mean to concentrate.
        let t = trace(400, 30.0);
        let geoi = GeoIndistinguishability::new(Epsilon::new(epsilon).unwrap());
        let mut rng = StdRng::seed_from_u64(seed);
        let protected = geoi.protect_trace(&t, &mut rng).unwrap();
        let mean: f64 = t
            .iter()
            .zip(protected.iter())
            .map(|(a, b)| distance::haversine(a.location(), b.location()).as_f64())
            .sum::<f64>()
            / t.len() as f64;
        let expected = 2.0 / epsilon;
        prop_assert!(
            (mean - expected).abs() / expected < 0.35,
            "epsilon {}: mean displacement {} expected {}",
            epsilon,
            mean,
            expected
        );
    }

    #[test]
    fn deterministic_mechanisms_ignore_the_rng(
        n in 2usize..100,
        step in 0.0f64..100.0,
        cell in 50.0f64..1_500.0,
        digits in 0u8..8,
        seed_a in 0u64..100,
        seed_b in 100u64..200,
    ) {
        let t = trace(n, step);
        let deterministic: Vec<Box<dyn Lppm>> = vec![
            Box::new(GridCloaking::new(Meters::new(cell)).unwrap()),
            Box::new(CoordinateRounding::new(digits.min(7)).unwrap()),
            Box::new(SpeedSmoothing::new(Meters::new(cell)).unwrap()),
            Box::new(TemporalDownsampling::new(3).unwrap()),
            Box::new(Identity::new()),
        ];
        for mechanism in &deterministic {
            let mut rng_a = StdRng::seed_from_u64(seed_a);
            let mut rng_b = StdRng::seed_from_u64(seed_b);
            prop_assert_eq!(
                mechanism.protect_trace(&t, &mut rng_a).unwrap(),
                mechanism.protect_trace(&t, &mut rng_b).unwrap(),
                "{} is not deterministic",
                mechanism.name()
            );
        }
    }

    #[test]
    fn downsampling_keeps_ceil_n_over_factor_records(n in 2usize..200, factor in 1usize..20) {
        let t = trace(n, 25.0);
        let mut rng = StdRng::seed_from_u64(1);
        let protected = TemporalDownsampling::new(factor).unwrap().protect_trace(&t, &mut rng).unwrap();
        let expected = t.len().div_ceil(factor);
        prop_assert_eq!(protected.len(), expected);
    }

    #[test]
    fn release_sampling_is_a_subset_preserving_order(n in 2usize..200, probability in 0.05f64..1.0, seed in 0u64..300) {
        let t = trace(n, 40.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let protected = ReleaseSampling::new(probability).unwrap().protect_trace(&t, &mut rng).unwrap();
        prop_assert!(protected.len() <= t.len());
        // Every released record exists verbatim in the original trace.
        let originals: Vec<(f64, f64, f64)> = t
            .iter()
            .map(|r| (r.timestamp().as_f64(), r.location().latitude(), r.location().longitude()))
            .collect();
        for r in &protected {
            let key = (r.timestamp().as_f64(), r.location().latitude(), r.location().longitude());
            prop_assert!(originals.contains(&key));
        }
    }

    #[test]
    fn cloaking_and_rounding_displacements_are_bounded(
        n in 2usize..100,
        step in 0.0f64..100.0,
        cell in 50.0f64..2_000.0,
        digits in 2u8..7,
    ) {
        let t = trace(n, step);
        let mut rng = StdRng::seed_from_u64(5);

        let cloaked = GridCloaking::new(Meters::new(cell)).unwrap().protect_trace(&t, &mut rng).unwrap();
        let cloak_bound = cell / 2.0 * 2f64.sqrt() * 1.02;
        for (a, b) in t.iter().zip(cloaked.iter()) {
            prop_assert!(distance::haversine(a.location(), b.location()).as_f64() <= cloak_bound);
        }

        let rounding = CoordinateRounding::new(digits).unwrap();
        let rounded = rounding.protect_trace(&t, &mut rng).unwrap();
        let round_bound = rounding.approximate_granularity_m() * 0.75;
        for (a, b) in t.iter().zip(rounded.iter()) {
            prop_assert!(distance::haversine(a.location(), b.location()).as_f64() <= round_bound);
        }
    }
}

/// Property tests of the configuration-space enumeration contract
/// (`ParameterDescriptor::sweep` and `ConfigSpace::grid` /
/// `ConfigSpace::one_at_a_time`): monotone per axis, exact endpoints, every
/// generated point valid, deterministic ordering.
mod space_enumeration {
    use geopriv_lppm::{ConfigSpace, ParameterDescriptor, ParameterScale};
    use proptest::prelude::*;

    /// A strategy over valid descriptors: name, range and scale (strictly
    /// positive ranges so both scales are valid).
    fn descriptor(name: &'static str) -> impl Strategy<Value = ParameterDescriptor> {
        // The vendored proptest shim has no prop_oneof!; draw the scale from
        // an integer instead.
        (1e-6f64..1e3, 1.0001f64..1e4, 0u8..2).prop_map(move |(min, ratio, scale_pick)| {
            let scale =
                if scale_pick == 0 { ParameterScale::Linear } else { ParameterScale::Logarithmic };
            ParameterDescriptor::new(name, min, min * ratio, scale)
                .expect("strictly positive non-empty range")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn sweeps_are_monotone_with_exact_endpoints_inside_the_range(
            axis in descriptor("p"),
            count in 0usize..60,
        ) {
            let sweep = axis.sweep(count);
            // The count is clamped to at least 2.
            prop_assert_eq!(sweep.len(), count.max(2));
            // Both endpoints exactly — no ULP drift tolerated.
            prop_assert_eq!(sweep[0], axis.min());
            prop_assert_eq!(*sweep.last().unwrap(), axis.max());
            // Strictly increasing, and every value in range.
            prop_assert!(sweep.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(sweep.iter().all(|&v| axis.contains(v)));
            // Deterministic: re-enumeration is identical.
            prop_assert_eq!(sweep, axis.sweep(count));
        }

        #[test]
        fn grids_enumerate_the_full_factorial_in_row_major_order(
            a in descriptor("a"),
            b in descriptor("b"),
            count_a in 2usize..7,
            count_b in 2usize..7,
        ) {
            let space = ConfigSpace::new(vec![a.clone(), b.clone()]).unwrap();
            let grid = space.grid(&[count_a, count_b]).unwrap();
            prop_assert_eq!(grid.len(), count_a * count_b);

            // Every generated point validates against the space.
            prop_assert!(grid.iter().all(|p| space.contains(p)));

            // Row-major: the last axis varies fastest, each axis's own
            // column is monotone within a row/block.
            let sweep_a = a.sweep(count_a);
            let sweep_b = b.sweep(count_b);
            for (index, point) in grid.iter().enumerate() {
                prop_assert_eq!(point.get("a").unwrap(), sweep_a[index / count_b]);
                prop_assert_eq!(point.get("b").unwrap(), sweep_b[index % count_b]);
            }
            // Corners carry the exact endpoints.
            prop_assert_eq!(grid[0].coords(), vec![a.min(), b.min()]);
            prop_assert_eq!(grid[grid.len() - 1].coords(), vec![a.max(), b.max()]);

            // Deterministic ordering: re-enumeration is identical.
            prop_assert_eq!(space.grid(&[count_a, count_b]).unwrap(), grid);
        }

        #[test]
        fn one_at_a_time_legs_hold_other_axes_at_defaults(
            a in descriptor("a"),
            b in descriptor("b"),
            count_a in 2usize..7,
            count_b in 2usize..7,
        ) {
            let space = ConfigSpace::new(vec![a.clone(), b.clone()]).unwrap();
            let star = space.one_at_a_time(&[count_a, count_b]).unwrap();
            prop_assert_eq!(star.len(), count_a + count_b);
            prop_assert!(star.iter().all(|p| space.contains(p)));

            let sweep_a = a.sweep(count_a);
            let sweep_b = b.sweep(count_b);
            for (i, point) in star[..count_a].iter().enumerate() {
                prop_assert_eq!(point.get("a").unwrap(), sweep_a[i]);
                prop_assert_eq!(point.get("b").unwrap(), b.default_value());
            }
            for (i, point) in star[count_a..].iter().enumerate() {
                prop_assert_eq!(point.get("a").unwrap(), a.default_value());
                prop_assert_eq!(point.get("b").unwrap(), sweep_b[i]);
            }
            prop_assert_eq!(space.one_at_a_time(&[count_a, count_b]).unwrap(), star);
        }

        #[test]
        fn one_axis_grids_equal_the_descriptor_sweep(
            axis in descriptor("p"),
            count in 2usize..40,
        ) {
            let space = ConfigSpace::single(axis.clone());
            let grid = space.grid(&[count]).unwrap();
            let star = space.one_at_a_time(&[count]).unwrap();
            let sweep = axis.sweep(count);
            prop_assert_eq!(grid.len(), sweep.len());
            for (point, value) in grid.iter().zip(&sweep) {
                prop_assert_eq!(point.single().unwrap(), *value);
            }
            // Both modes coincide on one axis — the single-scalar contract.
            prop_assert_eq!(star, grid);
        }
    }
}
