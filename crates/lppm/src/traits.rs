//! The [`Lppm`] trait: the common interface of every protection mechanism.

use crate::error::LppmError;
use crate::params::ParameterDescriptor;
use geopriv_mobility::{Dataset, Trace};
use rand::RngCore;

/// A Location Privacy Protection Mechanism.
///
/// An LPPM transforms an *actual* mobility trace into a *protected* trace
/// that can be released to a location-based service. Implementations receive
/// a random-number generator explicitly so that experiments are reproducible
/// under a fixed seed; deterministic mechanisms simply ignore it.
///
/// The trait is object safe: the configuration framework stores mechanisms as
/// `Box<dyn Lppm>` when sweeping configuration parameters.
pub trait Lppm: Send + Sync {
    /// Human-readable name of the mechanism (e.g. `"geo-indistinguishability"`).
    fn name(&self) -> &str;

    /// The mechanism's configuration parameters and their valid ranges.
    ///
    /// Used by the configuration framework to know what to sweep. Mechanisms
    /// without configuration return an empty vector.
    fn parameters(&self) -> Vec<ParameterDescriptor>;

    /// Protects a single trace.
    ///
    /// # Errors
    ///
    /// Implementations return [`LppmError`] if the protected trace cannot be
    /// constructed (for example when every record was dropped).
    fn protect_trace(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, LppmError>;

    /// Protects every trace of a dataset.
    ///
    /// The default implementation applies [`Lppm::protect_trace`] to each
    /// trace in order.
    ///
    /// # Errors
    ///
    /// Propagates the first per-trace error.
    fn protect_dataset(
        &self,
        dataset: &Dataset,
        rng: &mut dyn RngCore,
    ) -> Result<Dataset, LppmError> {
        let mut protected = Vec::with_capacity(dataset.len());
        for trace in dataset {
            protected.push(self.protect_trace(trace, rng)?);
        }
        Ok(Dataset::new(protected)?)
    }
}

/// A no-op mechanism that releases the actual trace unchanged.
///
/// Useful as the "no protection" baseline: privacy metrics should be at their
/// worst and utility metrics at their best when evaluated against it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Identity;

impl Identity {
    /// Creates the identity mechanism.
    pub fn new() -> Self {
        Self
    }
}

impl Lppm for Identity {
    fn name(&self) -> &str {
        "identity"
    }

    fn parameters(&self) -> Vec<ParameterDescriptor> {
        Vec::new()
    }

    fn protect_trace(&self, trace: &Trace, _rng: &mut dyn RngCore) -> Result<Trace, LppmError> {
        Ok(trace.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_geo::{GeoPoint, Seconds};
    use geopriv_mobility::{Record, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        let trace = Trace::new(
            UserId::new(1),
            vec![
                Record::new(Seconds::new(0.0), GeoPoint::new(37.77, -122.41).unwrap()),
                Record::new(Seconds::new(60.0), GeoPoint::new(37.78, -122.42).unwrap()),
            ],
        )
        .unwrap();
        Dataset::new(vec![trace]).unwrap()
    }

    #[test]
    fn identity_returns_the_same_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = dataset();
        let lppm = Identity::new();
        assert_eq!(lppm.name(), "identity");
        assert!(lppm.parameters().is_empty());
        let protected = lppm.protect_dataset(&d, &mut rng).unwrap();
        assert_eq!(protected, d);
    }

    #[test]
    fn lppm_is_object_safe() {
        let mut rng = StdRng::seed_from_u64(2);
        let mechanisms: Vec<Box<dyn Lppm>> = vec![Box::new(Identity::new())];
        let d = dataset();
        for m in &mechanisms {
            assert!(m.protect_dataset(&d, &mut rng).is_ok());
        }
    }
}
