//! The [`Lppm`] trait: the common interface of every protection mechanism.

use crate::error::LppmError;
use crate::params::ParameterDescriptor;
use crate::stream::LppmStream;
use geopriv_mobility::{Dataset, DatasetBuilder, Trace, TraceView};
use rand::RngCore;

/// A Location Privacy Protection Mechanism.
///
/// An LPPM transforms an *actual* mobility trace into a *protected* trace
/// that can be released to a location-based service. Implementations receive
/// a random-number generator explicitly so that experiments are reproducible
/// under a fixed seed; deterministic mechanisms simply ignore it.
///
/// The trait is object safe: the configuration framework stores mechanisms as
/// `Box<dyn Lppm>` when sweeping configuration parameters.
pub trait Lppm: Send + Sync {
    /// Human-readable name of the mechanism (e.g. `"geo-indistinguishability"`).
    fn name(&self) -> &str;

    /// The mechanism's configuration parameters and their valid ranges.
    ///
    /// Used by the configuration framework to know what to sweep. Mechanisms
    /// without configuration return an empty vector.
    fn parameters(&self) -> Vec<ParameterDescriptor>;

    /// Protects a single trace.
    ///
    /// # Errors
    ///
    /// Implementations return [`LppmError`] if the protected trace cannot be
    /// constructed (for example when every record was dropped).
    fn protect_trace(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, LppmError>;

    /// Protects one trace given as a zero-copy columnar view, appending the
    /// protected trace to the columnar `out` builder.
    ///
    /// This is the hot path of [`Lppm::protect_dataset`]: perturbation
    /// mechanisms override it to write protected coordinates straight into
    /// the shared output columns, skipping every intermediate `Vec<Record>`.
    /// The default implementation materializes the view and falls back to
    /// [`Lppm::protect_trace`] — correct for any mechanism, including those
    /// that drop or resample records.
    ///
    /// Overrides must draw from `rng` in exactly the per-record order of
    /// their `protect_trace`, so that the columnar and row paths stay
    /// bit-identical under a fixed seed.
    ///
    /// # Errors
    ///
    /// Implementations return [`LppmError`] if the protected trace cannot be
    /// constructed (for example when every record was dropped).
    fn protect_view(
        &self,
        trace: TraceView<'_>,
        out: &mut DatasetBuilder,
        rng: &mut dyn RngCore,
    ) -> Result<(), LppmError> {
        let protected = self.protect_trace(&trace.to_trace(), rng)?;
        out.push_trace(&protected);
        Ok(())
    }

    /// Protects every trace of a dataset.
    ///
    /// The default implementation streams [`Lppm::protect_view`] over each
    /// trace in order, assembling the protected dataset columnar-to-columnar
    /// through a [`DatasetBuilder`].
    ///
    /// # Errors
    ///
    /// Propagates the first per-trace error.
    fn protect_dataset(
        &self,
        dataset: &Dataset,
        rng: &mut dyn RngCore,
    ) -> Result<Dataset, LppmError> {
        let mut out = DatasetBuilder::with_capacity(dataset.len(), dataset.record_count());
        for trace in dataset {
            self.protect_view(trace, &mut out, rng)?;
        }
        Ok(out.finish()?)
    }

    /// An O(1)-per-push streaming session kernel for this mechanism, or
    /// `None` (the default) to stream through the prefix-replaying fallback.
    ///
    /// [`crate::stream::open_stream`] is the public entry point — call that,
    /// not this. Overrides must uphold the streaming bit-identity contract:
    /// pushing records r₁…rₙ in order releases exactly the records
    /// [`Lppm::protect_view`] writes for the trace (r₁…rₙ) under a fresh
    /// `StdRng::seed_from_u64(seed)` — same per-record operations, same RNG
    /// draw order, same projection anchoring.
    fn stream_kernel(&self, seed: u64) -> Option<Box<dyn LppmStream>> {
        let _ = seed;
        None
    }
}

/// A no-op mechanism that releases the actual trace unchanged.
///
/// Useful as the "no protection" baseline: privacy metrics should be at their
/// worst and utility metrics at their best when evaluated against it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Identity;

impl Identity {
    /// Creates the identity mechanism.
    pub fn new() -> Self {
        Self
    }
}

impl Lppm for Identity {
    fn name(&self) -> &str {
        "identity"
    }

    fn parameters(&self) -> Vec<ParameterDescriptor> {
        Vec::new()
    }

    fn protect_trace(&self, trace: &Trace, _rng: &mut dyn RngCore) -> Result<Trace, LppmError> {
        Ok(trace.clone())
    }

    fn protect_view(
        &self,
        trace: TraceView<'_>,
        out: &mut DatasetBuilder,
        _rng: &mut dyn RngCore,
    ) -> Result<(), LppmError> {
        out.push_view(trace);
        Ok(())
    }

    fn stream_kernel(&self, _seed: u64) -> Option<Box<dyn LppmStream>> {
        Some(Box::new(IdentityStream { released: 0 }))
    }
}

/// The trivial streaming kernel of [`Identity`]: releases every record
/// unchanged, drawing no randomness — exactly the columnar path.
struct IdentityStream {
    released: usize,
}

impl LppmStream for IdentityStream {
    fn push(
        &mut self,
        record: geopriv_mobility::Record,
    ) -> Result<geopriv_mobility::Record, LppmError> {
        self.released += 1;
        Ok(record)
    }

    fn len(&self) -> usize {
        self.released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_geo::{GeoPoint, Seconds};
    use geopriv_mobility::{Record, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        let trace = Trace::new(
            UserId::new(1),
            vec![
                Record::new(Seconds::new(0.0), GeoPoint::new(37.77, -122.41).unwrap()),
                Record::new(Seconds::new(60.0), GeoPoint::new(37.78, -122.42).unwrap()),
            ],
        )
        .unwrap();
        Dataset::new(vec![trace]).unwrap()
    }

    #[test]
    fn identity_returns_the_same_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = dataset();
        let lppm = Identity::new();
        assert_eq!(lppm.name(), "identity");
        assert!(lppm.parameters().is_empty());
        let protected = lppm.protect_dataset(&d, &mut rng).unwrap();
        assert_eq!(protected, d);
    }

    #[test]
    fn lppm_is_object_safe() {
        let mut rng = StdRng::seed_from_u64(2);
        let mechanisms: Vec<Box<dyn Lppm>> = vec![Box::new(Identity::new())];
        let d = dataset();
        for m in &mechanisms {
            assert!(m.protect_dataset(&d, &mut rng).is_ok());
        }
    }
}
