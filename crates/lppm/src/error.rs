//! Error type for LPPM operations.

use geopriv_mobility::MobilityError;
use std::fmt;

/// Errors produced by the `geopriv-lppm` crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum LppmError {
    /// An LPPM was configured with an invalid parameter value.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the constraint.
        reason: &'static str,
    },
    /// The underlying mobility data could not be manipulated.
    Mobility(MobilityError),
    /// A mechanism dropped every record of a trace, which would produce an
    /// empty (invalid) protected trace.
    EmptyProtectedTrace,
    /// A mechanism cannot protect a record stream incrementally under the
    /// bit-identity contract of [`crate::stream::open_stream`] — it drops,
    /// resamples or reorders records, or consumes randomness non-causally.
    Unstreamable {
        /// Name of the mechanism.
        mechanism: String,
        /// Why the streaming contract cannot hold.
        reason: String,
    },
}

impl fmt::Display for LppmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LppmError::InvalidParameter { name, value, reason } => {
                write!(f, "invalid parameter {name} = {value}: {reason}")
            }
            LppmError::Mobility(e) => write!(f, "mobility error: {e}"),
            LppmError::EmptyProtectedTrace => {
                write!(f, "protection mechanism dropped every record of a trace")
            }
            LppmError::Unstreamable { mechanism, reason } => {
                write!(f, "mechanism \"{mechanism}\" cannot protect a record stream: {reason}")
            }
        }
    }
}

impl std::error::Error for LppmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LppmError::Mobility(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MobilityError> for LppmError {
    fn from(e: MobilityError) -> Self {
        LppmError::Mobility(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LppmError::InvalidParameter {
            name: "epsilon",
            value: -1.0,
            reason: "must be positive",
        };
        assert!(e.to_string().contains("epsilon"));
        assert!(std::error::Error::source(&e).is_none());

        let m = LppmError::from(MobilityError::EmptyTrace);
        assert!(m.to_string().contains("mobility"));
        assert!(std::error::Error::source(&m).is_some());

        assert!(LppmError::EmptyProtectedTrace.to_string().contains("dropped"));

        let e = LppmError::Unstreamable {
            mechanism: "pipeline[a, b]".into(),
            reason: "stage-major randomness".into(),
        };
        assert!(e.to_string().contains("pipeline[a, b]"));
        assert!(e.to_string().contains("record stream"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<LppmError>();
    }
}
