//! Spatial cloaking by grid rounding.
//!
//! A deterministic baseline LPPM: every location is snapped to the center of
//! a fixed square cell of configurable size. Cloaking generalizes rather than
//! randomizes — two nearby locations become indistinguishable when they share
//! a cell. It is one of the "other LPPMs" the paper's future work plans to
//! feed through the framework, and serves as a comparison point in the
//! ablation benches.

use crate::error::LppmError;
use crate::params::{ParameterDescriptor, ParameterScale};
use crate::stream::LppmStream;
use crate::traits::Lppm;
use geopriv_geo::{GeoPoint, LocalProjection, Meters, Point};
use geopriv_mobility::{DatasetBuilder, Record, Trace, TraceView};
use rand::RngCore;

/// Grid-rounding spatial cloaking with a fixed, data-independent grid origin.
///
/// # Examples
///
/// ```
/// use geopriv_lppm::{GridCloaking, Lppm};
/// use geopriv_geo::Meters;
///
/// # fn main() -> Result<(), geopriv_lppm::LppmError> {
/// let cloaking = GridCloaking::new(Meters::new(500.0))?;
/// assert_eq!(cloaking.cell_size().as_f64(), 500.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridCloaking {
    cell_size: Meters,
    origin: GeoPoint,
}

impl GridCloaking {
    /// Creates the mechanism with the given cell size and a default global origin.
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] for non-positive cell sizes.
    pub fn new(cell_size: Meters) -> Result<Self, LppmError> {
        Self::with_origin(cell_size, GeoPoint::clamped(0.0, 0.0))
    }

    /// Creates the mechanism with an explicit grid origin.
    ///
    /// The origin must be data independent (a fixed city reference point,
    /// not a function of the protected trace) or the grid itself leaks
    /// information.
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] for non-positive cell sizes.
    pub fn with_origin(cell_size: Meters, origin: GeoPoint) -> Result<Self, LppmError> {
        if !(cell_size.as_f64().is_finite() && cell_size.as_f64() > 0.0) {
            return Err(LppmError::InvalidParameter {
                name: "cell_size",
                value: cell_size.as_f64(),
                reason: "cell size must be finite and strictly positive",
            });
        }
        Ok(Self { cell_size, origin })
    }

    /// The cloaking cell size.
    pub fn cell_size(&self) -> Meters {
        self.cell_size
    }

    /// The parameter descriptor for the cell size (50 m to 5 km, logarithmic).
    pub fn cell_size_descriptor() -> ParameterDescriptor {
        ParameterDescriptor::new("cell_size", 50.0, 5_000.0, ParameterScale::Logarithmic)
            .expect("static descriptor is valid")
    }

    fn snap(&self, projection: &LocalProjection, location: GeoPoint) -> GeoPoint {
        let p = projection.project(location);
        let size = self.cell_size.as_f64();
        let snapped = Point::new(
            (p.x() / size).floor() * size + size / 2.0,
            (p.y() / size).floor() * size + size / 2.0,
        );
        projection.unproject(snapped)
    }
}

impl Lppm for GridCloaking {
    fn name(&self) -> &str {
        "grid-cloaking"
    }

    fn parameters(&self) -> Vec<ParameterDescriptor> {
        vec![Self::cell_size_descriptor()]
    }

    fn protect_trace(&self, trace: &Trace, _rng: &mut dyn RngCore) -> Result<Trace, LppmError> {
        let projection = LocalProjection::centered_on(self.origin);
        let locations = trace.iter().map(|r| self.snap(&projection, r.location())).collect();
        Ok(trace.with_locations(locations)?)
    }

    fn protect_view(
        &self,
        trace: TraceView<'_>,
        out: &mut DatasetBuilder,
        _rng: &mut dyn RngCore,
    ) -> Result<(), LppmError> {
        // Columnar twin of `protect_trace`: a deterministic scan snapping
        // each coordinate pair straight into the output columns.
        let projection = LocalProjection::centered_on(self.origin);
        out.begin_trace(trace.user());
        for record in trace.iter() {
            out.push_record(record.timestamp(), self.snap(&projection, record.location()));
        }
        out.finish_trace()?;
        Ok(())
    }

    fn stream_kernel(&self, _seed: u64) -> Option<Box<dyn LppmStream>> {
        // The grid is anchored on the *configured* origin (never on the
        // trace), so streaming is a stateless per-record snap — trivially
        // bit-identical to the offline scan, no RNG involved.
        Some(Box::new(GridCloakingStream {
            mechanism: *self,
            projection: LocalProjection::centered_on(self.origin),
            released: 0,
        }))
    }
}

/// O(1) streaming kernel of [`GridCloaking`]: a per-record snap against the
/// configured (trace-independent) grid.
struct GridCloakingStream {
    mechanism: GridCloaking,
    projection: LocalProjection,
    released: usize,
}

impl LppmStream for GridCloakingStream {
    fn push(&mut self, record: Record) -> Result<Record, LppmError> {
        self.released += 1;
        Ok(record.with_location(self.mechanism.snap(&self.projection, record.location())))
    }

    fn len(&self) -> usize {
        self.released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_geo::{distance, Seconds};
    use geopriv_mobility::{Record, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sf_origin() -> GeoPoint {
        GeoPoint::new(37.7749, -122.4194).unwrap()
    }

    fn trace() -> Trace {
        let records: Vec<Record> = (0..50)
            .map(|i| {
                Record::new(
                    Seconds::new(i as f64 * 30.0),
                    GeoPoint::new(37.76 + i as f64 * 0.0004, -122.45 + i as f64 * 0.0002).unwrap(),
                )
            })
            .collect();
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn construction_validates_cell_size() {
        assert!(GridCloaking::new(Meters::new(200.0)).is_ok());
        assert!(GridCloaking::new(Meters::new(0.0)).is_err());
        assert!(GridCloaking::new(Meters::new(-5.0)).is_err());
        assert!(GridCloaking::new(Meters::new(f64::NAN)).is_err());
        let c = GridCloaking::new(Meters::new(300.0)).unwrap();
        assert_eq!(c.name(), "grid-cloaking");
        assert_eq!(c.parameters()[0].name(), "cell_size");
    }

    #[test]
    fn snapping_is_deterministic_and_idempotent() {
        let mut rng = StdRng::seed_from_u64(1);
        let cloaking = GridCloaking::with_origin(Meters::new(500.0), sf_origin()).unwrap();
        let t = trace();
        let once = cloaking.protect_trace(&t, &mut rng).unwrap();
        let twice = cloaking.protect_trace(&once, &mut rng).unwrap();
        assert_eq!(once, twice);
        // And deterministic across calls (ignores the RNG).
        let again = cloaking.protect_trace(&t, &mut rng).unwrap();
        assert_eq!(once, again);
    }

    #[test]
    fn displacement_is_bounded_by_half_cell_diagonal() {
        let mut rng = StdRng::seed_from_u64(2);
        let cell = 400.0;
        let cloaking = GridCloaking::with_origin(Meters::new(cell), sf_origin()).unwrap();
        let t = trace();
        let protected = cloaking.protect_trace(&t, &mut rng).unwrap();
        let max_allowed = cell / 2.0 * 2f64.sqrt() * 1.01; // 1% slack for projection error
        for (a, b) in t.iter().zip(protected.iter()) {
            let d = distance::haversine(a.location(), b.location()).as_f64();
            assert!(d <= max_allowed, "displacement {d} exceeds {max_allowed}");
        }
    }

    #[test]
    fn nearby_points_collapse_to_the_same_release() {
        let mut rng = StdRng::seed_from_u64(3);
        let cloaking = GridCloaking::with_origin(Meters::new(1_000.0), sf_origin()).unwrap();
        let a = GeoPoint::new(37.7750, -122.4190).unwrap();
        let b = GeoPoint::new(37.7752, -122.4188).unwrap(); // ~30 m away, same 1 km cell
        let t = Trace::new(
            UserId::new(1),
            vec![Record::new(Seconds::new(0.0), a), Record::new(Seconds::new(30.0), b)],
        )
        .unwrap();
        let protected = cloaking.protect_trace(&t, &mut rng).unwrap();
        assert_eq!(protected.view().location(0), protected.view().location(1));
    }

    #[test]
    fn smaller_cells_preserve_more_detail() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = trace();
        let coarse = GridCloaking::with_origin(Meters::new(2_000.0), sf_origin())
            .unwrap()
            .protect_trace(&t, &mut rng)
            .unwrap();
        let fine = GridCloaking::with_origin(Meters::new(100.0), sf_origin())
            .unwrap()
            .protect_trace(&t, &mut rng)
            .unwrap();
        let distinct = |tr: &Trace| {
            let mut locations: Vec<(u64, u64)> = tr
                .iter()
                .map(|r| {
                    (
                        (r.location().latitude() * 1e6) as u64,
                        ((r.location().longitude() + 180.0) * 1e6) as u64,
                    )
                })
                .collect();
            locations.sort_unstable();
            locations.dedup();
            locations.len()
        };
        assert!(distinct(&fine) > distinct(&coarse));
    }
}
