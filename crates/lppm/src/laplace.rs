//! The planar (polar) Laplace distribution of Geo-Indistinguishability.
//!
//! Andrés et al. (CCS 2013) perturb a location by a vector drawn from the
//! planar Laplace distribution with density `p(x) ∝ ε² e^(−ε·|x|) / (2π)`.
//! Sampling is done in polar coordinates: the angle is uniform in `[0, 2π)`
//! and the radius follows the distribution with CDF
//! `C(r) = 1 − (1 + εr)·e^(−εr)`, inverted via the `W₋₁` branch of the
//! Lambert W function:
//!
//! ```text
//! r = −(1/ε)·( W₋₁((p − 1)/e) + 1 ),   p ~ Uniform(0, 1)
//! ```

use crate::params::Epsilon;
use rand::Rng;

/// Evaluates the `W₋₁` branch of the Lambert W function for `x ∈ [−1/e, 0)`.
///
/// Uses an initial asymptotic guess followed by Halley iterations; accurate to
/// better than 10⁻¹⁰ over the domain needed by the planar Laplace sampler.
///
/// # Panics
///
/// Panics if `x` is outside `[−1/e, 0)`, which cannot happen for inputs
/// derived from a probability in `[0, 1)`.
pub fn lambert_w_minus1(x: f64) -> f64 {
    let min_x = -(-1.0f64).exp(); // −1/e
    assert!((min_x..0.0).contains(&x), "lambert_w_minus1 is only defined on [-1/e, 0), got {x}");

    // Initial guess (Chapeau-Blondeau & Monir, 2002): series in sqrt(2(1+e x))
    // near the branch point, logarithmic asymptote near zero.
    let mut w = if x < -0.25 {
        let p = -(2.0 * (1.0 + std::f64::consts::E * x)).sqrt();
        -1.0 + p - p * p / 3.0 + 11.0 * p * p * p / 72.0
    } else {
        let l1 = (-x).ln();
        let l2 = (-l1).ln();
        l1 - l2 + l2 / l1
    };

    // Halley iterations.
    for _ in 0..64 {
        let ew = w.exp();
        let f = w * ew - x;
        if f.abs() < 1e-14 {
            break;
        }
        let denominator = ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
        let step = f / denominator;
        w -= step;
        if step.abs() < 1e-14 * w.abs().max(1.0) {
            break;
        }
    }
    w
}

/// The planar Laplace noise distribution with privacy parameter ε.
///
/// # Examples
///
/// ```
/// use geopriv_lppm::{Epsilon, laplace::PlanarLaplace};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), geopriv_lppm::LppmError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let noise = PlanarLaplace::new(Epsilon::new(0.01)?);
/// let (dx, dy) = noise.sample(&mut rng);
/// assert!(dx.is_finite() && dy.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanarLaplace {
    epsilon: Epsilon,
}

impl PlanarLaplace {
    /// Creates the distribution for a given ε.
    pub fn new(epsilon: Epsilon) -> Self {
        Self { epsilon }
    }

    /// The ε parameter.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Mean noise distance `2/ε` in meters.
    pub fn mean_radius_m(&self) -> f64 {
        self.epsilon.expected_noise_radius_m()
    }

    /// Samples a noise radius in meters (the magnitude of the perturbation).
    pub fn sample_radius<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // p in [0, 1); p = 0 gives r = 0.
        let p: f64 = rng.gen_range(0.0..1.0);
        if p == 0.0 {
            return 0.0;
        }
        let argument = (p - 1.0) / std::f64::consts::E;
        -(lambert_w_minus1(argument) + 1.0) / self.epsilon.value()
    }

    /// Samples a planar noise vector `(dx, dy)` in meters.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        let radius = self.sample_radius(rng);
        (radius * theta.cos(), radius * theta.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lambert_w_known_values() {
        // W-1(-1/e) = -1.
        let w = lambert_w_minus1(-(-1.0f64).exp() + 1e-15);
        assert!((w + 1.0).abs() < 1e-3, "got {w}");
        // W-1(-0.1) ≈ -3.577152.
        let w = lambert_w_minus1(-0.1);
        assert!((w + 3.577152).abs() < 1e-5, "got {w}");
        // W-1(-0.2) ≈ -2.542641.
        let w = lambert_w_minus1(-0.2);
        assert!((w + 2.542641).abs() < 1e-5, "got {w}");
        // The defining identity w e^w = x holds across the domain.
        for &x in &[-0.3, -0.25, -0.15, -0.05, -0.01, -0.001] {
            let w = lambert_w_minus1(x);
            assert!((w * w.exp() - x).abs() < 1e-10, "identity fails at {x}: w={w}");
            assert!(w <= -1.0, "W-1 branch must be <= -1, got {w} at {x}");
        }
    }

    #[test]
    #[should_panic(expected = "only defined")]
    fn lambert_w_rejects_out_of_domain() {
        let _ = lambert_w_minus1(0.5);
    }

    #[test]
    fn radius_distribution_matches_theory() {
        // For the polar Laplace, E[r] = 2/epsilon and the CDF at the mean is
        // 1 - 3 e^-2 ≈ 0.594.
        let mut rng = StdRng::seed_from_u64(42);
        let eps = Epsilon::new(0.01).unwrap();
        let dist = PlanarLaplace::new(eps);
        assert_eq!(dist.epsilon(), eps);
        assert_eq!(dist.mean_radius_m(), 200.0);

        let n = 40_000;
        let radii: Vec<f64> = (0..n).map(|_| dist.sample_radius(&mut rng)).collect();
        assert!(radii.iter().all(|&r| r >= 0.0 && r.is_finite()));
        let mean = radii.iter().sum::<f64>() / n as f64;
        assert!((mean - 200.0).abs() < 4.0, "mean radius {mean}");
        let below_mean = radii.iter().filter(|&&r| r <= 200.0).count() as f64 / n as f64;
        assert!((below_mean - 0.594).abs() < 0.02, "CDF at mean {below_mean}");
    }

    #[test]
    fn noise_vector_is_isotropic() {
        let mut rng = StdRng::seed_from_u64(7);
        let dist = PlanarLaplace::new(Epsilon::new(0.05).unwrap());
        let n = 20_000;
        let samples: Vec<(f64, f64)> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean_x = samples.iter().map(|s| s.0).sum::<f64>() / n as f64;
        let mean_y = samples.iter().map(|s| s.1).sum::<f64>() / n as f64;
        // Isotropy: both components average to ~0 (mean radius is 40 m here).
        assert!(mean_x.abs() < 1.5, "mean x {mean_x}");
        assert!(mean_y.abs() < 1.5, "mean y {mean_y}");
        // All four quadrants are hit roughly equally.
        let q1 = samples.iter().filter(|s| s.0 > 0.0 && s.1 > 0.0).count() as f64 / n as f64;
        assert!((q1 - 0.25).abs() < 0.02, "first quadrant fraction {q1}");
    }

    #[test]
    fn smaller_epsilon_means_larger_noise() {
        let mut rng = StdRng::seed_from_u64(11);
        let low = PlanarLaplace::new(Epsilon::new(0.001).unwrap());
        let high = PlanarLaplace::new(Epsilon::new(0.1).unwrap());
        let n = 5_000;
        let mean_low: f64 = (0..n).map(|_| low.sample_radius(&mut rng)).sum::<f64>() / n as f64;
        let mean_high: f64 = (0..n).map(|_| high.sample_radius(&mut rng)).sum::<f64>() / n as f64;
        assert!(mean_low > 50.0 * mean_high, "low {mean_low} vs high {mean_high}");
    }
}
