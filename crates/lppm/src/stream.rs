//! Streaming protection sessions: record-at-a-time LPPM application.
//!
//! Everything else in this crate protects *complete* traces — the offline
//! study shape. An online service (the `geopriv-serve` crate) instead sees
//! one `(user, record)` update at a time and must release each protected
//! record immediately, under the same determinism contract as the offline
//! paths: with a fixed seed, the stream of released records is **bit
//! identical** to [`Lppm::protect_view`] over the records protected so far.
//!
//! [`open_stream`] is the entry point. Mechanisms whose RNG consumption and
//! projection state are *record causal* (each released record depends only on
//! the records pushed before it) override [`Lppm::stream_kernel`] with an
//! O(1)-per-push session holding persistent state — GEO-I and Gaussian
//! perturbation carry their trace-anchored [`geopriv_geo::LocalProjection`]
//! and a persistent [`rand::rngs::StdRng`]; grid cloaking and coordinate
//! rounding are stateless scans. Every other mechanism falls back to
//! [`ReplayStream`], which re-protects the full record prefix with a fresh
//! RNG on each push: bit-identical by construction, O(n) per push, and
//! self-verifying — a mechanism that drops records or consumes randomness
//! non-causally (a stage-major [`crate::Pipeline`]) is detected and reported
//! as [`LppmError::Unstreamable`] instead of silently diverging from the
//! offline output.

use crate::error::LppmError;
use crate::traits::Lppm;
use geopriv_mobility::{DatasetBuilder, Record, TraceView, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A stateful streaming protection session for one user's record stream.
///
/// Obtained from [`open_stream`]. Pushing the records of a trace in timestamp
/// order yields, record for record, the bytes [`Lppm::protect_view`] would
/// write for that trace under a fresh RNG seeded with the session seed.
pub trait LppmStream: Send {
    /// Protects the next record of the stream and releases its protected
    /// twin.
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::Unstreamable`] when the mechanism cannot protect
    /// this stream incrementally (it drops, resamples or reorders records,
    /// or draws randomness non-causally), and propagates any underlying
    /// protection error.
    fn push(&mut self, record: Record) -> Result<Record, LppmError>;

    /// Number of records protected so far.
    fn len(&self) -> usize;

    /// Returns `true` before the first push.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Opens a streaming session over a shared mechanism.
///
/// Mechanisms with an O(1) streaming kernel ([`Lppm::stream_kernel`]) run it;
/// everything else gets the prefix-replaying [`ReplayStream`]. Both uphold
/// the same contract: the released records are bit-identical to
/// [`Lppm::protect_view`] over the pushed prefix with a fresh
/// `StdRng::seed_from_u64(seed)`.
pub fn open_stream(lppm: Arc<dyn Lppm>, user: UserId, seed: u64) -> Box<dyn LppmStream> {
    open_stream_bounded(lppm, user, seed, usize::MAX)
}

/// [`open_stream`] with a cap on the [`ReplayStream`] fallback's prefix.
///
/// The replay fallback stores the full record prefix and re-protects it on
/// every push — O(n) memory and O(n) CPU per update. A long-running service
/// must bound that: beyond `replay_limit` pushed records the fallback
/// session fails with [`LppmError::Unstreamable`] instead of growing without
/// bound. Mechanisms with an O(1) streaming kernel are unaffected by the
/// limit.
pub fn open_stream_bounded(
    lppm: Arc<dyn Lppm>,
    user: UserId,
    seed: u64,
    replay_limit: usize,
) -> Box<dyn LppmStream> {
    match lppm.stream_kernel(seed) {
        Some(kernel) => kernel,
        None => Box::new(ReplayStream::new(lppm, user, seed).with_prefix_limit(replay_limit)),
    }
}

/// The universal streaming fallback: re-protects the full record prefix with
/// a fresh seeded RNG on every push and releases the last protected record.
///
/// For any mechanism whose per-record output depends only on the records
/// pushed so far (and on RNG draws made for them, in order), the replay of
/// prefix *k* reproduces the first *k − 1* released records exactly and the
/// *k*-th is the next offline record — bit-identity by construction. The
/// session verifies this on every push: a prefix whose re-protection changes
/// an already-released record, or changes the record count, fails with
/// [`LppmError::Unstreamable`] rather than silently diverging from the
/// offline path. Cost is O(prefix) per push — the price of supporting any
/// mechanism; hot mechanisms override [`Lppm::stream_kernel`] instead.
pub struct ReplayStream {
    lppm: Arc<dyn Lppm>,
    user: UserId,
    seed: u64,
    timestamps: Vec<f64>,
    latitudes: Vec<f64>,
    longitudes: Vec<f64>,
    released: Vec<Record>,
    prefix_limit: usize,
}

impl ReplayStream {
    /// Creates the session; `seed` is the per-user session seed.
    pub fn new(lppm: Arc<dyn Lppm>, user: UserId, seed: u64) -> Self {
        Self {
            lppm,
            user,
            seed,
            timestamps: Vec::new(),
            latitudes: Vec::new(),
            longitudes: Vec::new(),
            released: Vec::new(),
            prefix_limit: usize::MAX,
        }
    }

    /// Caps the stored prefix: a push beyond `limit` records fails with
    /// [`LppmError::Unstreamable`] instead of letting one session's memory
    /// (and per-push replay cost) grow without bound. Unlimited by default.
    #[must_use]
    pub fn with_prefix_limit(mut self, limit: usize) -> Self {
        self.prefix_limit = limit;
        self
    }

    fn unstreamable(&self, reason: String) -> LppmError {
        LppmError::Unstreamable { mechanism: self.lppm.name().to_string(), reason }
    }
}

impl LppmStream for ReplayStream {
    fn push(&mut self, record: Record) -> Result<Record, LppmError> {
        if self.timestamps.len() >= self.prefix_limit {
            return Err(self.unstreamable(format!(
                "replay prefix reached the configured limit of {} records — this mechanism has \
                 no streaming kernel and re-protects the full prefix per push",
                self.prefix_limit,
            )));
        }
        self.timestamps.push(record.timestamp().as_f64());
        self.latitudes.push(record.location().latitude());
        self.longitudes.push(record.location().longitude());
        let view =
            TraceView::from_columns(self.user, &self.timestamps, &self.latitudes, &self.longitudes);
        let mut out = DatasetBuilder::with_capacity(1, self.timestamps.len());
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.lppm.protect_view(view, &mut out, &mut rng)?;
        let protected = out.finish()?;
        let trace = protected.trace_at(0);
        if protected.len() != 1 || trace.len() != self.timestamps.len() {
            return Err(self.unstreamable(format!(
                "protecting {} records produced {} traces with {} records — the mechanism drops \
                 or resamples records and cannot release one protected record per update",
                self.timestamps.len(),
                protected.len(),
                trace.len(),
            )));
        }
        for (i, already) in self.released.iter().enumerate() {
            if trace.record(i) != *already {
                return Err(self.unstreamable(format!(
                    "re-protecting the prefix changed already-released record {i} — the \
                     mechanism consumes randomness non-causally (e.g. a stage-major pipeline), \
                     so no incremental release can match the offline output",
                )));
            }
        }
        let next = trace.record(self.timestamps.len() - 1);
        self.released.push(next);
        Ok(next)
    }

    fn len(&self) -> usize {
        self.released.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloaking::GridCloaking;
    use crate::gaussian::GaussianPerturbation;
    use crate::geo_ind::GeoIndistinguishability;
    use crate::pipeline::Pipeline;
    use crate::rounding::CoordinateRounding;
    use crate::temporal::TemporalDownsampling;
    use crate::traits::Identity;
    use geopriv_geo::{GeoPoint, Meters, Seconds};
    use geopriv_mobility::{Dataset, Trace};

    fn trace() -> Trace {
        let records: Vec<Record> = (0..40)
            .map(|i| {
                Record::new(
                    Seconds::new(i as f64 * 30.0),
                    GeoPoint::new(37.76 + (i % 7) as f64 * 0.0011, -122.44 + i as f64 * 0.0003)
                        .unwrap(),
                )
            })
            .collect();
        Trace::new(UserId::new(7), records).unwrap()
    }

    /// The offline reference: `protect_view` over the whole trace with a
    /// fresh seeded RNG.
    fn offline(lppm: &dyn Lppm, t: &Trace, seed: u64) -> Vec<Record> {
        let mut out = DatasetBuilder::with_capacity(1, t.len());
        let mut rng = StdRng::seed_from_u64(seed);
        lppm.protect_view(t.view(), &mut out, &mut rng).unwrap();
        let protected = out.finish().unwrap();
        protected.trace_at(0).iter().collect()
    }

    fn assert_stream_matches_offline(lppm: Arc<dyn Lppm>, seed: u64) {
        let t = trace();
        let reference = offline(lppm.as_ref(), &t, seed);
        let mut stream = open_stream(lppm, t.user(), seed);
        assert!(stream.is_empty());
        for (i, record) in t.iter().enumerate() {
            let released = stream.push(record).unwrap();
            assert_eq!(released, reference[i], "record {i} diverged from the offline path");
        }
        assert_eq!(stream.len(), t.len());
    }

    #[test]
    fn geoi_stream_is_bit_identical_to_offline() {
        let lppm = GeoIndistinguishability::with_epsilon(0.01).unwrap();
        assert_stream_matches_offline(Arc::new(lppm), 42);
    }

    #[test]
    fn gaussian_stream_is_bit_identical_to_offline() {
        let lppm = GaussianPerturbation::new(Meters::new(150.0)).unwrap();
        assert_stream_matches_offline(Arc::new(lppm), 9);
    }

    #[test]
    fn deterministic_mechanisms_stream_bit_identically() {
        assert_stream_matches_offline(Arc::new(GridCloaking::new(Meters::new(400.0)).unwrap()), 1);
        assert_stream_matches_offline(Arc::new(CoordinateRounding::new(3).unwrap()), 1);
        assert_stream_matches_offline(Arc::new(Identity::new()), 1);
    }

    #[test]
    fn replay_fallback_matches_offline_for_causal_mechanisms() {
        // Force the replay path for a mechanism that has an O(1) kernel, to
        // pin the fallback itself against the same offline reference.
        let lppm: Arc<dyn Lppm> = Arc::new(GeoIndistinguishability::with_epsilon(0.02).unwrap());
        let t = trace();
        let reference = offline(lppm.as_ref(), &t, 5);
        let mut stream = ReplayStream::new(lppm, t.user(), 5);
        for (i, record) in t.iter().enumerate() {
            assert_eq!(stream.push(record).unwrap(), reference[i]);
        }
    }

    #[test]
    fn replay_prefix_limit_fails_closed_and_is_stable() {
        // Force the replay path (the mechanism has a kernel; the explicit
        // ReplayStream bypasses it) and cap the stored prefix.
        let lppm: Arc<dyn Lppm> = Arc::new(GeoIndistinguishability::with_epsilon(0.02).unwrap());
        let t = trace();
        let mut stream = ReplayStream::new(lppm, t.user(), 5).with_prefix_limit(3);
        let mut records = t.iter();
        for _ in 0..3 {
            stream.push(records.next().unwrap()).unwrap();
        }
        for _ in 0..2 {
            let err = stream.push(records.next().unwrap()).unwrap_err();
            assert!(matches!(err, LppmError::Unstreamable { .. }), "got {err}");
            assert!(err.to_string().contains("prefix"), "got {err}");
        }
        assert_eq!(stream.len(), 3, "rejected pushes must not advance the stream");
        // Kernel mechanisms are unaffected by the bound.
        let kernel_lppm: Arc<dyn Lppm> =
            Arc::new(GeoIndistinguishability::with_epsilon(0.02).unwrap());
        let mut kernel = open_stream_bounded(kernel_lppm, t.user(), 5, 3);
        for record in t.iter() {
            kernel.push(record).unwrap();
        }
        assert_eq!(kernel.len(), t.len());
    }

    #[test]
    fn streams_with_different_seeds_diverge() {
        let lppm: Arc<dyn Lppm> = Arc::new(GeoIndistinguishability::with_epsilon(0.01).unwrap());
        let t = trace();
        let mut a = open_stream(Arc::clone(&lppm), t.user(), 1);
        let mut b = open_stream(lppm, t.user(), 2);
        let record = t.first();
        assert_ne!(a.push(record).unwrap(), b.push(record).unwrap());
    }

    #[test]
    fn stage_major_pipeline_is_reported_unstreamable() {
        // A two-stage randomized pipeline consumes randomness stage-major
        // (stage 1 over the whole trace, then stage 2), so no incremental
        // release can be bit-identical to the offline order. The replay
        // session detects the divergence instead of silently drifting.
        let pipeline = Pipeline::new()
            .then(GeoIndistinguishability::with_epsilon(0.01).unwrap())
            .then(GaussianPerturbation::new(Meters::new(50.0)).unwrap());
        let t = trace();
        let mut stream = open_stream(Arc::new(pipeline), t.user(), 3);
        let mut records = t.iter();
        stream.push(records.next().unwrap()).unwrap();
        let err = records
            .find_map(|record| stream.push(record).err())
            .expect("the stage-major pipeline must be detected as unstreamable");
        assert!(matches!(err, LppmError::Unstreamable { .. }), "got {err}");
        assert!(err.to_string().contains("non-causally"), "got {err}");
    }

    #[test]
    fn record_dropping_mechanisms_are_reported_unstreamable() {
        let lppm = TemporalDownsampling::new(4).unwrap();
        let t = trace();
        let mut stream = open_stream(Arc::new(lppm), t.user(), 3);
        let err = t
            .iter()
            .find_map(|record| stream.push(record).err())
            .expect("a record-dropping mechanism must be detected as unstreamable");
        assert!(matches!(err, LppmError::Unstreamable { .. }), "got {err}");
        assert!(err.to_string().contains("drops or resamples"), "got {err}");
    }

    #[test]
    fn kernel_streams_match_a_restarted_session() {
        // Restarting a session with the same seed replays the same stream —
        // the reproducibility contract the serving layer builds on.
        let lppm: Arc<dyn Lppm> = Arc::new(GaussianPerturbation::new(Meters::new(80.0)).unwrap());
        let t = trace();
        let mut first = open_stream(Arc::clone(&lppm), t.user(), 11);
        let released: Vec<Record> = t.iter().map(|r| first.push(r).unwrap()).collect();
        let mut second = open_stream(lppm, t.user(), 11);
        for (i, record) in t.iter().enumerate() {
            assert_eq!(second.push(record).unwrap(), released[i]);
        }
    }

    #[test]
    fn streamed_records_rebuild_a_valid_dataset() {
        let lppm: Arc<dyn Lppm> = Arc::new(GridCloaking::new(Meters::new(250.0)).unwrap());
        let t = trace();
        let mut stream = open_stream(lppm, t.user(), 0);
        let released: Vec<Record> = t.iter().map(|r| stream.push(r).unwrap()).collect();
        let rebuilt = Dataset::new(vec![Trace::new(t.user(), released).unwrap()]).unwrap();
        assert_eq!(rebuilt.record_count(), t.len());
    }
}
