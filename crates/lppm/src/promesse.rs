//! Speed-smoothing protection (a Promesse-style mechanism).
//!
//! Primault et al.'s *Promesse* erases POIs not by adding spatial noise but
//! by removing the *temporal* signature of stops: the released trace follows
//! the same path, resampled at a constant spatial interval α and re-timed at
//! a constant speed, so the adversary can no longer tell where the user
//! dwelled. It is the canonical example of an LPPM whose single parameter
//! (the smoothing distance α, in meters) trades POI privacy against the
//! temporal fidelity of the release — exactly the kind of mechanism the
//! paper's future work intends to feed through the configuration framework.

use crate::error::LppmError;
use crate::params::{ParameterDescriptor, ParameterScale};
use crate::traits::Lppm;
use geopriv_geo::{LocalProjection, Meters, Point, Seconds};
use geopriv_mobility::{Record, Trace};
use rand::RngCore;

/// Speed-smoothing mechanism: constant-distance resampling with uniform re-timing.
///
/// # Examples
///
/// ```
/// use geopriv_lppm::{Lppm, SpeedSmoothing};
/// use geopriv_geo::Meters;
///
/// # fn main() -> Result<(), geopriv_lppm::LppmError> {
/// let lppm = SpeedSmoothing::new(Meters::new(100.0))?;
/// assert_eq!(lppm.smoothing_distance().as_f64(), 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedSmoothing {
    alpha: Meters,
}

impl SpeedSmoothing {
    /// Creates the mechanism with smoothing distance `alpha` (meters between
    /// consecutive released points along the path).
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] for a non-positive distance.
    pub fn new(alpha: Meters) -> Result<Self, LppmError> {
        if !(alpha.as_f64().is_finite() && alpha.as_f64() > 0.0) {
            return Err(LppmError::InvalidParameter {
                name: "alpha",
                value: alpha.as_f64(),
                reason: "smoothing distance must be finite and strictly positive",
            });
        }
        Ok(Self { alpha })
    }

    /// The smoothing distance α.
    pub fn smoothing_distance(&self) -> Meters {
        self.alpha
    }

    /// The parameter descriptor for α (10 m to 2 km, logarithmic).
    pub fn alpha_descriptor() -> ParameterDescriptor {
        ParameterDescriptor::new("alpha", 10.0, 2_000.0, ParameterScale::Logarithmic)
            .expect("static descriptor is valid")
    }
}

impl Lppm for SpeedSmoothing {
    fn name(&self) -> &str {
        "speed-smoothing"
    }

    fn parameters(&self) -> Vec<ParameterDescriptor> {
        vec![Self::alpha_descriptor()]
    }

    fn protect_trace(&self, trace: &Trace, _rng: &mut dyn RngCore) -> Result<Trace, LppmError> {
        let projection = LocalProjection::centered_on(trace.first().location());
        let path: Vec<Point> = trace.iter().map(|r| projection.project(r.location())).collect();
        let alpha = self.alpha.as_f64();

        // Walk the polyline and emit a point every `alpha` meters.
        let mut resampled: Vec<Point> = vec![path[0]];
        let mut carried = 0.0;
        for segment in path.windows(2) {
            let (from, to) = (segment[0], segment[1]);
            let length = from.distance_to(to).as_f64();
            if length <= f64::EPSILON {
                continue;
            }
            let mut travelled = alpha - carried;
            while travelled <= length {
                resampled.push(from.lerp(to, travelled / length));
                travelled += alpha;
            }
            carried = (carried + length) % alpha;
        }
        // Always keep the final position so the release spans the same extent.
        if resampled.len() < 2 {
            resampled.push(path[path.len() - 1]);
        }

        // Re-time uniformly over the original observation window: constant
        // apparent speed, no dwell signature.
        let start = trace.first().timestamp().as_f64();
        let end = trace.last().timestamp().as_f64();
        let n = resampled.len();
        let records: Vec<Record> = resampled
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let t =
                    if n == 1 { start } else { start + (end - start) * i as f64 / (n - 1) as f64 };
                Record::new(Seconds::new(t), projection.unproject(p))
            })
            .collect();
        Ok(Trace::new(trace.user(), records)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_geo::{distance, GeoPoint};
    use geopriv_mobility::UserId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gp(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    /// 30 min stop at A, straight 20-minute drive to B, 30 min stop at B.
    fn stop_drive_stop() -> Trace {
        let a = gp(37.7600, -122.4500);
        let b = gp(37.7800, -122.4200);
        let mut records = Vec::new();
        let mut t = 0.0;
        for _ in 0..60 {
            records.push(Record::new(Seconds::new(t), a));
            t += 30.0;
        }
        for k in 0..40 {
            let frac = k as f64 / 39.0;
            records.push(Record::new(
                Seconds::new(t),
                gp(
                    a.latitude() + frac * (b.latitude() - a.latitude()),
                    a.longitude() + frac * (b.longitude() - a.longitude()),
                ),
            ));
            t += 30.0;
        }
        for _ in 0..60 {
            records.push(Record::new(Seconds::new(t), b));
            t += 30.0;
        }
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn construction_validation_and_metadata() {
        assert!(SpeedSmoothing::new(Meters::new(100.0)).is_ok());
        assert!(SpeedSmoothing::new(Meters::new(0.0)).is_err());
        assert!(SpeedSmoothing::new(Meters::new(-10.0)).is_err());
        assert!(SpeedSmoothing::new(Meters::new(f64::NAN)).is_err());
        let lppm = SpeedSmoothing::new(Meters::new(50.0)).unwrap();
        assert_eq!(lppm.name(), "speed-smoothing");
        assert_eq!(lppm.parameters()[0].name(), "alpha");
    }

    #[test]
    fn released_points_are_spaced_by_alpha_along_the_path() {
        let mut rng = StdRng::seed_from_u64(1);
        let trace = stop_drive_stop();
        let alpha = 200.0;
        let protected = SpeedSmoothing::new(Meters::new(alpha))
            .unwrap()
            .protect_trace(&trace, &mut rng)
            .unwrap();
        // Consecutive released points are ~alpha apart (except possibly the
        // last one, which closes the path).
        let locations = protected.locations();
        for pair in locations.windows(2).take(locations.len().saturating_sub(2)) {
            let d = distance::haversine(pair[0], pair[1]).as_f64();
            assert!((d - alpha).abs() < 0.05 * alpha, "spacing {d}");
        }
        // The path length is preserved to within one alpha.
        let original_length = trace.travelled_distance().as_f64();
        let released_length = protected.travelled_distance().as_f64();
        assert!((original_length - released_length).abs() <= 2.0 * alpha);
    }

    #[test]
    fn dwell_signature_is_erased() {
        let mut rng = StdRng::seed_from_u64(2);
        let trace = stop_drive_stop();
        let protected = SpeedSmoothing::new(Meters::new(150.0))
            .unwrap()
            .protect_trace(&trace, &mut rng)
            .unwrap();

        // The released trace spans the same observation window...
        assert_eq!(protected.first().timestamp(), trace.first().timestamp());
        assert_eq!(protected.last().timestamp(), trace.last().timestamp());
        // ...at constant apparent speed: every consecutive displacement takes
        // the same time and covers a similar distance, so no dwell remains.
        let locations = protected.locations();
        let still = locations
            .windows(2)
            .filter(|w| distance::haversine(w[0], w[1]).as_f64() < 10.0)
            .count();
        assert_eq!(still, 0, "released trace still contains {still} dwell steps");
    }

    #[test]
    fn stationary_trace_collapses_to_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = gp(37.77, -122.42);
        let records: Vec<Record> =
            (0..50).map(|i| Record::new(Seconds::new(i as f64 * 30.0), a)).collect();
        let trace = Trace::new(UserId::new(2), records).unwrap();
        let protected = SpeedSmoothing::new(Meters::new(100.0))
            .unwrap()
            .protect_trace(&trace, &mut rng)
            .unwrap();
        assert_eq!(protected.len(), 2);
        assert!(distance::haversine(protected.first().location(), a).as_f64() < 1.0);
    }

    #[test]
    fn is_deterministic() {
        let trace = stop_drive_stop();
        let lppm = SpeedSmoothing::new(Meters::new(80.0)).unwrap();
        let mut rng_a = StdRng::seed_from_u64(4);
        let mut rng_b = StdRng::seed_from_u64(5);
        assert_eq!(
            lppm.protect_trace(&trace, &mut rng_a).unwrap(),
            lppm.protect_trace(&trace, &mut rng_b).unwrap()
        );
    }
}
