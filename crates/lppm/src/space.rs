//! Multi-dimensional configuration spaces.
//!
//! The paper's method statement configures "the LPPM configuration parameters
//! p_i and their range of values" — plural. [`ConfigSpace`] is that object:
//! an ordered set of uniquely named [`ParameterDescriptor`] axes, one per
//! configuration parameter of a mechanism (a composed [`crate::Pipeline`]
//! exposes one axis per stage parameter). [`ConfigPoint`] is one concrete,
//! validated configuration inside a space — the unit the experiment runner
//! sweeps and the configurator recommends.
//!
//! A one-axis space reproduces the framework's historical single-scalar
//! behavior exactly: [`ConfigSpace::grid`] with one count equals
//! [`ParameterDescriptor::sweep`] value for value, in the same order.

use crate::error::LppmError;
use crate::params::ParameterDescriptor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ordered, uniquely named set of configuration-parameter axes.
///
/// # Examples
///
/// ```
/// use geopriv_lppm::{ConfigSpace, ParameterDescriptor, ParameterScale};
///
/// # fn main() -> Result<(), geopriv_lppm::LppmError> {
/// let space = ConfigSpace::new(vec![
///     ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic)?,
///     ParameterDescriptor::new("cell_size", 50.0, 5000.0, ParameterScale::Logarithmic)?,
/// ])?;
/// assert_eq!(space.len(), 2);
/// let point = space.point(&[("epsilon", 0.01), ("cell_size", 500.0)])?;
/// assert_eq!(point.get("epsilon"), Some(0.01));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigSpace {
    axes: Vec<ParameterDescriptor>,
}

impl ConfigSpace {
    /// Creates a configuration space from its axes.
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] for an empty axis list or
    /// duplicate axis names (qualify colliding names first, as
    /// [`crate::Lppm::parameters`] on [`crate::Pipeline`] does).
    pub fn new(axes: Vec<ParameterDescriptor>) -> Result<Self, LppmError> {
        if axes.is_empty() {
            return Err(LppmError::InvalidParameter {
                name: "axes",
                value: 0.0,
                reason: "a configuration space needs at least one axis",
            });
        }
        let mut seen = std::collections::HashSet::new();
        for axis in &axes {
            if !seen.insert(axis.name().to_string()) {
                return Err(LppmError::InvalidParameter {
                    name: "axes",
                    value: axes.len() as f64,
                    reason: "axis names must be unique within a configuration space",
                });
            }
        }
        Ok(Self { axes })
    }

    /// The one-axis space of a single swept parameter.
    pub fn single(axis: ParameterDescriptor) -> Self {
        Self { axes: vec![axis] }
    }

    /// Number of axes (the dimensionality of the space).
    pub fn len(&self) -> usize {
        self.axes.len()
    }

    /// Always `false`: construction rejects empty spaces.
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// The axes, in order.
    pub fn axes(&self) -> &[ParameterDescriptor] {
        &self.axes
    }

    /// The axis with the given name.
    pub fn axis(&self, name: &str) -> Option<&ParameterDescriptor> {
        self.axes.iter().find(|a| a.name() == name)
    }

    /// The axis names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.axes.iter().map(ParameterDescriptor::name).collect()
    }

    /// The single axis of a one-dimensional space, or `None` for multi-axis
    /// spaces — the hinge every legacy single-scalar code path turns on.
    pub fn single_axis(&self) -> Option<&ParameterDescriptor> {
        match self.axes.as_slice() {
            [axis] => Some(axis),
            _ => None,
        }
    }

    /// Builds a validated point from named values. Every axis must be given
    /// exactly once; order does not matter.
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] for unknown or duplicate
    /// names, missing axes, or values outside an axis range.
    pub fn point(&self, values: &[(&str, f64)]) -> Result<ConfigPoint, LppmError> {
        if values.len() != self.axes.len() {
            return Err(LppmError::InvalidParameter {
                name: "point",
                value: values.len() as f64,
                reason: "a configuration point must give every axis exactly one value",
            });
        }
        let mut coords = Vec::with_capacity(self.axes.len());
        for axis in &self.axes {
            let mut matches = values.iter().filter(|(name, _)| *name == axis.name());
            let value = match (matches.next(), matches.next()) {
                (Some(&(_, value)), None) => value,
                (Some(_), Some(_)) => {
                    return Err(LppmError::InvalidParameter {
                        name: "point",
                        value: f64::NAN,
                        reason: "an axis was given more than one value",
                    })
                }
                (None, _) => {
                    return Err(LppmError::InvalidParameter {
                        name: "point",
                        value: f64::NAN,
                        reason: "a named value does not match any axis of the space",
                    })
                }
            };
            coords.push(value);
        }
        self.point_from_coords(&coords)
    }

    /// Builds a validated point from positional values (axis order).
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] for a wrong value count or a
    /// value outside its axis range.
    pub fn point_from_coords(&self, coords: &[f64]) -> Result<ConfigPoint, LppmError> {
        if coords.len() != self.axes.len() {
            return Err(LppmError::InvalidParameter {
                name: "point",
                value: coords.len() as f64,
                reason: "a configuration point must give every axis exactly one value",
            });
        }
        for (axis, &value) in self.axes.iter().zip(coords) {
            if !axis.contains(value) {
                return Err(LppmError::InvalidParameter {
                    name: "point",
                    value,
                    reason: "a coordinate lies outside its axis range",
                });
            }
        }
        Ok(ConfigPoint {
            values: self
                .axes
                .iter()
                .zip(coords)
                .map(|(axis, &value)| (axis.name().to_string(), value))
                .collect(),
        })
    }

    /// The all-defaults point: every axis at its
    /// [`ParameterDescriptor::default_value`].
    pub fn default_point(&self) -> ConfigPoint {
        ConfigPoint {
            values: self
                .axes
                .iter()
                .map(|axis| (axis.name().to_string(), axis.default_value()))
                .collect(),
        }
    }

    /// Returns `true` if the point names exactly this space's axes (in
    /// order) with every coordinate inside its axis range.
    pub fn contains(&self, point: &ConfigPoint) -> bool {
        point.values.len() == self.axes.len()
            && self
                .axes
                .iter()
                .zip(&point.values)
                .all(|(axis, (name, value))| axis.name() == name && axis.contains(*value))
    }

    /// Validates that `point` belongs to this space.
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] when it does not (wrong axes,
    /// wrong order, or an out-of-range coordinate).
    pub fn check(&self, point: &ConfigPoint) -> Result<(), LppmError> {
        if self.contains(point) {
            Ok(())
        } else {
            Err(LppmError::InvalidParameter {
                name: "point",
                value: point.values.len() as f64,
                reason: "the configuration point does not belong to this space",
            })
        }
    }

    /// Enumerates the full-factorial grid with `counts[i]` sweep values on
    /// axis `i` (each axis swept by [`ParameterDescriptor::sweep`], so each
    /// count is clamped to at least 2 and both endpoints are exact).
    ///
    /// The order is deterministic row-major: the *last* axis varies fastest.
    /// For a one-axis space the grid is exactly `axes()[0].sweep(counts[0])`.
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] when `counts` does not have
    /// one entry per axis.
    pub fn grid(&self, counts: &[usize]) -> Result<Vec<ConfigPoint>, LppmError> {
        let sweeps = self.axis_sweeps(counts)?;
        let total: usize = sweeps.iter().map(Vec::len).product();
        let mut points = Vec::with_capacity(total);
        let mut indices = vec![0usize; sweeps.len()];
        for _ in 0..total {
            points.push(ConfigPoint {
                values: self
                    .axes
                    .iter()
                    .zip(&sweeps)
                    .zip(&indices)
                    .map(|((axis, sweep), &i)| (axis.name().to_string(), sweep[i]))
                    .collect(),
            });
            // Row-major increment: last axis fastest.
            for axis in (0..indices.len()).rev() {
                indices[axis] += 1;
                if indices[axis] < sweeps[axis].len() {
                    break;
                }
                indices[axis] = 0;
            }
        }
        Ok(points)
    }

    /// Enumerates the paper's one-at-a-time design: for each axis in order,
    /// sweep that axis over `counts[i]` values while every *other* axis is
    /// held at its [`ParameterDescriptor::default_value`].
    ///
    /// For a one-axis space this equals [`ConfigSpace::grid`] (there are no
    /// other axes to hold), preserving the single-scalar sweep bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] when `counts` does not have
    /// one entry per axis.
    pub fn one_at_a_time(&self, counts: &[usize]) -> Result<Vec<ConfigPoint>, LppmError> {
        let sweeps = self.axis_sweeps(counts)?;
        let defaults: Vec<f64> = self.axes.iter().map(ParameterDescriptor::default_value).collect();
        let mut points = Vec::with_capacity(sweeps.iter().map(Vec::len).sum());
        for (varied, sweep) in sweeps.iter().enumerate() {
            for &value in sweep {
                points.push(ConfigPoint {
                    values: self
                        .axes
                        .iter()
                        .enumerate()
                        .map(|(i, axis)| {
                            (axis.name().to_string(), if i == varied { value } else { defaults[i] })
                        })
                        .collect(),
                });
            }
        }
        Ok(points)
    }

    fn axis_sweeps(&self, counts: &[usize]) -> Result<Vec<Vec<f64>>, LppmError> {
        if counts.len() != self.axes.len() {
            return Err(LppmError::InvalidParameter {
                name: "counts",
                value: counts.len() as f64,
                reason: "sweep counts must have one entry per axis",
            });
        }
        Ok(self.axes.iter().zip(counts).map(|(axis, &count)| axis.sweep(count)).collect())
    }

    /// A stable token identifying the whole space (every axis's
    /// [`ParameterDescriptor::cache_token`], in order), for use in cache
    /// keys.
    pub fn cache_token(&self) -> String {
        let tokens: Vec<String> = self.axes.iter().map(ParameterDescriptor::cache_token).collect();
        tokens.join("+")
    }
}

impl fmt::Display for ConfigSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, axis) in self.axes.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{axis}")?;
        }
        Ok(())
    }
}

/// One named, validated configuration inside a [`ConfigSpace`]: the value of
/// every axis, in axis order.
///
/// Points are normally constructed through their space
/// ([`ConfigSpace::point`], [`ConfigSpace::grid`], …), so holding such a
/// `ConfigPoint` means the coordinates were range-checked against the axes.
/// The one exception is [`ConfigPoint::from_named`], the wire-format
/// deserialization entry, whose points carry no validation guarantee until a
/// consumer runs [`ConfigSpace::check`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigPoint {
    values: Vec<(String, f64)>,
}

impl ConfigPoint {
    /// Reconstructs a point from named coordinates **without validation** —
    /// the wire-format deserialization entry used by the JSON parsers in
    /// `geopriv-core`'s `report` module.
    ///
    /// Unlike every other constructor, the result carries no guarantee of
    /// belonging to any [`ConfigSpace`]: a consumer that instantiates a
    /// mechanism from a deserialized point must validate it first
    /// ([`ConfigSpace::check`], which every `LppmFactory::instantiate_at`
    /// does), so a tampered or out-of-space wire point surfaces as a typed
    /// error rather than a mis-configured mechanism.
    pub fn from_named(values: Vec<(String, f64)>) -> Self {
        Self { values }
    }

    /// The named coordinates, in axis order.
    pub fn values(&self) -> &[(String, f64)] {
        &self.values
    }

    /// The coordinates alone, in axis order.
    pub fn coords(&self) -> Vec<f64> {
        self.values.iter().map(|(_, v)| *v).collect()
    }

    /// The value of one named axis.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Number of axes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always `false`: points come from non-empty spaces.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of a one-dimensional point, or `None` for multi-axis
    /// points — the inverse of [`ConfigSpace::single_axis`].
    pub fn single(&self) -> Option<f64> {
        match self.values.as_slice() {
            [(_, value)] => Some(*value),
            _ => None,
        }
    }

    /// A stable token encoding every coordinate at full precision, for use
    /// in cache keys (two points differing in any ULP get distinct tokens).
    pub fn cache_token(&self) -> String {
        let parts: Vec<String> =
            self.values.iter().map(|(name, value)| format!("{name}={value:e}")).collect();
        parts.join(",")
    }
}

impl fmt::Display for ConfigPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, value)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name} = {value:.5}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParameterScale;

    fn epsilon() -> ParameterDescriptor {
        ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap()
    }

    fn cell() -> ParameterDescriptor {
        ParameterDescriptor::new("cell_size", 50.0, 5000.0, ParameterScale::Logarithmic).unwrap()
    }

    fn two_d() -> ConfigSpace {
        ConfigSpace::new(vec![epsilon(), cell()]).unwrap()
    }

    #[test]
    fn construction_rejects_empty_and_duplicate_axes() {
        assert!(ConfigSpace::new(vec![]).is_err());
        assert!(ConfigSpace::new(vec![epsilon(), epsilon()]).is_err());
        let space = two_d();
        assert_eq!(space.len(), 2);
        assert!(!space.is_empty());
        assert_eq!(space.names(), vec!["epsilon", "cell_size"]);
        assert_eq!(space.axis("cell_size").unwrap().min(), 50.0);
        assert!(space.axis("nope").is_none());
        assert!(space.single_axis().is_none());
        assert_eq!(ConfigSpace::single(epsilon()).single_axis().unwrap().name(), "epsilon");
    }

    #[test]
    fn named_points_are_validated_and_ordered() {
        let space = two_d();
        // Order-insensitive construction, axis-ordered storage.
        let point = space.point(&[("cell_size", 500.0), ("epsilon", 0.01)]).unwrap();
        assert_eq!(point.coords(), vec![0.01, 500.0]);
        assert_eq!(point.get("epsilon"), Some(0.01));
        assert_eq!(point.get("nope"), None);
        assert_eq!(point.len(), 2);
        assert!(!point.is_empty());
        assert!(point.single().is_none());
        assert!(space.contains(&point));
        assert!(space.check(&point).is_ok());

        // Out of range, unknown name, duplicate name, missing axis.
        assert!(space.point(&[("epsilon", 2.0), ("cell_size", 500.0)]).is_err());
        assert!(space.point(&[("sigma", 0.01), ("cell_size", 500.0)]).is_err());
        assert!(space.point(&[("epsilon", 0.01), ("epsilon", 0.02)]).is_err());
        assert!(space.point(&[("epsilon", 0.01)]).is_err());
        assert!(space.point_from_coords(&[0.01]).is_err());
        assert!(space.point_from_coords(&[0.01, 1e9]).is_err());

        // A point from another space is rejected by check().
        let other = ConfigSpace::single(epsilon());
        let foreign = other.point(&[("epsilon", 0.01)]).unwrap();
        assert!(!space.contains(&foreign));
        assert!(space.check(&foreign).is_err());
        assert_eq!(foreign.single(), Some(0.01));
    }

    #[test]
    fn one_axis_grid_equals_the_descriptor_sweep() {
        let space = ConfigSpace::single(epsilon());
        let grid = space.grid(&[9]).unwrap();
        let sweep = epsilon().sweep(9);
        assert_eq!(grid.len(), 9);
        for (point, value) in grid.iter().zip(&sweep) {
            assert_eq!(point.coords(), vec![*value]);
        }
        // One-at-a-time degenerates to the same enumeration.
        assert_eq!(space.one_at_a_time(&[9]).unwrap(), grid);
    }

    #[test]
    fn grids_are_row_major_with_exact_endpoints() {
        let space = two_d();
        let grid = space.grid(&[3, 4]).unwrap();
        assert_eq!(grid.len(), 12);
        // Last axis fastest: the first four points share the epsilon minimum.
        for point in &grid[..4] {
            assert_eq!(point.get("epsilon"), Some(1e-4));
        }
        assert_eq!(grid[0].get("cell_size"), Some(50.0));
        assert_eq!(grid[3].get("cell_size"), Some(5000.0));
        // Both endpoints of both axes are exact at the corners.
        assert_eq!(grid[11].coords(), vec![1.0, 5000.0]);
        // Every point validates against the space.
        assert!(grid.iter().all(|p| space.contains(p)));
        // Deterministic: re-enumeration is identical.
        assert_eq!(space.grid(&[3, 4]).unwrap(), grid);
        // Wrong count arity.
        assert!(space.grid(&[3]).is_err());
    }

    #[test]
    fn one_at_a_time_holds_other_axes_at_defaults() {
        let space = ConfigSpace::new(vec![
            epsilon().with_default(0.01).unwrap(),
            cell().with_default(500.0).unwrap(),
        ])
        .unwrap();
        let star = space.one_at_a_time(&[3, 5]).unwrap();
        assert_eq!(star.len(), 8);
        // First leg: epsilon varies, cell at default.
        for point in &star[..3] {
            assert_eq!(point.get("cell_size"), Some(500.0));
        }
        assert_eq!(star[0].get("epsilon"), Some(1e-4));
        assert_eq!(star[2].get("epsilon"), Some(1.0));
        // Second leg: cell varies, epsilon at default.
        for point in &star[3..] {
            assert_eq!(point.get("epsilon"), Some(0.01));
        }
        assert_eq!(star[3].get("cell_size"), Some(50.0));
        assert_eq!(star[7].get("cell_size"), Some(5000.0));
        assert!(star.iter().all(|p| space.contains(p)));
        assert!(space.one_at_a_time(&[3]).is_err());
    }

    #[test]
    fn default_point_uses_axis_defaults() {
        let space = two_d();
        let point = space.default_point();
        assert!((point.get("epsilon").unwrap() - 0.01).abs() < 1e-12);
        assert!((point.get("cell_size").unwrap() - 500.0).abs() < 1e-9);
        assert!(space.contains(&point));
    }

    #[test]
    fn wire_points_are_unvalidated_until_checked() {
        let space = two_d();
        // A faithful wire round-trip validates against the original space.
        let wire = ConfigPoint::from_named(vec![
            ("epsilon".to_string(), 0.01),
            ("cell_size".to_string(), 500.0),
        ]);
        assert_eq!(wire, space.point(&[("epsilon", 0.01), ("cell_size", 500.0)]).unwrap());
        assert!(space.check(&wire).is_ok());
        // Tampered wire data constructs fine but fails the space check —
        // exactly the deferred-validation contract the serving layer uses.
        let tampered = ConfigPoint::from_named(vec![("epsilon".to_string(), 1e9)]);
        assert_eq!(tampered.get("epsilon"), Some(1e9));
        assert!(space.check(&tampered).is_err());
    }

    #[test]
    fn tokens_and_display_are_stable_and_discriminating() {
        let space = two_d();
        assert_eq!(space.cache_token(), two_d().cache_token());
        assert!(space.cache_token().contains("epsilon"));
        assert!(space.cache_token().contains("cell_size"));
        assert_ne!(space.cache_token(), ConfigSpace::single(epsilon()).cache_token());

        let a = space.point(&[("epsilon", 0.01), ("cell_size", 500.0)]).unwrap();
        let b = space.point(&[("epsilon", 0.01), ("cell_size", 500.0000001)]).unwrap();
        assert_eq!(a.cache_token(), a.clone().cache_token());
        assert_ne!(a.cache_token(), b.cache_token());

        assert!(space.to_string().contains("×"));
        assert_eq!(a.to_string(), "epsilon = 0.01000, cell_size = 500.00000");
    }
}
