//! Gaussian perturbation baseline.
//!
//! The simplest randomized LPPM: add isotropic Gaussian noise of standard
//! deviation σ (meters) to every location. It provides no formal
//! differential-privacy guarantee (the Gaussian tail decays too fast for
//! ε-geo-indistinguishability) but is the standard straw-man baseline against
//! which GEO-I is compared.

use crate::error::LppmError;
use crate::params::{ParameterDescriptor, ParameterScale};
use crate::stream::LppmStream;
use crate::traits::Lppm;
use geopriv_geo::{LocalProjection, Meters};
use geopriv_mobility::{DatasetBuilder, Record, Trace, TraceView};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Isotropic Gaussian location perturbation.
///
/// # Examples
///
/// ```
/// use geopriv_lppm::{GaussianPerturbation, Lppm};
/// use geopriv_geo::Meters;
///
/// # fn main() -> Result<(), geopriv_lppm::LppmError> {
/// let mechanism = GaussianPerturbation::new(Meters::new(100.0))?;
/// assert_eq!(mechanism.sigma().as_f64(), 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianPerturbation {
    sigma: Meters,
}

impl GaussianPerturbation {
    /// Creates the mechanism with noise standard deviation `sigma` per axis.
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] for negative or non-finite values.
    pub fn new(sigma: Meters) -> Result<Self, LppmError> {
        if !(sigma.as_f64().is_finite() && sigma.as_f64() >= 0.0) {
            return Err(LppmError::InvalidParameter {
                name: "sigma",
                value: sigma.as_f64(),
                reason: "noise standard deviation must be finite and non-negative",
            });
        }
        Ok(Self { sigma })
    }

    /// The per-axis noise standard deviation.
    pub fn sigma(&self) -> Meters {
        self.sigma
    }

    /// The parameter descriptor for σ (1 m to 10 km, logarithmic).
    pub fn sigma_descriptor() -> ParameterDescriptor {
        ParameterDescriptor::new("sigma", 1.0, 10_000.0, ParameterScale::Logarithmic)
            .expect("static descriptor is valid")
    }

    fn sample_normal(rng: &mut dyn RngCore, std_dev: f64) -> f64 {
        if std_dev <= 0.0 {
            return 0.0;
        }
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * std_dev
    }
}

impl Lppm for GaussianPerturbation {
    fn name(&self) -> &str {
        "gaussian-perturbation"
    }

    fn parameters(&self) -> Vec<ParameterDescriptor> {
        vec![Self::sigma_descriptor()]
    }

    fn protect_trace(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, LppmError> {
        let projection = LocalProjection::centered_on(trace.first().location());
        let sigma = self.sigma.as_f64();
        let locations = trace
            .iter()
            .map(|record| {
                let p = projection.project(record.location());
                let dx = Self::sample_normal(rng, sigma);
                let dy = Self::sample_normal(rng, sigma);
                projection.unproject(p.translated(dx, dy))
            })
            .collect();
        Ok(trace.with_locations(locations)?)
    }

    fn protect_view(
        &self,
        trace: TraceView<'_>,
        out: &mut DatasetBuilder,
        rng: &mut dyn RngCore,
    ) -> Result<(), LppmError> {
        // Columnar twin of `protect_trace`: identical per-record operation
        // and RNG draw order (dx before dy), writing into the output columns.
        let projection = LocalProjection::centered_on(trace.first().location());
        let sigma = self.sigma.as_f64();
        out.begin_trace(trace.user());
        for record in trace.iter() {
            let p = projection.project(record.location());
            let dx = Self::sample_normal(rng, sigma);
            let dy = Self::sample_normal(rng, sigma);
            out.push_record(record.timestamp(), projection.unproject(p.translated(dx, dy)));
        }
        out.finish_trace()?;
        Ok(())
    }

    fn stream_kernel(&self, seed: u64) -> Option<Box<dyn LppmStream>> {
        Some(Box::new(GaussianPerturbationStream {
            sigma: self.sigma.as_f64(),
            projection: None,
            rng: StdRng::seed_from_u64(seed),
            released: 0,
        }))
    }
}

/// O(1) streaming kernel of [`GaussianPerturbation`]: projection anchored on
/// the first pushed record, persistent RNG drawing dx before dy per record —
/// the offline per-record operation and draw order exactly.
struct GaussianPerturbationStream {
    sigma: f64,
    projection: Option<LocalProjection>,
    rng: StdRng,
    released: usize,
}

impl LppmStream for GaussianPerturbationStream {
    fn push(&mut self, record: Record) -> Result<Record, LppmError> {
        let projection =
            *self.projection.get_or_insert_with(|| LocalProjection::centered_on(record.location()));
        let p = projection.project(record.location());
        let dx = GaussianPerturbation::sample_normal(&mut self.rng, self.sigma);
        let dy = GaussianPerturbation::sample_normal(&mut self.rng, self.sigma);
        self.released += 1;
        Ok(record.with_location(projection.unproject(p.translated(dx, dy))))
    }

    fn len(&self) -> usize {
        self.released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_geo::{distance, GeoPoint, Seconds};
    use geopriv_mobility::{Record, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace() -> Trace {
        let records: Vec<Record> = (0..300)
            .map(|i| {
                Record::new(Seconds::new(i as f64 * 30.0), GeoPoint::new(37.77, -122.42).unwrap())
            })
            .collect();
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn construction_validates_sigma() {
        assert!(GaussianPerturbation::new(Meters::new(50.0)).is_ok());
        assert!(GaussianPerturbation::new(Meters::new(0.0)).is_ok());
        assert!(GaussianPerturbation::new(Meters::new(-1.0)).is_err());
        assert!(GaussianPerturbation::new(Meters::new(f64::NAN)).is_err());
        let g = GaussianPerturbation::new(Meters::new(10.0)).unwrap();
        assert_eq!(g.name(), "gaussian-perturbation");
        assert_eq!(g.parameters()[0].name(), "sigma");
    }

    #[test]
    fn zero_sigma_is_the_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = trace();
        let g = GaussianPerturbation::new(Meters::new(0.0)).unwrap();
        let protected = g.protect_trace(&t, &mut rng).unwrap();
        for (a, b) in t.iter().zip(protected.iter()) {
            assert!(distance::haversine(a.location(), b.location()).as_f64() < 1e-6);
        }
    }

    #[test]
    fn mean_displacement_matches_rayleigh_mean() {
        // With isotropic Gaussian noise, displacement follows a Rayleigh
        // distribution with mean sigma * sqrt(pi/2).
        let mut rng = StdRng::seed_from_u64(2);
        let t = trace();
        let sigma = 100.0;
        let g = GaussianPerturbation::new(Meters::new(sigma)).unwrap();
        let protected = g.protect_trace(&t, &mut rng).unwrap();
        let mean: f64 = t
            .iter()
            .zip(protected.iter())
            .map(|(a, b)| distance::haversine(a.location(), b.location()).as_f64())
            .sum::<f64>()
            / t.len() as f64;
        let expected = sigma * (std::f64::consts::PI / 2.0).sqrt();
        assert!((mean - expected).abs() / expected < 0.15, "mean {mean} expected {expected}");
    }

    #[test]
    fn timestamps_and_structure_preserved() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = trace();
        let g = GaussianPerturbation::new(Meters::new(200.0)).unwrap();
        let protected = g.protect_trace(&t, &mut rng).unwrap();
        assert_eq!(protected.len(), t.len());
        for (a, b) in t.iter().zip(protected.iter()) {
            assert_eq!(a.timestamp(), b.timestamp());
        }
    }
}
