//! Coordinate-precision reduction.
//!
//! The simplest deterministic LPPM found in deployed systems: truncate the
//! released latitude/longitude to a fixed number of decimal digits. Two
//! digits keep ~1 km precision, three digits ~110 m, four digits ~11 m. It is
//! a useful baseline because its privacy/utility behaviour is entirely
//! step-wise — a stress test for the framework's saturation detection.

use crate::error::LppmError;
use crate::params::{ParameterDescriptor, ParameterScale};
use crate::stream::LppmStream;
use crate::traits::Lppm;
use geopriv_geo::GeoPoint;
use geopriv_mobility::{DatasetBuilder, Record, Trace, TraceView};
use rand::RngCore;

/// Maximum number of decimal digits that still constitutes a reduction for
/// consumer GPS data (beyond ~7 digits the rounding is a no-op).
const MAX_DIGITS: u8 = 7;

/// Decimal truncation of released coordinates.
///
/// # Examples
///
/// ```
/// use geopriv_lppm::{CoordinateRounding, Lppm};
///
/// # fn main() -> Result<(), geopriv_lppm::LppmError> {
/// let lppm = CoordinateRounding::new(3)?; // ~110 m granularity
/// assert_eq!(lppm.digits(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordinateRounding {
    digits: u8,
}

impl CoordinateRounding {
    /// Creates the mechanism keeping `digits` decimal digits (0 to 7).
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] for more than 7 digits.
    pub fn new(digits: u8) -> Result<Self, LppmError> {
        if digits > MAX_DIGITS {
            return Err(LppmError::InvalidParameter {
                name: "digits",
                value: f64::from(digits),
                reason: "keeping more than 7 decimal digits is not a reduction",
            });
        }
        Ok(Self { digits })
    }

    /// Number of decimal digits kept.
    pub fn digits(&self) -> u8 {
        self.digits
    }

    /// Approximate spatial granularity of the rounding at mid latitudes, in meters.
    pub fn approximate_granularity_m(&self) -> f64 {
        111_320.0 / 10f64.powi(i32::from(self.digits))
    }

    /// The parameter descriptor for the digit count (0 to 7, linear).
    pub fn digits_descriptor() -> ParameterDescriptor {
        ParameterDescriptor::new("digits", 0.0, f64::from(MAX_DIGITS), ParameterScale::Linear)
            .expect("static descriptor is valid")
    }

    fn round_coordinate(&self, value: f64) -> f64 {
        let factor = 10f64.powi(i32::from(self.digits));
        (value * factor).round() / factor
    }
}

impl Lppm for CoordinateRounding {
    fn name(&self) -> &str {
        "coordinate-rounding"
    }

    fn parameters(&self) -> Vec<ParameterDescriptor> {
        vec![Self::digits_descriptor()]
    }

    fn protect_trace(&self, trace: &Trace, _rng: &mut dyn RngCore) -> Result<Trace, LppmError> {
        let locations = trace
            .iter()
            .map(|r| {
                GeoPoint::clamped(
                    self.round_coordinate(r.location().latitude()),
                    self.round_coordinate(r.location().longitude()),
                )
            })
            .collect();
        Ok(trace.with_locations(locations)?)
    }

    fn protect_view(
        &self,
        trace: TraceView<'_>,
        out: &mut DatasetBuilder,
        _rng: &mut dyn RngCore,
    ) -> Result<(), LppmError> {
        // Columnar twin of `protect_trace`: a pure scan over the coordinate
        // columns (the mechanism is deterministic, no RNG involved).
        out.begin_trace(trace.user());
        for record in trace.iter() {
            let released = GeoPoint::clamped(
                self.round_coordinate(record.location().latitude()),
                self.round_coordinate(record.location().longitude()),
            );
            out.push_record(record.timestamp(), released);
        }
        out.finish_trace()?;
        Ok(())
    }

    fn stream_kernel(&self, _seed: u64) -> Option<Box<dyn LppmStream>> {
        // Stateless per-record truncation: trivially bit-identical to the
        // offline scan, no RNG involved.
        Some(Box::new(CoordinateRoundingStream { mechanism: *self, released: 0 }))
    }
}

/// O(1) streaming kernel of [`CoordinateRounding`]: the offline per-record
/// truncation, one record at a time.
struct CoordinateRoundingStream {
    mechanism: CoordinateRounding,
    released: usize,
}

impl LppmStream for CoordinateRoundingStream {
    fn push(&mut self, record: Record) -> Result<Record, LppmError> {
        self.released += 1;
        Ok(record.with_location(GeoPoint::clamped(
            self.mechanism.round_coordinate(record.location().latitude()),
            self.mechanism.round_coordinate(record.location().longitude()),
        )))
    }

    fn len(&self) -> usize {
        self.released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_geo::{distance, GeoPoint, Seconds};
    use geopriv_mobility::{Record, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace() -> Trace {
        let records: Vec<Record> = (0..20)
            .map(|i| {
                Record::new(
                    Seconds::new(i as f64 * 30.0),
                    GeoPoint::new(37.774923 + i as f64 * 1e-4, -122.419416).unwrap(),
                )
            })
            .collect();
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn construction_and_granularity() {
        assert!(CoordinateRounding::new(0).is_ok());
        assert!(CoordinateRounding::new(7).is_ok());
        assert!(CoordinateRounding::new(8).is_err());
        let r = CoordinateRounding::new(3).unwrap();
        assert_eq!(r.digits(), 3);
        assert!((r.approximate_granularity_m() - 111.32).abs() < 0.1);
        assert_eq!(r.name(), "coordinate-rounding");
        assert_eq!(r.parameters()[0].name(), "digits");
    }

    #[test]
    fn rounding_is_deterministic_and_idempotent() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = trace();
        let r = CoordinateRounding::new(3).unwrap();
        let once = r.protect_trace(&t, &mut rng).unwrap();
        let twice = r.protect_trace(&once, &mut rng).unwrap();
        assert_eq!(once, twice);
        for record in &once {
            // 3 decimal digits: the coordinate times 1000 is an integer.
            let lat = record.location().latitude() * 1_000.0;
            assert!((lat - lat.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn displacement_is_bounded_by_the_granularity() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = trace();
        for digits in [2u8, 3, 4] {
            let r = CoordinateRounding::new(digits).unwrap();
            let protected = r.protect_trace(&t, &mut rng).unwrap();
            // Max displacement is half a diagonal of the rounding cell.
            let bound = r.approximate_granularity_m() * 0.75;
            for (a, b) in t.iter().zip(protected.iter()) {
                let d = distance::haversine(a.location(), b.location()).as_f64();
                assert!(d <= bound, "digits {digits}: displacement {d} exceeds {bound}");
            }
        }
    }

    #[test]
    fn more_digits_preserve_more_detail() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = trace();
        let distinct = |tr: &Trace| {
            let mut keys: Vec<(i64, i64)> = tr
                .iter()
                .map(|r| {
                    (
                        (r.location().latitude() * 1e7) as i64,
                        (r.location().longitude() * 1e7) as i64,
                    )
                })
                .collect();
            keys.sort_unstable();
            keys.dedup();
            keys.len()
        };
        let coarse = CoordinateRounding::new(2).unwrap().protect_trace(&t, &mut rng).unwrap();
        let fine = CoordinateRounding::new(5).unwrap().protect_trace(&t, &mut rng).unwrap();
        assert!(distinct(&fine) > distinct(&coarse));
        // 7 digits is essentially the identity for this trace.
        let identity_like =
            CoordinateRounding::new(7).unwrap().protect_trace(&t, &mut rng).unwrap();
        for (a, b) in t.iter().zip(identity_like.iter()) {
            assert!(distance::haversine(a.location(), b.location()).as_f64() < 0.05);
        }
    }
}
