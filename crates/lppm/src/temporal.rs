//! Temporal degradation mechanisms.
//!
//! Two simple mechanisms that protect by releasing *fewer* records rather
//! than perturbing their coordinates:
//!
//! * [`TemporalDownsampling`] keeps every `n`-th record (deterministic
//!   sub-sampling of the release stream);
//! * [`ReleaseSampling`] releases each record independently with probability
//!   `p` (randomized thinning).
//!
//! Both reduce the adversary's ability to detect dwell periods (POIs need a
//! minimum number of observations to be clustered) at the cost of coverage.

use crate::error::LppmError;
use crate::params::{ParameterDescriptor, ParameterScale};
use crate::traits::Lppm;
use geopriv_mobility::{Record, Trace};
use rand::{Rng, RngCore};

/// Keeps every `n`-th record of a trace.
///
/// # Examples
///
/// ```
/// use geopriv_lppm::{Lppm, TemporalDownsampling};
///
/// # fn main() -> Result<(), geopriv_lppm::LppmError> {
/// let lppm = TemporalDownsampling::new(4)?;
/// assert_eq!(lppm.factor(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalDownsampling {
    factor: usize,
}

impl TemporalDownsampling {
    /// Creates the mechanism keeping one record out of every `factor`.
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] if `factor` is zero.
    pub fn new(factor: usize) -> Result<Self, LppmError> {
        if factor == 0 {
            return Err(LppmError::InvalidParameter {
                name: "factor",
                value: 0.0,
                reason: "downsampling factor must be at least 1",
            });
        }
        Ok(Self { factor })
    }

    /// The downsampling factor.
    pub fn factor(&self) -> usize {
        self.factor
    }
}

impl Lppm for TemporalDownsampling {
    fn name(&self) -> &str {
        "temporal-downsampling"
    }

    fn parameters(&self) -> Vec<ParameterDescriptor> {
        vec![ParameterDescriptor::new("factor", 1.0, 64.0, ParameterScale::Logarithmic)
            .expect("static descriptor is valid")]
    }

    fn protect_trace(&self, trace: &Trace, _rng: &mut dyn RngCore) -> Result<Trace, LppmError> {
        Ok(trace.downsampled(self.factor)?)
    }
}

/// Releases each record independently with probability `p`.
///
/// The first record of a trace is always released so the protected trace is
/// never empty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReleaseSampling {
    probability: f64,
}

impl ReleaseSampling {
    /// Creates the mechanism with release probability `probability ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] outside that range.
    pub fn new(probability: f64) -> Result<Self, LppmError> {
        if !(probability.is_finite() && probability > 0.0 && probability <= 1.0) {
            return Err(LppmError::InvalidParameter {
                name: "probability",
                value: probability,
                reason: "release probability must be in (0, 1]",
            });
        }
        Ok(Self { probability })
    }

    /// The per-record release probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

impl Lppm for ReleaseSampling {
    fn name(&self) -> &str {
        "release-sampling"
    }

    fn parameters(&self) -> Vec<ParameterDescriptor> {
        vec![ParameterDescriptor::new("probability", 0.01, 1.0, ParameterScale::Linear)
            .expect("static descriptor is valid")]
    }

    fn protect_trace(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, LppmError> {
        let records: Vec<Record> = trace
            .iter()
            .enumerate()
            .filter(|(i, _)| *i == 0 || rng.gen_bool(self.probability))
            .map(|(_, r)| r)
            .collect();
        if records.is_empty() {
            return Err(LppmError::EmptyProtectedTrace);
        }
        Ok(Trace::new(trace.user(), records)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_geo::{GeoPoint, Seconds};
    use geopriv_mobility::UserId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace(n: usize) -> Trace {
        let records: Vec<Record> = (0..n)
            .map(|i| {
                Record::new(Seconds::new(i as f64 * 30.0), GeoPoint::new(37.77, -122.42).unwrap())
            })
            .collect();
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn downsampling_validation_and_behaviour() {
        assert!(TemporalDownsampling::new(0).is_err());
        let lppm = TemporalDownsampling::new(4).unwrap();
        assert_eq!(lppm.factor(), 4);
        assert_eq!(lppm.name(), "temporal-downsampling");
        assert_eq!(lppm.parameters().len(), 1);

        let mut rng = StdRng::seed_from_u64(1);
        let t = trace(100);
        let protected = lppm.protect_trace(&t, &mut rng).unwrap();
        assert_eq!(protected.len(), 25);
        assert_eq!(protected.first().timestamp().as_f64(), 0.0);

        // Factor 1 is the identity.
        let identity = TemporalDownsampling::new(1).unwrap().protect_trace(&t, &mut rng).unwrap();
        assert_eq!(identity, t);
    }

    #[test]
    fn release_sampling_validation() {
        assert!(ReleaseSampling::new(0.0).is_err());
        assert!(ReleaseSampling::new(-0.5).is_err());
        assert!(ReleaseSampling::new(1.5).is_err());
        assert!(ReleaseSampling::new(f64::NAN).is_err());
        assert!(ReleaseSampling::new(1.0).is_ok());
        let lppm = ReleaseSampling::new(0.3).unwrap();
        assert_eq!(lppm.probability(), 0.3);
        assert_eq!(lppm.name(), "release-sampling");
    }

    #[test]
    fn release_sampling_keeps_roughly_p_fraction() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = trace(5_000);
        let lppm = ReleaseSampling::new(0.25).unwrap();
        let protected = lppm.protect_trace(&t, &mut rng).unwrap();
        let fraction = protected.len() as f64 / t.len() as f64;
        assert!((fraction - 0.25).abs() < 0.03, "kept {fraction}");
        // Timestamps remain ordered and are a subset of the original ones.
        let original: std::collections::BTreeSet<u64> =
            t.iter().map(|r| r.timestamp().as_f64() as u64).collect();
        for r in &protected {
            assert!(original.contains(&(r.timestamp().as_f64() as u64)));
        }
    }

    #[test]
    fn release_sampling_never_empties_a_trace() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = trace(3);
        let lppm = ReleaseSampling::new(0.01).unwrap();
        for _ in 0..50 {
            let protected = lppm.protect_trace(&t, &mut rng).unwrap();
            assert!(!protected.is_empty());
        }
    }

    #[test]
    fn probability_one_is_the_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = trace(50);
        let protected = ReleaseSampling::new(1.0).unwrap().protect_trace(&t, &mut rng).unwrap();
        assert_eq!(protected, t);
    }
}
