//! # geopriv-lppm
//!
//! Location Privacy Protection Mechanisms (LPPMs) for the `geopriv` workspace.
//!
//! The object of study of Cerf et al.'s configuration framework is the LPPM:
//! a mechanism that transforms an actual mobility trace into a protected one.
//! This crate provides:
//!
//! * [`Lppm`] — the common, object-safe mechanism interface;
//! * [`GeoIndistinguishability`] — the paper's illustrated mechanism
//!   (planar-Laplace noise parameterized by ε in m⁻¹, Andrés et al. CCS 2013);
//! * [`GridCloaking`], [`GaussianPerturbation`], [`TemporalDownsampling`],
//!   [`ReleaseSampling`] — the additional mechanisms the paper's future work
//!   targets, used as baselines and ablations;
//! * [`Pipeline`] — sequential composition of mechanisms;
//! * [`stream::open_stream`] — record-at-a-time streaming sessions for the
//!   online serving path, bit-identical to the offline columnar protection
//!   under a fixed seed;
//! * [`Epsilon`], [`ParameterDescriptor`] — typed configuration parameters and
//!   the sweep metadata the framework consumes;
//! * [`ConfigSpace`], [`ConfigPoint`] — multi-dimensional configuration
//!   spaces (ordered, uniquely named axes) and validated points inside them,
//!   the unit the framework sweeps and recommends.
//!
//! ## Example
//!
//! ```
//! use geopriv_lppm::{Epsilon, GeoIndistinguishability, Lppm};
//! use geopriv_mobility::generator::TaxiFleetBuilder;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let dataset = TaxiFleetBuilder::new().drivers(2).duration_hours(1.0).build(&mut rng)?;
//!
//! // ε = 0.01 m⁻¹ is the paper's recommended operating point.
//! let geoi = GeoIndistinguishability::new(Epsilon::new(0.01)?);
//! let protected = geoi.protect_dataset(&dataset, &mut rng)?;
//! assert_eq!(protected.user_count(), dataset.user_count());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cloaking;
pub mod error;
pub mod gaussian;
pub mod geo_ind;
pub mod laplace;
pub mod params;
pub mod pipeline;
pub mod promesse;
pub mod rounding;
pub mod space;
pub mod stream;
pub mod temporal;
pub mod traits;

pub use cloaking::GridCloaking;
pub use error::LppmError;
pub use gaussian::GaussianPerturbation;
pub use geo_ind::{GeoIndistinguishability, PAPER_EPSILON_RANGE};
pub use laplace::PlanarLaplace;
pub use params::{Epsilon, ParameterDescriptor, ParameterScale};
pub use pipeline::{qualify_stage_parameters, Pipeline};
pub use promesse::SpeedSmoothing;
pub use rounding::CoordinateRounding;
pub use space::{ConfigPoint, ConfigSpace};
pub use stream::{open_stream, open_stream_bounded, LppmStream, ReplayStream};
pub use temporal::{ReleaseSampling, TemporalDownsampling};
pub use traits::{Identity, Lppm};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::cloaking::GridCloaking;
    pub use crate::error::LppmError;
    pub use crate::gaussian::GaussianPerturbation;
    pub use crate::geo_ind::GeoIndistinguishability;
    pub use crate::params::{Epsilon, ParameterDescriptor, ParameterScale};
    pub use crate::pipeline::Pipeline;
    pub use crate::promesse::SpeedSmoothing;
    pub use crate::rounding::CoordinateRounding;
    pub use crate::space::{ConfigPoint, ConfigSpace};
    pub use crate::stream::{open_stream, LppmStream};
    pub use crate::temporal::{ReleaseSampling, TemporalDownsampling};
    pub use crate::traits::{Identity, Lppm};
}
