//! Composition of protection mechanisms.
//!
//! Mechanisms compose naturally: e.g. downsample the release stream, then add
//! Geo-Indistinguishability noise. [`Pipeline`] applies a sequence of LPPMs
//! in order and is itself an LPPM, so composed mechanisms can be fed to the
//! configuration framework unchanged.

use crate::error::LppmError;
use crate::params::ParameterDescriptor;
use crate::traits::Lppm;
use geopriv_mobility::Trace;
use rand::RngCore;

/// A sequence of LPPMs applied one after the other.
///
/// # Examples
///
/// ```
/// use geopriv_lppm::{Epsilon, GeoIndistinguishability, Lppm, Pipeline, TemporalDownsampling};
///
/// # fn main() -> Result<(), geopriv_lppm::LppmError> {
/// let pipeline = Pipeline::new()
///     .then(TemporalDownsampling::new(2)?)
///     .then(GeoIndistinguishability::new(Epsilon::new(0.01)?));
/// assert_eq!(pipeline.len(), 2);
/// assert_eq!(pipeline.name(), "pipeline[temporal-downsampling, geo-indistinguishability]");
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Pipeline {
    stages: Vec<Box<dyn Lppm>>,
    name: String,
}

impl Pipeline {
    /// Creates an empty pipeline (equivalent to the identity mechanism).
    pub fn new() -> Self {
        Self { stages: Vec::new(), name: "pipeline[]".to_string() }
    }

    /// Appends a mechanism to the end of the pipeline.
    pub fn then<M: Lppm + 'static>(mut self, mechanism: M) -> Self {
        self.stages.push(Box::new(mechanism));
        self.rebuild_name();
        self
    }

    /// Appends an already-boxed mechanism to the end of the pipeline.
    pub fn then_boxed(mut self, mechanism: Box<dyn Lppm>) -> Self {
        self.stages.push(mechanism);
        self.rebuild_name();
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Returns `true` if the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    fn rebuild_name(&mut self) {
        let names: Vec<&str> = self.stages.iter().map(|s| s.name()).collect();
        self.name = format!("pipeline[{}]", names.join(", "));
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("stages", &self.name)
            .field("len", &self.stages.len())
            .finish()
    }
}

impl Lppm for Pipeline {
    fn name(&self) -> &str {
        &self.name
    }

    fn parameters(&self) -> Vec<ParameterDescriptor> {
        self.stages.iter().flat_map(|s| s.parameters()).collect()
    }

    fn protect_trace(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, LppmError> {
        let mut current = trace.clone();
        for stage in &self.stages {
            current = stage.protect_trace(&current, rng)?;
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo_ind::GeoIndistinguishability;
    use crate::params::Epsilon;
    use crate::temporal::TemporalDownsampling;
    use crate::traits::Identity;
    use geopriv_geo::{distance, GeoPoint, Seconds};
    use geopriv_mobility::{Record, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace() -> Trace {
        let records: Vec<Record> = (0..100)
            .map(|i| {
                Record::new(Seconds::new(i as f64 * 30.0), GeoPoint::new(37.77, -122.42).unwrap())
            })
            .collect();
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Pipeline::new();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        let t = trace();
        assert_eq!(p.protect_trace(&t, &mut rng).unwrap(), t);
        assert!(p.parameters().is_empty());
        assert_eq!(p.name(), "pipeline[]");
    }

    #[test]
    fn stages_apply_in_order() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = trace();
        let pipeline = Pipeline::new()
            .then(TemporalDownsampling::new(4).unwrap())
            .then(GeoIndistinguishability::new(Epsilon::new(0.05).unwrap()));
        let protected = pipeline.protect_trace(&t, &mut rng).unwrap();
        // Downsampling happened…
        assert_eq!(protected.len(), 25);
        // …and the noise displaced the surviving records.
        let displaced = protected
            .iter()
            .filter(|r| {
                distance::haversine(r.location(), GeoPoint::new(37.77, -122.42).unwrap()).as_f64()
                    > 1.0
            })
            .count();
        assert!(displaced > 20);
    }

    #[test]
    fn parameters_are_concatenated_and_name_lists_stages() {
        let pipeline = Pipeline::new()
            .then(Identity::new())
            .then_boxed(Box::new(GeoIndistinguishability::new(Epsilon::new(0.01).unwrap())));
        assert_eq!(pipeline.len(), 2);
        assert_eq!(pipeline.parameters().len(), 1);
        assert_eq!(pipeline.name(), "pipeline[identity, geo-indistinguishability]");
        assert!(format!("{pipeline:?}").contains("Pipeline"));
    }

    #[test]
    fn pipeline_errors_propagate() {
        let mut rng = StdRng::seed_from_u64(3);
        // A 3-record trace downsampled by 4 keeps one record; a second
        // downsampling by 4 still keeps one record — no error. Force an error
        // with an invalid parameter instead at construction time.
        assert!(TemporalDownsampling::new(0).is_err());
        // And a valid pipeline on a tiny trace still works.
        let t = Trace::new(
            UserId::new(1),
            vec![Record::new(Seconds::new(0.0), GeoPoint::new(37.77, -122.42).unwrap())],
        )
        .unwrap();
        let pipeline = Pipeline::new().then(TemporalDownsampling::new(4).unwrap());
        assert_eq!(pipeline.protect_trace(&t, &mut rng).unwrap().len(), 1);
    }
}
