//! Composition of protection mechanisms.
//!
//! Mechanisms compose naturally: e.g. downsample the release stream, then add
//! Geo-Indistinguishability noise. [`Pipeline`] applies a sequence of LPPMs
//! in order and is itself an LPPM, so composed mechanisms can be fed to the
//! configuration framework unchanged.

use crate::error::LppmError;
use crate::params::ParameterDescriptor;
use crate::space::ConfigSpace;
use crate::traits::Lppm;
use geopriv_mobility::Trace;
use rand::RngCore;

/// Qualifies per-stage parameter descriptors so the flattened list has
/// globally unique names, preserving the per-stage grouping.
///
/// A name exposed by more than one stage is qualified by its 1-based stage
/// position (`"1.epsilon"`, `"3.epsilon"`); names still colliding after that
/// (a stage exposing one name twice, or a literal `"1.epsilon"` parameter)
/// get an occurrence suffix (`"1.epsilon#2"`). Unambiguous names pass
/// through unqualified. This is the naming contract of
/// [`Pipeline::parameters`], shared with factory-side pipeline composition
/// so a qualified axis name always maps back to one stage parameter.
pub fn qualify_stage_parameters(
    per_stage: &[Vec<ParameterDescriptor>],
) -> Vec<Vec<ParameterDescriptor>> {
    // How many *stages* expose each name (duplicates within one stage count
    // once: position-qualification could not disambiguate those — the
    // occurrence pass below handles them).
    let mut stages_exposing: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    for descriptors in per_stage {
        let mut seen_in_stage = std::collections::HashSet::new();
        for d in descriptors {
            if seen_in_stage.insert(d.name()) {
                *stages_exposing.entry(d.name().to_string()).or_insert(0) += 1;
            }
        }
    }
    let mut out: Vec<Vec<ParameterDescriptor>> = Vec::with_capacity(per_stage.len());
    for (stage, descriptors) in per_stage.iter().enumerate() {
        out.push(
            descriptors
                .iter()
                .map(|d| {
                    if stages_exposing[d.name()] > 1 {
                        d.with_name(format!("{}.{}", stage + 1, d.name()))
                    } else {
                        d.clone()
                    }
                })
                .collect(),
        );
    }
    // Final uniqueness pass: whatever ambiguity survives stage qualification
    // is resolved by occurrence, so the flattened list never contains two
    // descriptors a sweep cannot tell apart.
    let mut occurrences: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    for descriptors in &mut out {
        for d in descriptors {
            let n = occurrences.entry(d.name().to_string()).or_insert(0);
            *n += 1;
            if *n > 1 {
                *d = d.with_name(format!("{}#{}", d.name(), n));
            }
        }
    }
    out
}

/// A sequence of LPPMs applied one after the other.
///
/// # Examples
///
/// ```
/// use geopriv_lppm::{Epsilon, GeoIndistinguishability, Lppm, Pipeline, TemporalDownsampling};
///
/// # fn main() -> Result<(), geopriv_lppm::LppmError> {
/// let pipeline = Pipeline::new()
///     .then(TemporalDownsampling::new(2)?)
///     .then(GeoIndistinguishability::new(Epsilon::new(0.01)?));
/// assert_eq!(pipeline.len(), 2);
/// assert_eq!(pipeline.name(), "pipeline[temporal-downsampling, geo-indistinguishability]");
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Pipeline {
    stages: Vec<Box<dyn Lppm>>,
    name: String,
}

impl Pipeline {
    /// Creates an empty pipeline (equivalent to the identity mechanism).
    pub fn new() -> Self {
        Self { stages: Vec::new(), name: "pipeline[]".to_string() }
    }

    /// Appends a mechanism to the end of the pipeline.
    pub fn then<M: Lppm + 'static>(mut self, mechanism: M) -> Self {
        self.stages.push(Box::new(mechanism));
        self.rebuild_name();
        self
    }

    /// Appends an already-boxed mechanism to the end of the pipeline.
    pub fn then_boxed(mut self, mechanism: Box<dyn Lppm>) -> Self {
        self.stages.push(mechanism);
        self.rebuild_name();
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Returns `true` if the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    fn rebuild_name(&mut self) {
        let names: Vec<&str> = self.stages.iter().map(|s| s.name()).collect();
        self.name = format!("pipeline[{}]", names.join(", "));
    }

    /// The pipeline's full qualified configuration space: one axis per stage
    /// parameter, with the unique names of [`Pipeline::parameters`].
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] when the pipeline exposes no
    /// parameters at all (nothing to sweep).
    pub fn config_space(&self) -> Result<ConfigSpace, LppmError> {
        ConfigSpace::new(self.parameters())
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("stages", &self.name)
            .field("len", &self.stages.len())
            .finish()
    }
}

impl Lppm for Pipeline {
    fn name(&self) -> &str {
        &self.name
    }

    /// Concatenates the stage descriptors, guaranteeing unique names. A
    /// parameter name exposed by more than one stage (e.g. two GEO-I stages,
    /// both `"epsilon"`) would be ambiguous — the sweep could not tell which
    /// stage it targets — so every occurrence of a colliding name is
    /// qualified by its 1-based stage position (`"1.epsilon"`,
    /// `"2.epsilon"`). Names still colliding after that (a stage exposing one
    /// name twice, or a stage literally naming a parameter `"1.epsilon"`)
    /// get an occurrence suffix (`"1.epsilon#2"`). Unambiguous names are
    /// passed through unqualified.
    fn parameters(&self) -> Vec<ParameterDescriptor> {
        let per_stage: Vec<Vec<ParameterDescriptor>> =
            self.stages.iter().map(|s| s.parameters()).collect();
        qualify_stage_parameters(&per_stage).into_iter().flatten().collect()
    }

    fn protect_trace(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, LppmError> {
        let mut current = trace.clone();
        for stage in &self.stages {
            current = stage.protect_trace(&current, rng)?;
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo_ind::GeoIndistinguishability;
    use crate::params::Epsilon;
    use crate::temporal::TemporalDownsampling;
    use crate::traits::Identity;
    use geopriv_geo::{distance, GeoPoint, Seconds};
    use geopriv_mobility::{Record, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace() -> Trace {
        let records: Vec<Record> = (0..100)
            .map(|i| {
                Record::new(Seconds::new(i as f64 * 30.0), GeoPoint::new(37.77, -122.42).unwrap())
            })
            .collect();
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Pipeline::new();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        let t = trace();
        assert_eq!(p.protect_trace(&t, &mut rng).unwrap(), t);
        assert!(p.parameters().is_empty());
        assert_eq!(p.name(), "pipeline[]");
    }

    #[test]
    fn stages_apply_in_order() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = trace();
        let pipeline = Pipeline::new()
            .then(TemporalDownsampling::new(4).unwrap())
            .then(GeoIndistinguishability::new(Epsilon::new(0.05).unwrap()));
        let protected = pipeline.protect_trace(&t, &mut rng).unwrap();
        // Downsampling happened…
        assert_eq!(protected.len(), 25);
        // …and the noise displaced the surviving records.
        let displaced = protected
            .iter()
            .filter(|r| {
                distance::haversine(r.location(), GeoPoint::new(37.77, -122.42).unwrap()).as_f64()
                    > 1.0
            })
            .count();
        assert!(displaced > 20);
    }

    #[test]
    fn parameters_are_concatenated_and_name_lists_stages() {
        let pipeline = Pipeline::new()
            .then(Identity::new())
            .then_boxed(Box::new(GeoIndistinguishability::new(Epsilon::new(0.01).unwrap())));
        assert_eq!(pipeline.len(), 2);
        assert_eq!(pipeline.parameters().len(), 1);
        assert_eq!(pipeline.name(), "pipeline[identity, geo-indistinguishability]");
        assert!(format!("{pipeline:?}").contains("Pipeline"));
    }

    #[test]
    fn colliding_stage_parameters_are_qualified_by_position() {
        // Two GEO-I stages both expose "epsilon": without qualification the
        // sweep could not tell which stage it targets.
        let pipeline = Pipeline::new()
            .then(GeoIndistinguishability::new(Epsilon::new(0.01).unwrap()))
            .then(TemporalDownsampling::new(2).unwrap())
            .then(GeoIndistinguishability::new(Epsilon::new(0.1).unwrap()));
        let names: Vec<String> =
            pipeline.parameters().iter().map(|d| d.name().to_string()).collect();
        assert_eq!(names, vec!["1.epsilon", "factor", "3.epsilon"]);
        // Qualification renames only; range and scale survive.
        let first = &pipeline.parameters()[0];
        assert_eq!((first.min(), first.max(), first.scale()), {
            let d = GeoIndistinguishability::epsilon_descriptor();
            (d.min(), d.max(), d.scale())
        });
        // Non-colliding names stay unqualified.
        let single = Pipeline::new()
            .then(TemporalDownsampling::new(2).unwrap())
            .then(GeoIndistinguishability::new(Epsilon::new(0.01).unwrap()));
        let names: Vec<String> = single.parameters().iter().map(|d| d.name().to_string()).collect();
        assert_eq!(names, vec!["factor", "epsilon"]);
    }

    #[test]
    fn within_stage_duplicates_get_occurrence_suffixes() {
        use crate::params::ParameterScale;

        /// A (misbehaved) stage exposing the same parameter name twice.
        struct TwinParams;
        impl Lppm for TwinParams {
            fn name(&self) -> &str {
                "twin-params"
            }
            fn parameters(&self) -> Vec<ParameterDescriptor> {
                let d = ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic)
                    .unwrap();
                vec![d.clone(), d]
            }
            fn protect_trace(
                &self,
                trace: &Trace,
                _: &mut dyn RngCore,
            ) -> Result<Trace, LppmError> {
                Ok(trace.clone())
            }
        }

        // Stage qualification cannot split a within-stage duplicate, so the
        // occurrence pass must — the returned names are always unique.
        let pipeline = Pipeline::new()
            .then(TwinParams)
            .then(GeoIndistinguishability::new(Epsilon::new(0.01).unwrap()));
        let names: Vec<String> =
            pipeline.parameters().iter().map(|d| d.name().to_string()).collect();
        assert_eq!(names, vec!["1.epsilon", "1.epsilon#2", "2.epsilon"]);
        let unique: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn config_space_exposes_the_qualified_axes() {
        let pipeline = Pipeline::new()
            .then(GeoIndistinguishability::new(Epsilon::new(0.01).unwrap()))
            .then(TemporalDownsampling::new(2).unwrap())
            .then(GeoIndistinguishability::new(Epsilon::new(0.1).unwrap()));
        let space = pipeline.config_space().unwrap();
        assert_eq!(space.names(), vec!["1.epsilon", "factor", "3.epsilon"]);
        // A parameterless pipeline has no space to sweep.
        assert!(Pipeline::new().config_space().is_err());
        assert!(Pipeline::new().then(Identity::new()).config_space().is_err());
    }

    #[test]
    fn pipeline_errors_propagate() {
        let mut rng = StdRng::seed_from_u64(3);
        // A 3-record trace downsampled by 4 keeps one record; a second
        // downsampling by 4 still keeps one record — no error. Force an error
        // with an invalid parameter instead at construction time.
        assert!(TemporalDownsampling::new(0).is_err());
        // And a valid pipeline on a tiny trace still works.
        let t = Trace::new(
            UserId::new(1),
            vec![Record::new(Seconds::new(0.0), GeoPoint::new(37.77, -122.42).unwrap())],
        )
        .unwrap();
        let pipeline = Pipeline::new().then(TemporalDownsampling::new(4).unwrap());
        assert_eq!(pipeline.protect_trace(&t, &mut rng).unwrap().len(), 1);
    }
}
