//! Geo-Indistinguishability (GEO-I).
//!
//! The LPPM the paper configures: Andrés, Bordenabe, Chatzikokolakis and
//! Palamidessi, *Geo-indistinguishability: Differential Privacy for
//! Location-based Systems*, CCS 2013. Each released location is the actual
//! location plus planar-Laplace noise calibrated by ε (in m⁻¹): the lower
//! the ε, the higher the noise and therefore the stronger the privacy
//! guarantee — and the lower the utility of the released data.

use crate::error::LppmError;
use crate::laplace::PlanarLaplace;
use crate::params::{Epsilon, ParameterDescriptor, ParameterScale};
use crate::stream::LppmStream;
use crate::traits::Lppm;
use geopriv_geo::LocalProjection;
use geopriv_mobility::{DatasetBuilder, Record, Trace, TraceView};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The ε range swept by the paper's evaluation (Figure 1): 10⁻⁴ to 1 m⁻¹.
pub const PAPER_EPSILON_RANGE: (f64, f64) = (1e-4, 1.0);

/// The Geo-Indistinguishability mechanism.
///
/// # Examples
///
/// ```
/// use geopriv_lppm::{Epsilon, GeoIndistinguishability, Lppm};
/// use geopriv_mobility::generator::TaxiFleetBuilder;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let dataset = TaxiFleetBuilder::new().drivers(2).duration_hours(2.0).build(&mut rng)?;
///
/// let geoi = GeoIndistinguishability::new(Epsilon::new(0.01)?);
/// let protected = geoi.protect_dataset(&dataset, &mut rng)?;
/// assert_eq!(protected.record_count(), dataset.record_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoIndistinguishability {
    epsilon: Epsilon,
}

impl GeoIndistinguishability {
    /// Creates the mechanism with the given privacy parameter.
    pub fn new(epsilon: Epsilon) -> Self {
        Self { epsilon }
    }

    /// Creates the mechanism from a raw ε value in m⁻¹.
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] for non-positive or non-finite values.
    pub fn with_epsilon(epsilon: f64) -> Result<Self, LppmError> {
        Ok(Self::new(Epsilon::new(epsilon)?))
    }

    /// The configured ε.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The parameter descriptor for ε over the paper's sweep range.
    pub fn epsilon_descriptor() -> ParameterDescriptor {
        ParameterDescriptor::new(
            "epsilon",
            PAPER_EPSILON_RANGE.0,
            PAPER_EPSILON_RANGE.1,
            ParameterScale::Logarithmic,
        )
        .expect("static descriptor is valid")
    }
}

impl Lppm for GeoIndistinguishability {
    fn name(&self) -> &str {
        "geo-indistinguishability"
    }

    fn parameters(&self) -> Vec<ParameterDescriptor> {
        vec![Self::epsilon_descriptor()]
    }

    fn protect_trace(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, LppmError> {
        let noise = PlanarLaplace::new(self.epsilon);
        // One projection per trace, centered on its first record, keeps the
        // planar approximation error negligible at city scale while avoiding
        // a data-dependent (privacy-leaking) global frame.
        let projection = LocalProjection::centered_on(trace.first().location());
        let locations = trace
            .iter()
            .map(|record| {
                let (dx, dy) = noise.sample(rng);
                let actual = projection.project(record.location());
                projection.unproject(actual.translated(dx, dy))
            })
            .collect();
        Ok(trace.with_locations(locations)?)
    }

    fn protect_view(
        &self,
        trace: TraceView<'_>,
        out: &mut DatasetBuilder,
        rng: &mut dyn RngCore,
    ) -> Result<(), LppmError> {
        // Columnar twin of `protect_trace`: identical per-record operation
        // and RNG draw order, writing straight into the output columns.
        let noise = PlanarLaplace::new(self.epsilon);
        let projection = LocalProjection::centered_on(trace.first().location());
        out.begin_trace(trace.user());
        for record in trace.iter() {
            let (dx, dy) = noise.sample(rng);
            let actual = projection.project(record.location());
            out.push_record(record.timestamp(), projection.unproject(actual.translated(dx, dy)));
        }
        out.finish_trace()?;
        Ok(())
    }

    fn stream_kernel(&self, seed: u64) -> Option<Box<dyn LppmStream>> {
        Some(Box::new(GeoIndistinguishabilityStream {
            noise: PlanarLaplace::new(self.epsilon),
            projection: None,
            rng: StdRng::seed_from_u64(seed),
            released: 0,
        }))
    }
}

/// O(1) streaming kernel of [`GeoIndistinguishability`]: the projection is
/// anchored on the *first* pushed record (exactly the per-trace anchoring of
/// the offline paths) and the persistent RNG draws one planar-Laplace sample
/// per record in push order — the offline draw order, record for record.
struct GeoIndistinguishabilityStream {
    noise: PlanarLaplace,
    projection: Option<LocalProjection>,
    rng: StdRng,
    released: usize,
}

impl LppmStream for GeoIndistinguishabilityStream {
    fn push(&mut self, record: Record) -> Result<Record, LppmError> {
        let projection =
            *self.projection.get_or_insert_with(|| LocalProjection::centered_on(record.location()));
        let (dx, dy) = self.noise.sample(&mut self.rng);
        let actual = projection.project(record.location());
        self.released += 1;
        Ok(record.with_location(projection.unproject(actual.translated(dx, dy))))
    }

    fn len(&self) -> usize {
        self.released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_geo::{distance, GeoPoint, Seconds};
    use geopriv_mobility::{Record, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace() -> Trace {
        let records: Vec<Record> = (0..200)
            .map(|i| {
                Record::new(
                    Seconds::new(i as f64 * 30.0),
                    GeoPoint::new(37.76 + (i % 10) as f64 * 0.001, -122.44).unwrap(),
                )
            })
            .collect();
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn construction_and_metadata() {
        assert!(GeoIndistinguishability::with_epsilon(0.01).is_ok());
        assert!(GeoIndistinguishability::with_epsilon(0.0).is_err());
        let geoi = GeoIndistinguishability::with_epsilon(0.02).unwrap();
        assert_eq!(geoi.name(), "geo-indistinguishability");
        assert_eq!(geoi.epsilon().value(), 0.02);
        let params = geoi.parameters();
        assert_eq!(params.len(), 1);
        assert_eq!(params[0].name(), "epsilon");
        assert_eq!(params[0].scale(), ParameterScale::Logarithmic);
    }

    #[test]
    fn protection_preserves_structure_and_timestamps() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = trace();
        let geoi = GeoIndistinguishability::with_epsilon(0.01).unwrap();
        let protected = geoi.protect_trace(&t, &mut rng).unwrap();
        assert_eq!(protected.len(), t.len());
        assert_eq!(protected.user(), t.user());
        for (a, b) in t.iter().zip(protected.iter()) {
            assert_eq!(a.timestamp(), b.timestamp());
        }
    }

    #[test]
    fn mean_displacement_matches_two_over_epsilon() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = trace();
        for &eps in &[0.005, 0.01, 0.05] {
            let geoi = GeoIndistinguishability::with_epsilon(eps).unwrap();
            let protected = geoi.protect_trace(&t, &mut rng).unwrap();
            let mean_displacement: f64 = t
                .iter()
                .zip(protected.iter())
                .map(|(a, b)| distance::haversine(a.location(), b.location()).as_f64())
                .sum::<f64>()
                / t.len() as f64;
            let expected = 2.0 / eps;
            assert!(
                (mean_displacement - expected).abs() / expected < 0.25,
                "eps={eps}: mean {mean_displacement} expected {expected}"
            );
        }
    }

    #[test]
    fn larger_epsilon_perturbs_less() {
        let t = trace();
        let displacement = |eps: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let protected = GeoIndistinguishability::with_epsilon(eps)
                .unwrap()
                .protect_trace(&t, &mut rng)
                .unwrap();
            t.iter()
                .zip(protected.iter())
                .map(|(a, b)| distance::haversine(a.location(), b.location()).as_f64())
                .sum::<f64>()
                / t.len() as f64
        };
        assert!(displacement(0.001, 3) > 10.0 * displacement(0.1, 3));
    }

    #[test]
    fn deterministic_under_seed() {
        let t = trace();
        let geoi = GeoIndistinguishability::with_epsilon(0.01).unwrap();
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        assert_eq!(
            geoi.protect_trace(&t, &mut rng_a).unwrap(),
            geoi.protect_trace(&t, &mut rng_b).unwrap()
        );
    }
}
