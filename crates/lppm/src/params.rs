//! Configuration-parameter types shared by the mechanisms.

use crate::error::LppmError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The ε parameter of Geo-Indistinguishability, in inverse meters (m⁻¹).
///
/// ε quantifies the privacy budget per unit of distance: "the lower the ε,
/// the higher the noise". Typical values in the paper's sweep range from
/// 10⁻⁴ m⁻¹ (kilometric noise) to 1 m⁻¹ (metric noise).
///
/// # Examples
///
/// ```
/// use geopriv_lppm::Epsilon;
///
/// # fn main() -> Result<(), geopriv_lppm::LppmError> {
/// let eps = Epsilon::new(0.01)?;
/// assert_eq!(eps.value(), 0.01);
/// // The expected noise radius of GEO-I is 2/ε.
/// assert_eq!(eps.expected_noise_radius_m(), 200.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Creates an ε value.
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] unless the value is finite and
    /// strictly positive.
    pub fn new(value: f64) -> Result<Self, LppmError> {
        if value.is_finite() && value > 0.0 {
            Ok(Self(value))
        } else {
            Err(LppmError::InvalidParameter {
                name: "epsilon",
                value,
                reason: "epsilon must be finite and strictly positive (in m^-1)",
            })
        }
    }

    /// The raw value in m⁻¹.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The mean distance of the planar-Laplace noise this ε induces: `2/ε` meters.
    pub fn expected_noise_radius_m(self) -> f64 {
        2.0 / self.0
    }

    /// Natural logarithm of ε — the predictor variable of the paper's Equation 2.
    pub fn ln(self) -> f64 {
        self.0.ln()
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε = {} m⁻¹", self.0)
    }
}

impl TryFrom<f64> for Epsilon {
    type Error = LppmError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Epsilon::new(value)
    }
}

impl From<Epsilon> for f64 {
    fn from(eps: Epsilon) -> f64 {
        eps.0
    }
}

/// How a configuration parameter should be swept and modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParameterScale {
    /// Sweep linearly; model the metric as a linear function of the parameter.
    Linear,
    /// Sweep geometrically; model the metric as a function of the logarithm
    /// of the parameter (the paper's treatment of ε).
    Logarithmic,
}

impl ParameterScale {
    /// The lowercase prose token of the scale (`"linear"` / `"log"`), shared
    /// by [`ParameterDescriptor`]'s `Display` and
    /// [`ParameterDescriptor::cache_token`] so the two never disagree.
    pub const fn token(self) -> &'static str {
        match self {
            ParameterScale::Linear => "linear",
            ParameterScale::Logarithmic => "log",
        }
    }
}

impl fmt::Display for ParameterScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Description of one configuration parameter of an LPPM: its name, valid
/// range and sweep scale.
///
/// This is the machine-readable contract the configuration framework uses to
/// sweep a mechanism without knowing anything about its internals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterDescriptor {
    name: String,
    min: f64,
    max: f64,
    scale: ParameterScale,
    /// Explicit default value, if one was set with
    /// [`ParameterDescriptor::with_default`]; otherwise the scale-aware
    /// midpoint of the range acts as the default.
    default: Option<f64>,
}

impl ParameterDescriptor {
    /// Creates a parameter descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] if the range is empty, not
    /// finite, or (for logarithmic parameters) not strictly positive.
    pub fn new(
        name: impl Into<String>,
        min: f64,
        max: f64,
        scale: ParameterScale,
    ) -> Result<Self, LppmError> {
        if !(min.is_finite() && max.is_finite() && min < max) {
            return Err(LppmError::InvalidParameter {
                name: "range",
                value: min,
                reason: "parameter range must be finite and non-empty",
            });
        }
        if scale == ParameterScale::Logarithmic && min <= 0.0 {
            return Err(LppmError::InvalidParameter {
                name: "range",
                value: min,
                reason: "logarithmic parameters must have a strictly positive range",
            });
        }
        Ok(Self { name: name.into(), min, max, scale, default: None })
    }

    /// Returns a copy of the descriptor with an explicit default value —
    /// the value a multi-axis sweep holds this parameter at while other axes
    /// vary (see [`crate::ConfigSpace::one_at_a_time`]).
    ///
    /// # Errors
    ///
    /// Returns [`LppmError::InvalidParameter`] if `default` lies outside the
    /// descriptor's range.
    pub fn with_default(&self, default: f64) -> Result<Self, LppmError> {
        if !self.contains(default) {
            return Err(LppmError::InvalidParameter {
                name: "default",
                value: default,
                reason: "the default value must lie inside the parameter range",
            });
        }
        Ok(Self { default: Some(default), ..self.clone() })
    }

    /// The axis default: the explicitly set default if any, otherwise the
    /// scale-aware midpoint of the range (arithmetic for linear parameters,
    /// geometric for logarithmic ones).
    pub fn default_value(&self) -> f64 {
        self.default.unwrap_or(match self.scale {
            ParameterScale::Linear => (self.min + self.max) / 2.0,
            ParameterScale::Logarithmic => (self.min * self.max).sqrt(),
        })
    }

    /// The parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lower bound of the valid range.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the valid range.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The sweep/modeling scale.
    pub fn scale(&self) -> ParameterScale {
        self.scale
    }

    /// Returns `true` if `value` lies inside the valid range.
    pub fn contains(&self, value: f64) -> bool {
        value.is_finite() && value >= self.min && value <= self.max
    }

    /// Generates `count` sweep values across the range, spaced according to
    /// the parameter scale (geometric for logarithmic parameters).
    ///
    /// Both endpoints are included *exactly*: the formulas
    /// `min + (max - min) * t` and `min * (max / min).powf(t)` drift off `max`
    /// by a few ULPs at `t = 1`, which would make the last sweep value fall
    /// outside the descriptor's own range. `count` is clamped to at least 2.
    pub fn sweep(&self, count: usize) -> Vec<f64> {
        let count = count.max(2);
        let last = count - 1;
        let interior = |i: usize| {
            let t = i as f64 / last as f64;
            match self.scale {
                ParameterScale::Linear => self.min + (self.max - self.min) * t,
                ParameterScale::Logarithmic => self.min * (self.max / self.min).powf(t),
            }
        };
        (0..count)
            .map(|i| {
                if i == 0 {
                    self.min
                } else if i == last {
                    self.max
                } else {
                    interior(i)
                }
            })
            .collect()
    }

    /// Returns a copy of the descriptor under a different name (same range
    /// and scale) — used e.g. by [`crate::Pipeline`] to qualify colliding
    /// stage parameter names.
    #[must_use]
    pub fn with_name(&self, name: impl Into<String>) -> Self {
        Self { name: name.into(), ..self.clone() }
    }

    /// A stable token encoding the descriptor's name, range and scale, for
    /// use in cache keys (two systems sweeping the same mechanism over
    /// different ranges must not be conflated).
    pub fn cache_token(&self) -> String {
        format!("{}:{:e}..{:e}:{}", self.name, self.min, self.max, self.scale.token())
    }
}

impl fmt::Display for ParameterDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ∈ [{}, {}] ({})", self.name, self.min, self.max, self.scale.token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(Epsilon::new(0.01).is_ok());
        assert!(Epsilon::new(0.0).is_err());
        assert!(Epsilon::new(-1.0).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
        assert!(Epsilon::try_from(0.5).is_ok());
        let eps = Epsilon::new(0.02).unwrap();
        assert_eq!(f64::from(eps), 0.02);
        assert!((eps.ln() - 0.02f64.ln()).abs() < 1e-12);
        assert!(eps.to_string().contains("0.02"));
    }

    #[test]
    fn expected_noise_radius_is_two_over_epsilon() {
        assert_eq!(Epsilon::new(0.01).unwrap().expected_noise_radius_m(), 200.0);
        assert_eq!(Epsilon::new(0.1).unwrap().expected_noise_radius_m(), 20.0);
    }

    #[test]
    fn descriptor_validation() {
        assert!(ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).is_ok());
        assert!(ParameterDescriptor::new("epsilon", 1.0, 1.0, ParameterScale::Linear).is_err());
        assert!(ParameterDescriptor::new("epsilon", 2.0, 1.0, ParameterScale::Linear).is_err());
        assert!(ParameterDescriptor::new("epsilon", 0.0, 1.0, ParameterScale::Logarithmic).is_err());
        assert!(ParameterDescriptor::new("epsilon", f64::NAN, 1.0, ParameterScale::Linear).is_err());
    }

    #[test]
    fn descriptor_accessors_and_contains() {
        let d = ParameterDescriptor::new("cell", 50.0, 1000.0, ParameterScale::Linear).unwrap();
        assert_eq!(d.name(), "cell");
        assert_eq!(d.min(), 50.0);
        assert_eq!(d.max(), 1000.0);
        assert_eq!(d.scale(), ParameterScale::Linear);
        assert!(d.contains(50.0) && d.contains(1000.0) && d.contains(300.0));
        assert!(!d.contains(10.0) && !d.contains(2000.0) && !d.contains(f64::NAN));
        assert!(d.to_string().contains("cell"));
    }

    #[test]
    fn linear_sweep_is_evenly_spaced() {
        let d = ParameterDescriptor::new("x", 0.0, 10.0, ParameterScale::Linear).unwrap();
        let sweep = d.sweep(6);
        assert_eq!(sweep, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        assert_eq!(d.sweep(0).len(), 2);
    }

    #[test]
    fn logarithmic_sweep_is_geometric() {
        // The paper's sweep: epsilon from 1e-4 to 1 on a log scale.
        let d =
            ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap();
        let sweep = d.sweep(5);
        assert_eq!(sweep.len(), 5);
        // Endpoints are pinned exactly, not merely within a tolerance.
        assert_eq!(sweep[0], 1e-4);
        assert_eq!(sweep[4], 1.0);
        // Constant ratio between consecutive points.
        let r1 = sweep[1] / sweep[0];
        let r2 = sweep[3] / sweep[2];
        assert!((r1 - r2).abs() < 1e-9);
        assert!((r1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_endpoints_are_exact_for_any_range() {
        // Ranges whose ratio/step is not a power of two drift off the exact
        // endpoint under `min * ratio.powf(1.0)` / `min + span * 1.0`.
        let ranges = [(1e-4, 1.0), (0.1, 0.3), (3e-3, 7e-1), (1.0, 9999.0), (2.5e-5, 0.123)];
        for &(min, max) in &ranges {
            for scale in [ParameterScale::Linear, ParameterScale::Logarithmic] {
                let d = ParameterDescriptor::new("p", min, max, scale).unwrap();
                for count in [2, 3, 7, 25, 100] {
                    let sweep = d.sweep(count);
                    assert_eq!(sweep[0], min, "{scale:?} {min}..{max} x{count}");
                    assert_eq!(*sweep.last().unwrap(), max, "{scale:?} {min}..{max} x{count}");
                    // Every sweep value lies inside the descriptor's range.
                    assert!(sweep.iter().all(|&v| d.contains(v)));
                }
            }
        }
    }

    #[test]
    fn display_and_cache_token_share_the_scale_token() {
        let log =
            ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap();
        let lin = ParameterDescriptor::new("cell", 50.0, 1000.0, ParameterScale::Linear).unwrap();
        // Lowercase prose, not the `{:?}` variant name.
        assert_eq!(log.to_string(), "epsilon ∈ [0.0001, 1] (log)");
        assert_eq!(lin.to_string(), "cell ∈ [50, 1000] (linear)");
        assert!(!log.to_string().contains("Logarithmic"));
        assert!(log.cache_token().ends_with(ParameterScale::Logarithmic.token()));
        assert!(lin.cache_token().ends_with(ParameterScale::Linear.token()));
        assert_eq!(ParameterScale::Linear.to_string(), "linear");
        assert_eq!(ParameterScale::Logarithmic.to_string(), "log");
    }

    #[test]
    fn defaults_fall_back_to_the_scale_aware_midpoint() {
        let log =
            ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap();
        assert!((log.default_value() - 0.01).abs() < 1e-12); // geometric midpoint
        let lin = ParameterDescriptor::new("cell", 100.0, 300.0, ParameterScale::Linear).unwrap();
        assert_eq!(lin.default_value(), 200.0);

        let pinned = log.with_default(0.05).unwrap();
        assert_eq!(pinned.default_value(), 0.05);
        // Qualifying the name keeps the pinned default.
        assert_eq!(pinned.with_name("1.epsilon").default_value(), 0.05);
        assert!(log.with_default(2.0).is_err());
        assert!(log.with_default(f64::NAN).is_err());
    }

    #[test]
    fn cache_token_distinguishes_configurations() {
        let a =
            ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap();
        let b =
            ParameterDescriptor::new("epsilon", 1e-3, 1.0, ParameterScale::Logarithmic).unwrap();
        let c = ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Linear).unwrap();
        assert_ne!(a.cache_token(), b.cache_token());
        assert_ne!(a.cache_token(), c.cache_token());
        assert_eq!(a.cache_token(), a.clone().cache_token());
        assert!(a.cache_token().contains("epsilon"));
    }
}
