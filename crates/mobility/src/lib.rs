//! # geopriv-mobility
//!
//! Mobility traces, datasets and synthetic workload generators for the
//! `geopriv` workspace.
//!
//! The paper's framework manipulates *mobility traces* — "a set of
//! timestamped locations reflecting the user's moving activity" — grouped
//! into per-user [`Trace`]s and multi-user [`Dataset`]s. Because the original
//! cabspotting San-Francisco taxi dataset is not redistributable, the
//! [`generator`] module provides seeded simulators (taxi fleet, commuters,
//! random waypoint) that reproduce the structural characteristics the
//! privacy/utility metrics depend on.
//!
//! * [`Record`], [`Trace`], [`Dataset`] — the data model. Since the
//!   struct-of-arrays refactor the dataset is a *columnar* store
//!   ([`ColumnarDataset`] is an alias): contiguous timestamp/latitude/
//!   longitude buffers plus a [`TraceSpan`] table and a per-user index,
//!   with zero-copy [`TraceView`]s preserving the trace-oriented API.
//! * [`io`] — CSV import/export (combined layout and cabspotting layout).
//! * [`properties`] — candidate dataset properties (the `d_j` of Equation 1).
//! * [`generator`] — synthetic workload generators.
//!
//! ## Example
//!
//! ```
//! use geopriv_mobility::generator::TaxiFleetBuilder;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let dataset = TaxiFleetBuilder::new()
//!     .drivers(3)
//!     .duration_hours(4.0)
//!     .build(&mut rng)?;
//!
//! assert_eq!(dataset.user_count(), 3);
//! for trace in &dataset {
//!     assert!(trace.travelled_distance().to_kilometers() > 1.0);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod error;
pub mod generator;
pub mod io;
pub mod properties;
pub mod record;
pub mod splitter;
pub mod trace;

pub use dataset::{ColumnarDataset, Dataset, DatasetBuilder, TraceSpan};
pub use error::MobilityError;
pub use properties::{DatasetProperties, TraceProperties};
pub use record::{Record, UserId};
pub use trace::{Trace, TraceView};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::dataset::{ColumnarDataset, Dataset, DatasetBuilder, TraceSpan};
    pub use crate::error::MobilityError;
    pub use crate::generator::{
        CityModel, CommuterBuilder, RandomWaypointBuilder, TaxiFleetBuilder,
    };
    pub use crate::properties::{DatasetProperties, TraceProperties};
    pub use crate::record::{Record, UserId};
    pub use crate::splitter;
    pub use crate::trace::{Trace, TraceView};
}
