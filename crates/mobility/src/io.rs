//! Reading and writing mobility datasets as CSV.
//!
//! The paper evaluates on the cabspotting San-Francisco taxi traces, which
//! are distributed as per-driver text files with `latitude longitude
//! occupancy unix-timestamp` lines. This module supports:
//!
//! * the **cabspotting layout** (space-separated, one file per driver), and
//! * a simpler **combined CSV layout** `user,timestamp,latitude,longitude`
//!   used by the examples and benches to persist synthetic datasets.

use crate::error::MobilityError;
use crate::record::{Record, UserId};
use crate::trace::Trace;
use crate::Dataset;
use geopriv_geo::{GeoPoint, Seconds};
use std::io::{BufRead, BufReader, Read, Write};

/// Header written/expected by the combined CSV layout.
pub const CSV_HEADER: &str = "user,timestamp,latitude,longitude";

/// Writes a dataset in the combined CSV layout to any writer.
///
/// Records are written per trace, in chronological order, with the header
/// [`CSV_HEADER`] on the first line. A `&mut Vec<u8>` or `&mut File` can be
/// passed directly.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_csv<W: Write>(dataset: &Dataset, mut writer: W) -> Result<(), MobilityError> {
    writeln!(writer, "{CSV_HEADER}")?;
    for trace in dataset {
        for record in trace {
            writeln!(
                writer,
                "{},{},{:.6},{:.6}",
                trace.user().value(),
                record.timestamp().as_f64(),
                record.location().latitude(),
                record.location().longitude()
            )?;
        }
    }
    Ok(())
}

/// Reads a dataset in the combined CSV layout from any reader.
///
/// The header line is optional. Empty lines are skipped. Records may appear
/// in any order; they are grouped by user and sorted by timestamp.
///
/// # Errors
///
/// Returns [`MobilityError::Parse`] for malformed lines and
/// [`MobilityError::EmptyDataset`] if no record was found.
pub fn read_csv<R: Read>(reader: R) -> Result<Dataset, MobilityError> {
    let reader = BufReader::new(reader);
    let mut per_user: std::collections::BTreeMap<u64, Vec<Record>> =
        std::collections::BTreeMap::new();

    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed == CSV_HEADER {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() != 4 {
            return Err(MobilityError::Parse {
                line: line_no,
                reason: format!("expected 4 comma-separated fields, got {}", fields.len()),
            });
        }
        let user: u64 = fields[0].parse().map_err(|_| MobilityError::Parse {
            line: line_no,
            reason: format!("invalid user id {:?}", fields[0]),
        })?;
        let timestamp: f64 = fields[1].parse().map_err(|_| MobilityError::Parse {
            line: line_no,
            reason: format!("invalid timestamp {:?}", fields[1]),
        })?;
        let lat: f64 = fields[2].parse().map_err(|_| MobilityError::Parse {
            line: line_no,
            reason: format!("invalid latitude {:?}", fields[2]),
        })?;
        let lon: f64 = fields[3].parse().map_err(|_| MobilityError::Parse {
            line: line_no,
            reason: format!("invalid longitude {:?}", fields[3]),
        })?;
        let location = GeoPoint::new(lat, lon)
            .map_err(|e| MobilityError::Parse { line: line_no, reason: e.to_string() })?;
        per_user.entry(user).or_default().push(Record::new(Seconds::new(timestamp), location));
    }

    let traces: Result<Vec<Trace>, MobilityError> = per_user
        .into_iter()
        .map(|(user, records)| Trace::from_unordered(UserId::new(user), records))
        .collect();
    Dataset::new(traces?)
}

/// Parses one driver's trace in the cabspotting layout.
///
/// Each line is `latitude longitude occupancy unix-timestamp`, newest first
/// in the original dataset; records are sorted by timestamp on load. The
/// occupancy flag is ignored (the paper's metrics do not use it).
///
/// # Errors
///
/// Returns [`MobilityError::Parse`] for malformed lines and
/// [`MobilityError::EmptyTrace`] if the input has no record.
pub fn read_cabspotting_trace<R: Read>(user: UserId, reader: R) -> Result<Trace, MobilityError> {
    let reader = BufReader::new(reader);
    let mut records = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(MobilityError::Parse {
                line: line_no,
                reason: format!("expected 4 whitespace-separated fields, got {}", fields.len()),
            });
        }
        let lat: f64 = fields[0].parse().map_err(|_| MobilityError::Parse {
            line: line_no,
            reason: format!("invalid latitude {:?}", fields[0]),
        })?;
        let lon: f64 = fields[1].parse().map_err(|_| MobilityError::Parse {
            line: line_no,
            reason: format!("invalid longitude {:?}", fields[1]),
        })?;
        let timestamp: f64 = fields[3].parse().map_err(|_| MobilityError::Parse {
            line: line_no,
            reason: format!("invalid timestamp {:?}", fields[3]),
        })?;
        let location = GeoPoint::new(lat, lon)
            .map_err(|e| MobilityError::Parse { line: line_no, reason: e.to_string() })?;
        records.push(Record::new(Seconds::new(timestamp), location));
    }
    Trace::from_unordered(user, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let t1 = Trace::new(
            UserId::new(1),
            vec![
                Record::new(Seconds::new(0.0), GeoPoint::new(37.7700, -122.4100).unwrap()),
                Record::new(Seconds::new(30.0), GeoPoint::new(37.7710, -122.4110).unwrap()),
            ],
        )
        .unwrap();
        let t2 = Trace::new(
            UserId::new(2),
            vec![Record::new(Seconds::new(10.0), GeoPoint::new(37.7800, -122.4200).unwrap())],
        )
        .unwrap();
        Dataset::new(vec![t1, t2]).unwrap()
    }

    #[test]
    fn csv_roundtrip_preserves_dataset() {
        let dataset = sample_dataset();
        let mut buffer = Vec::new();
        write_csv(&dataset, &mut buffer).unwrap();
        let text = String::from_utf8(buffer.clone()).unwrap();
        assert!(text.starts_with(CSV_HEADER));
        assert_eq!(text.lines().count(), 1 + dataset.record_count());

        let parsed = read_csv(buffer.as_slice()).unwrap();
        assert_eq!(parsed.len(), dataset.len());
        assert_eq!(parsed.record_count(), dataset.record_count());
        for (a, b) in dataset.paired_with(&parsed).unwrap() {
            assert_eq!(a.user(), b.user());
            for (ra, rb) in a.iter().zip(b.iter()) {
                assert!((ra.location().latitude() - rb.location().latitude()).abs() < 1e-6);
                assert!((ra.timestamp().as_f64() - rb.timestamp().as_f64()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn read_csv_without_header_and_with_blank_lines() {
        let text = "\n1,0,37.77,-122.41\n\n1,30,37.78,-122.42\n";
        let parsed = read_csv(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed.record_count(), 2);
    }

    #[test]
    fn read_csv_sorts_unordered_records() {
        let text = "1,100,37.78,-122.42\n1,0,37.77,-122.41\n";
        let parsed = read_csv(text.as_bytes()).unwrap();
        let trace = parsed.trace_at(0);
        assert_eq!(trace.first().timestamp().as_f64(), 0.0);
        assert_eq!(trace.last().timestamp().as_f64(), 100.0);
    }

    #[test]
    fn read_csv_reports_malformed_lines() {
        for (text, fragment) in [
            ("1,0,37.77", "4 comma-separated"),
            ("x,0,37.77,-122.41", "user id"),
            ("1,zzz,37.77,-122.41", "timestamp"),
            ("1,0,91.5,-122.41", "latitude"),
            ("1,0,37.77,abc", "longitude"),
        ] {
            let err = read_csv(text.as_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(fragment), "text {text:?} -> {msg}");
            assert!(msg.contains("line 1"), "text {text:?} -> {msg}");
        }
        assert!(matches!(read_csv("".as_bytes()), Err(MobilityError::EmptyDataset)));
    }

    #[test]
    fn cabspotting_layout_is_parsed_and_sorted() {
        // Newest-first like the original dataset; occupancy flag is ignored.
        let text = "37.75153 -122.39447 0 1213084687\n37.75149 -122.39447 1 1213084659\n";
        let trace = read_cabspotting_trace(UserId::new(5), text.as_bytes()).unwrap();
        assert_eq!(trace.user(), UserId::new(5));
        assert_eq!(trace.len(), 2);
        assert!(trace.first().timestamp() < trace.last().timestamp());
        assert!((trace.first().location().latitude() - 37.75149).abs() < 1e-9);
    }

    #[test]
    fn cabspotting_rejects_malformed_lines() {
        assert!(read_cabspotting_trace(UserId::new(1), "37.7 -122.4 0".as_bytes()).is_err());
        assert!(read_cabspotting_trace(UserId::new(1), "lat -122.4 0 123".as_bytes()).is_err());
        assert!(read_cabspotting_trace(UserId::new(1), "".as_bytes()).is_err());
    }
}
