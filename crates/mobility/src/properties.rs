//! Dataset properties (the `d_j` of Equation 1).
//!
//! Step 1 of the framework identifies "the properties of the dataset that are
//! likely to influence privacy and utility metrics (i.e., reflecting
//! impactful characteristics of users such as the uniqueness)". This module
//! computes a standard battery of candidate properties per user and per
//! dataset; the framework then ranks them with a PCA
//! (`geopriv_analysis::Pca`) and keeps the influential ones.

use crate::dataset::Dataset;
use crate::error::MobilityError;
use crate::trace::TraceView;
use geopriv_geo::{Grid, Meters};
use serde::{Deserialize, Serialize};

/// The candidate dataset properties computed for one trace (one user).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceProperties {
    /// Number of location records.
    pub record_count: f64,
    /// Observation duration in hours.
    pub duration_hours: f64,
    /// Total travelled distance in kilometers.
    pub travelled_km: f64,
    /// Radius of gyration in meters (spatial compactness).
    pub radius_of_gyration_m: f64,
    /// Mean speed in meters per second.
    pub mean_speed_mps: f64,
    /// Median sampling interval in seconds.
    pub sampling_interval_s: f64,
    /// Number of distinct grid cells visited (spatial coverage).
    pub visited_cells: f64,
    /// Shannon entropy (in bits) of the distribution of visits over grid
    /// cells — a proxy for the "uniqueness" of the user's mobility.
    pub visit_entropy_bits: f64,
}

impl TraceProperties {
    /// Names of the properties, in the order produced by [`TraceProperties::as_vector`].
    pub const NAMES: [&'static str; 8] = [
        "record_count",
        "duration_hours",
        "travelled_km",
        "radius_of_gyration_m",
        "mean_speed_mps",
        "sampling_interval_s",
        "visited_cells",
        "visit_entropy_bits",
    ];

    /// Computes the properties of a trace (given as a zero-copy columnar
    /// view; use [`Trace::view`](crate::Trace::view) for an owned trace) on
    /// the given coverage grid.
    pub fn of(trace: TraceView<'_>, grid: &Grid) -> Self {
        let histogram = grid.histogram(trace.iter().map(|r| r.location()));
        let total: usize = histogram.values().sum();
        let entropy = if total == 0 {
            0.0
        } else {
            histogram
                .values()
                .map(|&count| {
                    let p = count as f64 / total as f64;
                    -p * p.log2()
                })
                .sum()
        };
        Self {
            record_count: trace.len() as f64,
            duration_hours: trace.duration().to_hours(),
            travelled_km: trace.travelled_distance().to_kilometers(),
            radius_of_gyration_m: trace.radius_of_gyration().as_f64(),
            mean_speed_mps: trace.mean_speed(),
            sampling_interval_s: trace.median_sampling_interval().as_f64(),
            visited_cells: histogram.len() as f64,
            visit_entropy_bits: entropy,
        }
    }

    /// The properties as a feature vector (same order as [`TraceProperties::NAMES`]).
    pub fn as_vector(&self) -> Vec<f64> {
        vec![
            self.record_count,
            self.duration_hours,
            self.travelled_km,
            self.radius_of_gyration_m,
            self.mean_speed_mps,
            self.sampling_interval_s,
            self.visited_cells,
            self.visit_entropy_bits,
        ]
    }
}

/// The property matrix of a whole dataset: one row of [`TraceProperties`] per trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProperties {
    rows: Vec<TraceProperties>,
    cell_size: Meters,
}

impl DatasetProperties {
    /// Computes the per-trace properties of a dataset.
    ///
    /// `cell_size` controls the coverage grid used for the cell-count and
    /// entropy properties (200 m — a city block — by default elsewhere in the
    /// workspace).
    ///
    /// # Errors
    ///
    /// Propagates geospatial errors (degenerate bounding box, invalid cell size).
    pub fn compute(dataset: &Dataset, cell_size: Meters) -> Result<Self, MobilityError> {
        let bounds = dataset.bounding_box()?.expanded(0.05);
        let grid = Grid::new(bounds, cell_size)?;
        let rows = dataset.iter().map(|t| TraceProperties::of(t, &grid)).collect();
        Ok(Self { rows, cell_size })
    }

    /// The per-trace property rows, in dataset (user id) order.
    pub fn rows(&self) -> &[TraceProperties] {
        &self.rows
    }

    /// The grid cell size used for the coverage-based properties.
    pub fn cell_size(&self) -> Meters {
        self.cell_size
    }

    /// The property matrix as rows of feature vectors, suitable for
    /// `geopriv_analysis::Pca::fit`.
    pub fn as_matrix(&self) -> Vec<Vec<f64>> {
        self.rows.iter().map(TraceProperties::as_vector).collect()
    }

    /// The mean of each property over all traces.
    pub fn means(&self) -> Vec<f64> {
        let matrix = self.as_matrix();
        let n = matrix.len() as f64;
        let width = TraceProperties::NAMES.len();
        (0..width).map(|j| matrix.iter().map(|row| row[j]).sum::<f64>() / n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, UserId};
    use crate::trace::Trace;
    use geopriv_geo::{GeoPoint, Seconds};

    fn gp(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn moving_trace(user: u64) -> Trace {
        let records: Vec<Record> = (0..60)
            .map(|i| {
                Record::new(
                    Seconds::new(i as f64 * 30.0),
                    gp(37.75 + i as f64 * 0.0005, -122.45 + i as f64 * 0.0005),
                )
            })
            .collect();
        Trace::new(UserId::new(user), records).unwrap()
    }

    fn stationary_trace(user: u64) -> Trace {
        let records: Vec<Record> = (0..60)
            .map(|i| Record::new(Seconds::new(i as f64 * 30.0), gp(37.76, -122.44)))
            .collect();
        Trace::new(UserId::new(user), records).unwrap()
    }

    #[test]
    fn properties_reflect_mobility_behaviour() {
        let dataset = Dataset::new(vec![moving_trace(1), stationary_trace(2)]).unwrap();
        let props = DatasetProperties::compute(&dataset, Meters::new(200.0)).unwrap();
        assert_eq!(props.rows().len(), 2);
        assert_eq!(props.cell_size().as_f64(), 200.0);

        let moving = &props.rows()[0];
        let stationary = &props.rows()[1];

        assert_eq!(moving.record_count, 60.0);
        assert!((moving.duration_hours - 59.0 * 30.0 / 3600.0).abs() < 1e-9);
        assert!(moving.travelled_km > stationary.travelled_km);
        assert!(moving.radius_of_gyration_m > stationary.radius_of_gyration_m);
        assert!(moving.mean_speed_mps > 0.0);
        assert_eq!(stationary.mean_speed_mps, 0.0);
        assert!(moving.visited_cells > stationary.visited_cells);
        assert!(moving.visit_entropy_bits > stationary.visit_entropy_bits);
        assert_eq!(stationary.visited_cells, 1.0);
        assert_eq!(stationary.visit_entropy_bits, 0.0);
        assert_eq!(moving.sampling_interval_s, 30.0);
    }

    #[test]
    fn matrix_shape_matches_names() {
        let dataset = Dataset::new(vec![moving_trace(1), stationary_trace(2)]).unwrap();
        let props = DatasetProperties::compute(&dataset, Meters::new(200.0)).unwrap();
        let matrix = props.as_matrix();
        assert_eq!(matrix.len(), 2);
        assert_eq!(matrix[0].len(), TraceProperties::NAMES.len());
        let means = props.means();
        assert_eq!(means.len(), TraceProperties::NAMES.len());
        assert!((means[0] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn entropy_of_uniform_visits_is_log2_of_cells() {
        // A trace visiting exactly two far-apart cells the same number of times
        // has entropy 1 bit.
        let a = gp(37.75, -122.45);
        let b = gp(37.78, -122.40);
        let records: Vec<Record> = (0..10)
            .map(|i| Record::new(Seconds::new(i as f64 * 60.0), if i % 2 == 0 { a } else { b }))
            .collect();
        let trace = Trace::new(UserId::new(1), records).unwrap();
        let dataset = Dataset::new(vec![trace]).unwrap();
        let props = DatasetProperties::compute(&dataset, Meters::new(200.0)).unwrap();
        let row = &props.rows()[0];
        assert_eq!(row.visited_cells, 2.0);
        assert!((row.visit_entropy_bits - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_cell_size_is_rejected() {
        let dataset = Dataset::new(vec![moving_trace(1)]).unwrap();
        assert!(DatasetProperties::compute(&dataset, Meters::new(0.0)).is_err());
    }
}
