//! Multi-user mobility datasets.

use crate::error::MobilityError;
use crate::record::UserId;
use crate::trace::Trace;
use geopriv_geo::BoundingBox;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A collection of mobility traces, one per user.
///
/// This is the object the paper's framework protects and evaluates as a
/// whole: "using Geo-indistinguishability to protect a whole dataset
/// containing mobility traces of taxi drivers around San Francisco".
///
/// # Examples
///
/// ```
/// use geopriv_mobility::{Dataset, Record, Trace, UserId};
/// use geopriv_geo::{GeoPoint, Seconds};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = Trace::new(
///     UserId::new(1),
///     vec![Record::new(Seconds::new(0.0), GeoPoint::new(37.77, -122.41)?)],
/// )?;
/// let dataset = Dataset::new(vec![trace])?;
/// assert_eq!(dataset.user_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    traces: Vec<Trace>,
}

impl Dataset {
    /// Creates a dataset from a list of traces.
    ///
    /// Traces are sorted by user id. If several traces share a user id they
    /// are kept as distinct traces (e.g. one trace per day for the same
    /// driver).
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::EmptyDataset`] if `traces` is empty.
    pub fn new(mut traces: Vec<Trace>) -> Result<Self, MobilityError> {
        if traces.is_empty() {
            return Err(MobilityError::EmptyDataset);
        }
        traces.sort_by_key(|t| t.user());
        Ok(Self { traces })
    }

    /// The traces, sorted by user id.
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Iterates over the traces.
    pub fn iter(&self) -> std::slice::Iter<'_, Trace> {
        self.traces.iter()
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Returns `true` if the dataset has no traces (never the case for a
    /// successfully constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Number of distinct users.
    pub fn user_count(&self) -> usize {
        let mut users: Vec<UserId> = self.traces.iter().map(|t| t.user()).collect();
        users.dedup();
        users.len()
    }

    /// Total number of records across all traces.
    pub fn record_count(&self) -> usize {
        self.traces.iter().map(|t| t.len()).sum()
    }

    /// The traces of a given user.
    pub fn traces_of(&self, user: UserId) -> Vec<&Trace> {
        self.traces.iter().filter(|t| t.user() == user).collect()
    }

    /// The distinct user ids, in increasing order.
    pub fn users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.traces.iter().map(|t| t.user()).collect();
        users.dedup();
        users
    }

    /// The smallest bounding box containing every record of every trace.
    ///
    /// # Errors
    ///
    /// Propagates geospatial errors for degenerate datasets.
    pub fn bounding_box(&self) -> Result<BoundingBox, MobilityError> {
        Ok(BoundingBox::enclosing(self.traces.iter().flat_map(|t| t.iter().map(|r| r.location())))?)
    }

    /// Applies a fallible transformation to every trace, producing a new dataset.
    ///
    /// The typical use is protecting every trace with an LPPM. The
    /// transformation must preserve the number of traces.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by `f`.
    pub fn map_traces<F>(&self, mut f: F) -> Result<Dataset, MobilityError>
    where
        F: FnMut(&Trace) -> Result<Trace, MobilityError>,
    {
        let traces: Result<Vec<Trace>, MobilityError> = self.traces.iter().map(&mut f).collect();
        Dataset::new(traces?)
    }

    /// Keeps only the traces for which the predicate returns `true`.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::EmptyDataset`] if no trace survives.
    pub fn filter<F>(&self, mut predicate: F) -> Result<Dataset, MobilityError>
    where
        F: FnMut(&Trace) -> bool,
    {
        Dataset::new(self.traces.iter().filter(|t| predicate(t)).cloned().collect())
    }

    /// Keeps only the first `n` traces (by user id order).
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::EmptyDataset`] if `n == 0`.
    pub fn take(&self, n: usize) -> Result<Dataset, MobilityError> {
        Dataset::new(self.traces.iter().take(n).cloned().collect())
    }

    /// Groups the record counts per user (useful for quick summaries).
    pub fn records_per_user(&self) -> BTreeMap<UserId, usize> {
        let mut counts = BTreeMap::new();
        for t in &self.traces {
            *counts.entry(t.user()).or_insert(0) += t.len();
        }
        counts
    }

    /// Pairs each trace of this dataset with the trace at the same position
    /// in `other`.
    ///
    /// The paper's metrics always compare an *actual* dataset with its
    /// *protected* counterpart; this helper validates that the two datasets
    /// are structurally compatible (same number of traces, same users in the
    /// same order) and returns the aligned pairs.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::InvalidParameter`] if the datasets are not aligned.
    pub fn paired_with<'a>(
        &'a self,
        other: &'a Dataset,
    ) -> Result<Vec<(&'a Trace, &'a Trace)>, MobilityError> {
        if self.traces.len() != other.traces.len() {
            return Err(MobilityError::InvalidParameter {
                name: "other",
                reason: format!(
                    "datasets have different sizes: {} vs {}",
                    self.traces.len(),
                    other.traces.len()
                ),
            });
        }
        for (a, b) in self.traces.iter().zip(&other.traces) {
            if a.user() != b.user() {
                return Err(MobilityError::InvalidParameter {
                    name: "other",
                    reason: format!("user mismatch: {} vs {}", a.user(), b.user()),
                });
            }
        }
        Ok(self.traces.iter().zip(other.traces.iter()).collect())
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Trace;
    type IntoIter = std::slice::Iter<'a, Trace>;

    fn into_iter(self) -> Self::IntoIter {
        self.traces.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use geopriv_geo::{GeoPoint, Seconds};

    fn gp(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn trace(user: u64, base_lat: f64) -> Trace {
        Trace::new(
            UserId::new(user),
            vec![
                Record::new(Seconds::new(0.0), gp(base_lat, -122.41)),
                Record::new(Seconds::new(60.0), gp(base_lat + 0.01, -122.42)),
            ],
        )
        .unwrap()
    }

    fn dataset() -> Dataset {
        Dataset::new(vec![trace(2, 37.76), trace(1, 37.77), trace(3, 37.78)]).unwrap()
    }

    #[test]
    fn construction_sorts_by_user_and_rejects_empty() {
        let d = dataset();
        let users: Vec<u64> = d.iter().map(|t| t.user().value()).collect();
        assert_eq!(users, vec![1, 2, 3]);
        assert!(matches!(Dataset::new(vec![]), Err(MobilityError::EmptyDataset)));
    }

    #[test]
    fn counting_accessors() {
        let d = dataset();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.user_count(), 3);
        assert_eq!(d.record_count(), 6);
        assert_eq!(d.users(), vec![UserId::new(1), UserId::new(2), UserId::new(3)]);
        assert_eq!(d.records_per_user()[&UserId::new(2)], 2);
        assert_eq!((&d).into_iter().count(), 3);
    }

    #[test]
    fn multiple_traces_per_user_are_kept() {
        let d = Dataset::new(vec![trace(1, 37.76), trace(1, 37.78)]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.user_count(), 1);
        assert_eq!(d.traces_of(UserId::new(1)).len(), 2);
    }

    #[test]
    fn bounding_box_covers_all_traces() {
        let d = dataset();
        let b = d.bounding_box().unwrap();
        for t in &d {
            for r in t {
                assert!(b.contains(r.location()));
            }
        }
    }

    #[test]
    fn map_traces_preserves_structure_and_propagates_errors() {
        let d = dataset();
        let shifted = d
            .map_traces(|t| {
                let locations = t
                    .locations()
                    .into_iter()
                    .map(|l| GeoPoint::clamped(l.latitude() + 0.001, l.longitude()))
                    .collect();
                t.with_locations(locations)
            })
            .unwrap();
        assert_eq!(shifted.len(), d.len());
        assert_eq!(shifted.users(), d.users());

        let err = d.map_traces(|_| Err(MobilityError::EmptyTrace));
        assert!(err.is_err());
    }

    #[test]
    fn filter_and_take() {
        let d = dataset();
        let only_user_2 = d.filter(|t| t.user() == UserId::new(2)).unwrap();
        assert_eq!(only_user_2.len(), 1);
        assert!(d.filter(|_| false).is_err());

        let first_two = d.take(2).unwrap();
        assert_eq!(first_two.users(), vec![UserId::new(1), UserId::new(2)]);
        assert!(d.take(0).is_err());
        assert_eq!(d.take(100).unwrap().len(), 3);
    }

    #[test]
    fn pairing_validates_alignment() {
        let d = dataset();
        let pairs = d.paired_with(&d).unwrap();
        assert_eq!(pairs.len(), 3);
        for (a, b) in pairs {
            assert_eq!(a.user(), b.user());
        }

        let smaller = d.take(2).unwrap();
        assert!(d.paired_with(&smaller).is_err());

        let other_users =
            Dataset::new(vec![trace(7, 37.76), trace(8, 37.77), trace(9, 37.78)]).unwrap();
        assert!(d.paired_with(&other_users).is_err());
    }
}
