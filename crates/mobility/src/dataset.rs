//! Multi-user mobility datasets, stored as one columnar (struct-of-arrays) core.

use crate::error::MobilityError;
use crate::record::UserId;
use crate::trace::{Trace, TraceView};
use geopriv_geo::{BoundingBox, GeoPoint, Seconds};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Range;

/// Span of one trace inside the dataset's columnar buffers.
///
/// The dataset stores all records of all traces in three contiguous `f64`
/// columns; a span locates one trace: its owning user plus the half-open
/// record range `start .. start + len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSpan {
    user: UserId,
    start: usize,
    len: usize,
}

impl TraceSpan {
    /// The user the spanned trace belongs to.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// First record index of the span in the dataset columns.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of records in the span.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the span holds no records (never the case for spans
    /// of a successfully constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Per-user entry of the dataset's span index: the contiguous run of spans
/// (and records) belonging to one user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct UserSpans {
    user: UserId,
    first_span: usize,
    span_count: usize,
    records: usize,
}

/// A collection of mobility traces, one or more per user, stored columnar.
///
/// This is the object the paper's framework protects and evaluates as a
/// whole: "using Geo-indistinguishability to protect a whole dataset
/// containing mobility traces of taxi drivers around San Francisco".
///
/// # Columnar layout
///
/// All records live in three contiguous `f64` buffers (timestamps,
/// latitudes, longitudes). A [`TraceSpan`] table maps each trace to its
/// record range, and a per-user index maps each user to her contiguous run
/// of spans (traces are sorted by user id at construction). Trace access
/// hands out zero-copy [`TraceView`]s over the buffers, so the row-oriented
/// API survives while hot loops scan cache-friendly slices:
///
/// * [`Dataset::iter`] / [`Dataset::traces`] — iterate [`TraceView`]s;
/// * [`Dataset::traces_of`] — per-user lookup served from the index
///   (binary search, no dataset scan);
/// * [`Dataset::builder`] — append protected columns trace by trace without
///   materializing intermediate `Vec<Record>`s.
///
/// [`ColumnarDataset`] is an alias for this type, naming the storage scheme
/// explicitly.
///
/// # Examples
///
/// ```
/// use geopriv_mobility::{Dataset, Record, Trace, UserId};
/// use geopriv_geo::{GeoPoint, Seconds};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = Trace::new(
///     UserId::new(1),
///     vec![Record::new(Seconds::new(0.0), GeoPoint::new(37.77, -122.41)?)],
/// )?;
/// let dataset = Dataset::new(vec![trace])?;
/// assert_eq!(dataset.user_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    t: Vec<f64>,
    lat: Vec<f64>,
    lon: Vec<f64>,
    spans: Vec<TraceSpan>,
    user_index: Vec<UserSpans>,
}

/// Alias naming the columnar storage scheme of [`Dataset`] explicitly.
///
/// Since the struct-of-arrays refactor every `Dataset` *is* columnar; the
/// alias exists so code written against the storage layer can say what it
/// means.
pub type ColumnarDataset = Dataset;

fn build_user_index(spans: &[TraceSpan]) -> Vec<UserSpans> {
    let mut index: Vec<UserSpans> = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        match index.last_mut() {
            Some(entry) if entry.user == span.user => {
                entry.span_count += 1;
                entry.records += span.len;
            }
            _ => index.push(UserSpans {
                user: span.user,
                first_span: i,
                span_count: 1,
                records: span.len,
            }),
        }
    }
    index
}

impl Dataset {
    /// Creates a dataset from a list of traces.
    ///
    /// Traces are sorted by user id (stable, so several traces of the same
    /// user keep their relative order — e.g. one trace per day for the same
    /// driver) and their columns concatenated into the dataset buffers.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::EmptyDataset`] if `traces` is empty.
    pub fn new(mut traces: Vec<Trace>) -> Result<Self, MobilityError> {
        if traces.is_empty() {
            return Err(MobilityError::EmptyDataset);
        }
        traces.sort_by_key(|t| t.user());
        let records: usize = traces.iter().map(Trace::len).sum();
        let mut builder = DatasetBuilder::with_capacity(traces.len(), records);
        for trace in &traces {
            builder.push_view(trace.view());
        }
        builder.finish()
    }

    /// Starts an incremental builder, the columnar way to assemble a dataset
    /// trace by trace (used by LPPM `protect_dataset` to write protected
    /// columns directly).
    pub fn builder() -> DatasetBuilder {
        DatasetBuilder::new()
    }

    /// The view of the `i`-th trace (traces are sorted by user id).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn trace_at(&self, i: usize) -> TraceView<'_> {
        let span = &self.spans[i];
        let range = span.start..span.start + span.len;
        TraceView {
            user: span.user,
            t: &self.t[range.clone()],
            lat: &self.lat[range.clone()],
            lon: &self.lon[range],
        }
    }

    /// Iterates over the traces as zero-copy views, sorted by user id.
    pub fn traces(&self) -> TraceViews<'_> {
        TraceViews { dataset: self, next: 0 }
    }

    /// Iterates over the traces as zero-copy views.
    pub fn iter(&self) -> TraceViews<'_> {
        self.traces()
    }

    /// The span table: one entry per trace, sorted by user id.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// The timestamp column of the whole dataset, in seconds.
    pub fn timestamps(&self) -> &[f64] {
        &self.t
    }

    /// The latitude column of the whole dataset, in decimal degrees.
    pub fn latitudes(&self) -> &[f64] {
        &self.lat
    }

    /// The longitude column of the whole dataset, in decimal degrees.
    pub fn longitudes(&self) -> &[f64] {
        &self.lon
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Returns `true` if the dataset has no traces (never the case for a
    /// successfully constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of distinct users (served from the per-user index, O(1)).
    pub fn user_count(&self) -> usize {
        self.user_index.len()
    }

    /// Total number of records across all traces (the column length, O(1)).
    pub fn record_count(&self) -> usize {
        self.t.len()
    }

    /// The traces of a given user, served from the per-user span index
    /// (binary search + contiguous span run; no dataset scan).
    pub fn traces_of(&self, user: UserId) -> Vec<TraceView<'_>> {
        match self.user_index.binary_search_by_key(&user, |e| e.user) {
            Ok(i) => {
                let entry = &self.user_index[i];
                (entry.first_span..entry.first_span + entry.span_count)
                    .map(|s| self.trace_at(s))
                    .collect()
            }
            Err(_) => Vec::new(),
        }
    }

    /// The distinct user ids, in increasing order (served from the index).
    pub fn users(&self) -> Vec<UserId> {
        self.user_index.iter().map(|e| e.user).collect()
    }

    /// Materializes every trace into an owned `Vec<Trace>` (row layout).
    ///
    /// This is the inverse of [`Dataset::new`]; useful for merging datasets
    /// or round-tripping through the row representation.
    pub fn to_traces(&self) -> Vec<Trace> {
        self.iter().map(|v| v.to_trace()).collect()
    }

    /// The smallest bounding box containing every record of every trace.
    ///
    /// # Errors
    ///
    /// Propagates geospatial errors for degenerate datasets.
    pub fn bounding_box(&self) -> Result<BoundingBox, MobilityError> {
        Ok(BoundingBox::enclosing(
            self.lat.iter().zip(&self.lon).map(|(&la, &lo)| GeoPoint::from_stored(la, lo)),
        )?)
    }

    /// Applies a fallible transformation to every trace, producing a new dataset.
    ///
    /// The typical use is protecting every trace with an LPPM. The
    /// transformation must preserve the number of traces.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by `f`.
    pub fn map_traces<F>(&self, mut f: F) -> Result<Dataset, MobilityError>
    where
        F: FnMut(TraceView<'_>) -> Result<Trace, MobilityError>,
    {
        let traces: Result<Vec<Trace>, MobilityError> = self.iter().map(&mut f).collect();
        Dataset::new(traces?)
    }

    /// Keeps only the traces for which the predicate returns `true`.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::EmptyDataset`] if no trace survives.
    pub fn filter<F>(&self, mut predicate: F) -> Result<Dataset, MobilityError>
    where
        F: FnMut(TraceView<'_>) -> bool,
    {
        let mut builder = DatasetBuilder::new();
        for view in self.iter().filter(|v| predicate(*v)) {
            builder.push_view(view);
        }
        builder.finish()
    }

    /// Keeps only the first `n` traces (by user id order).
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::EmptyDataset`] if `n == 0`.
    pub fn take(&self, n: usize) -> Result<Dataset, MobilityError> {
        let n = n.min(self.len());
        if n == 0 {
            return Err(MobilityError::EmptyDataset);
        }
        let records = self.spans[n - 1].start + self.spans[n - 1].len;
        let mut builder = DatasetBuilder::with_capacity(n, records);
        for i in 0..n {
            builder.push_view(self.trace_at(i));
        }
        builder.finish()
    }

    /// Copies out the sub-dataset of a contiguous range of *users* (indices
    /// into [`Dataset::users`], half-open).
    ///
    /// Because traces are sorted by user, a user range maps to one contiguous
    /// span/record range; the copy is three `memcpy`-style slice copies of
    /// O(shard) size. This is the primitive behind per-user sharded sweep
    /// execution.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::InvalidParameter`] if the range is empty or
    /// out of bounds.
    pub fn user_slice(&self, users: Range<usize>) -> Result<Dataset, MobilityError> {
        if users.start >= users.end || users.end > self.user_index.len() {
            return Err(MobilityError::InvalidParameter {
                name: "users",
                reason: format!(
                    "user range {}..{} invalid for {} users",
                    users.start,
                    users.end,
                    self.user_index.len()
                ),
            });
        }
        let first = &self.user_index[users.start];
        let last = &self.user_index[users.end - 1];
        let span_range = first.first_span..last.first_span + last.span_count;
        let record_start = self.spans[span_range.start].start;
        let record_end = {
            let s = &self.spans[span_range.end - 1];
            s.start + s.len
        };
        let spans: Vec<TraceSpan> = self.spans[span_range]
            .iter()
            .map(|s| TraceSpan { user: s.user, start: s.start - record_start, len: s.len })
            .collect();
        let user_index = build_user_index(&spans);
        Ok(Dataset {
            t: self.t[record_start..record_end].to_vec(),
            lat: self.lat[record_start..record_end].to_vec(),
            lon: self.lon[record_start..record_end].to_vec(),
            spans,
            user_index,
        })
    }

    /// Groups the record counts per user, served from the per-user index.
    pub fn records_per_user(&self) -> BTreeMap<UserId, usize> {
        self.user_index.iter().map(|e| (e.user, e.records)).collect()
    }

    /// Pairs each trace of this dataset with the trace at the same position
    /// in `other`.
    ///
    /// The paper's metrics always compare an *actual* dataset with its
    /// *protected* counterpart; this helper validates that the two datasets
    /// are structurally compatible (same number of traces, same users in the
    /// same order) and returns the aligned view pairs.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::InvalidParameter`] if the datasets are not aligned.
    pub fn paired_with<'a>(
        &'a self,
        other: &'a Dataset,
    ) -> Result<Vec<(TraceView<'a>, TraceView<'a>)>, MobilityError> {
        if self.spans.len() != other.spans.len() {
            return Err(MobilityError::InvalidParameter {
                name: "other",
                reason: format!(
                    "datasets have different sizes: {} vs {}",
                    self.spans.len(),
                    other.spans.len()
                ),
            });
        }
        for (a, b) in self.spans.iter().zip(&other.spans) {
            if a.user != b.user {
                return Err(MobilityError::InvalidParameter {
                    name: "other",
                    reason: format!("user mismatch: {} vs {}", a.user, b.user),
                });
            }
        }
        Ok(self.iter().zip(other.iter()).collect())
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = TraceView<'a>;
    type IntoIter = TraceViews<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.traces()
    }
}

/// Iterator over the trace views of a [`Dataset`], in user-id order.
#[derive(Debug, Clone)]
pub struct TraceViews<'a> {
    dataset: &'a Dataset,
    next: usize,
}

impl<'a> Iterator for TraceViews<'a> {
    type Item = TraceView<'a>;

    fn next(&mut self) -> Option<TraceView<'a>> {
        if self.next >= self.dataset.len() {
            return None;
        }
        let view = self.dataset.trace_at(self.next);
        self.next += 1;
        Some(view)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.dataset.len() - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for TraceViews<'_> {}

/// Incremental columnar dataset assembly.
///
/// Protected datasets are produced trace by trace; the builder appends each
/// trace's records straight into the shared columns and records its span, so
/// no intermediate per-trace `Vec<Record>` allocation is needed. Traces must
/// be pushed in non-decreasing user-id order (LPPMs iterate the — already
/// sorted — actual dataset, so this holds naturally); [`DatasetBuilder::finish`]
/// rejects out-of-order pushes.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    t: Vec<f64>,
    lat: Vec<f64>,
    lon: Vec<f64>,
    spans: Vec<TraceSpan>,
    /// Start offset of the trace currently being streamed, if any.
    open: Option<(UserId, usize)>,
}

impl DatasetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with pre-allocated capacity.
    pub fn with_capacity(traces: usize, records: usize) -> Self {
        Self {
            t: Vec::with_capacity(records),
            lat: Vec::with_capacity(records),
            lon: Vec::with_capacity(records),
            spans: Vec::with_capacity(traces),
            open: None,
        }
    }

    /// Appends a whole trace view (copies its columns).
    ///
    /// # Panics
    ///
    /// Panics if a streamed trace is still open (see [`DatasetBuilder::begin_trace`]).
    pub fn push_view(&mut self, view: TraceView<'_>) {
        assert!(self.open.is_none(), "finish the open streamed trace before pushing");
        let start = self.t.len();
        self.t.extend_from_slice(view.timestamps());
        self.lat.extend_from_slice(view.latitudes());
        self.lon.extend_from_slice(view.longitudes());
        self.spans.push(TraceSpan { user: view.user(), start, len: view.len() });
    }

    /// Appends a whole owned trace (copies its columns).
    pub fn push_trace(&mut self, trace: &Trace) {
        self.push_view(trace.view());
    }

    /// Starts streaming the records of one trace.
    ///
    /// Follow with [`DatasetBuilder::push_record`] calls and close the trace
    /// with [`DatasetBuilder::finish_trace`].
    ///
    /// # Panics
    ///
    /// Panics if another streamed trace is still open.
    pub fn begin_trace(&mut self, user: UserId) {
        assert!(self.open.is_none(), "finish the open streamed trace before starting another");
        self.open = Some((user, self.t.len()));
    }

    /// Appends one record to the trace opened by [`DatasetBuilder::begin_trace`].
    ///
    /// # Panics
    ///
    /// Panics if no streamed trace is open.
    pub fn push_record(&mut self, timestamp: Seconds, location: GeoPoint) {
        assert!(self.open.is_some(), "begin_trace before pushing records");
        self.t.push(timestamp.as_f64());
        self.lat.push(location.latitude());
        self.lon.push(location.longitude());
    }

    /// Closes the trace opened by [`DatasetBuilder::begin_trace`], validating
    /// it the same way [`Trace::new`] does.
    ///
    /// # Errors
    ///
    /// * [`MobilityError::EmptyTrace`] if no record was pushed.
    /// * [`MobilityError::UnorderedRecords`] if timestamps are not non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if no streamed trace is open.
    pub fn finish_trace(&mut self) -> Result<(), MobilityError> {
        let (user, start) = self.open.take().expect("begin_trace before finish_trace");
        let len = self.t.len() - start;
        if len == 0 {
            return Err(MobilityError::EmptyTrace);
        }
        for (i, pair) in self.t[start..].windows(2).enumerate() {
            if pair[1] < pair[0] {
                return Err(MobilityError::UnorderedRecords { index: i + 1 });
            }
        }
        self.spans.push(TraceSpan { user, start, len });
        Ok(())
    }

    /// Total number of records appended so far.
    pub fn record_count(&self) -> usize {
        self.t.len()
    }

    /// Seals the builder into a dataset.
    ///
    /// # Errors
    ///
    /// * [`MobilityError::EmptyDataset`] if no trace was pushed.
    /// * [`MobilityError::InvalidParameter`] if traces were pushed out of
    ///   user-id order or a streamed trace was left open.
    pub fn finish(self) -> Result<Dataset, MobilityError> {
        if self.open.is_some() {
            return Err(MobilityError::InvalidParameter {
                name: "builder",
                reason: "a streamed trace was left open".to_string(),
            });
        }
        if self.spans.is_empty() {
            return Err(MobilityError::EmptyDataset);
        }
        if self.spans.windows(2).any(|w| w[1].user < w[0].user) {
            return Err(MobilityError::InvalidParameter {
                name: "builder",
                reason: "traces must be pushed in non-decreasing user-id order".to_string(),
            });
        }
        let user_index = build_user_index(&self.spans);
        Ok(Dataset { t: self.t, lat: self.lat, lon: self.lon, spans: self.spans, user_index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use geopriv_geo::{GeoPoint, Seconds};

    fn gp(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn trace(user: u64, base_lat: f64) -> Trace {
        Trace::new(
            UserId::new(user),
            vec![
                Record::new(Seconds::new(0.0), gp(base_lat, -122.41)),
                Record::new(Seconds::new(60.0), gp(base_lat + 0.01, -122.42)),
            ],
        )
        .unwrap()
    }

    fn dataset() -> Dataset {
        Dataset::new(vec![trace(2, 37.76), trace(1, 37.77), trace(3, 37.78)]).unwrap()
    }

    #[test]
    fn construction_sorts_by_user_and_rejects_empty() {
        let d = dataset();
        let users: Vec<u64> = d.iter().map(|t| t.user().value()).collect();
        assert_eq!(users, vec![1, 2, 3]);
        assert!(matches!(Dataset::new(vec![]), Err(MobilityError::EmptyDataset)));
    }

    #[test]
    fn counting_accessors() {
        let d = dataset();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.user_count(), 3);
        assert_eq!(d.record_count(), 6);
        assert_eq!(d.users(), vec![UserId::new(1), UserId::new(2), UserId::new(3)]);
        assert_eq!(d.records_per_user()[&UserId::new(2)], 2);
        assert_eq!((&d).into_iter().count(), 3);
    }

    #[test]
    fn spans_cover_the_columns_exactly() {
        let d = dataset();
        assert_eq!(d.timestamps().len(), d.record_count());
        assert_eq!(d.latitudes().len(), d.record_count());
        assert_eq!(d.longitudes().len(), d.record_count());
        let mut expected_start = 0;
        for span in d.spans() {
            assert_eq!(span.start(), expected_start);
            assert!(!span.is_empty());
            expected_start += span.len();
        }
        assert_eq!(expected_start, d.record_count());
    }

    #[test]
    fn index_served_lookups_match_a_naive_scan() {
        // Regression guard for the PR-6 satellite: `traces_of`, `users` and
        // `records_per_user` are served from the per-user span index; they
        // must keep returning exactly what the old full scans returned, on
        // every call.
        let d =
            Dataset::new(vec![trace(2, 37.76), trace(1, 37.77), trace(3, 37.78), trace(2, 37.80)])
                .unwrap();
        for _ in 0..2 {
            // users(): scan + dedup over all traces.
            let mut scanned: Vec<UserId> = d.iter().map(|t| t.user()).collect();
            scanned.dedup();
            assert_eq!(d.users(), scanned);
            // traces_of(): O(n) filter scan.
            for user in d.users() {
                let scanned: Vec<Vec<Record>> =
                    d.iter().filter(|t| t.user() == user).map(|t| t.iter().collect()).collect();
                let indexed: Vec<Vec<Record>> =
                    d.traces_of(user).iter().map(|t| t.iter().collect()).collect();
                assert_eq!(indexed, scanned);
            }
            assert!(d.traces_of(UserId::new(99)).is_empty());
            // records_per_user(): BTreeMap accumulation scan.
            let mut counts = BTreeMap::new();
            for t in &d {
                *counts.entry(t.user()).or_insert(0) += t.len();
            }
            assert_eq!(d.records_per_user(), counts);
        }
    }

    #[test]
    fn multiple_traces_per_user_are_kept() {
        let d = Dataset::new(vec![trace(1, 37.76), trace(1, 37.78)]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.user_count(), 1);
        assert_eq!(d.traces_of(UserId::new(1)).len(), 2);
    }

    #[test]
    fn bounding_box_covers_all_traces() {
        let d = dataset();
        let b = d.bounding_box().unwrap();
        for t in &d {
            for r in t {
                assert!(b.contains(r.location()));
            }
        }
    }

    #[test]
    fn map_traces_preserves_structure_and_propagates_errors() {
        let d = dataset();
        let shifted = d
            .map_traces(|t| {
                let locations = t
                    .locations()
                    .into_iter()
                    .map(|l| GeoPoint::clamped(l.latitude() + 0.001, l.longitude()))
                    .collect();
                t.to_trace().with_locations(locations)
            })
            .unwrap();
        assert_eq!(shifted.len(), d.len());
        assert_eq!(shifted.users(), d.users());

        let err = d.map_traces(|_| Err(MobilityError::EmptyTrace));
        assert!(err.is_err());
    }

    #[test]
    fn filter_and_take() {
        let d = dataset();
        let only_user_2 = d.filter(|t| t.user() == UserId::new(2)).unwrap();
        assert_eq!(only_user_2.len(), 1);
        assert!(d.filter(|_| false).is_err());

        let first_two = d.take(2).unwrap();
        assert_eq!(first_two.users(), vec![UserId::new(1), UserId::new(2)]);
        assert!(d.take(0).is_err());
        assert_eq!(d.take(100).unwrap().len(), 3);
    }

    #[test]
    fn user_slice_copies_contiguous_shards() {
        let d =
            Dataset::new(vec![trace(2, 37.76), trace(1, 37.77), trace(3, 37.78), trace(2, 37.80)])
                .unwrap();
        let shard = d.user_slice(1..3).unwrap();
        assert_eq!(shard.users(), vec![UserId::new(2), UserId::new(3)]);
        assert_eq!(shard.len(), 3); // user 2 has two traces
        assert_eq!(shard.record_count(), 6);
        // Records are bit-identical to the views of the full dataset.
        let full: Vec<Record> =
            d.iter().filter(|t| t.user() != UserId::new(1)).flat_map(|t| t.iter()).collect();
        let sliced: Vec<Record> = shard.iter().flat_map(|t| t.iter()).collect();
        assert_eq!(sliced, full);
        // Covering slice reproduces the dataset.
        assert_eq!(d.user_slice(0..d.user_count()).unwrap(), d);
        assert!(d.user_slice(1..1).is_err());
        assert!(d.user_slice(2..9).is_err());
    }

    #[test]
    fn builder_streams_traces_and_validates() {
        let mut b = Dataset::builder();
        b.begin_trace(UserId::new(1));
        b.push_record(Seconds::new(0.0), gp(37.77, -122.41));
        b.push_record(Seconds::new(30.0), gp(37.78, -122.42));
        b.finish_trace().unwrap();
        b.push_trace(&trace(2, 37.76));
        assert_eq!(b.record_count(), 4);
        let d = b.finish().unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.users(), vec![UserId::new(1), UserId::new(2)]);

        // Empty streamed traces are rejected.
        let mut b = Dataset::builder();
        b.begin_trace(UserId::new(1));
        assert!(matches!(b.finish_trace(), Err(MobilityError::EmptyTrace)));

        // Unordered timestamps are rejected like Trace::new does.
        let mut b = Dataset::builder();
        b.begin_trace(UserId::new(1));
        b.push_record(Seconds::new(10.0), gp(37.77, -122.41));
        b.push_record(Seconds::new(0.0), gp(37.78, -122.42));
        assert!(matches!(b.finish_trace(), Err(MobilityError::UnorderedRecords { index: 1 })));

        // Out-of-user-order pushes are rejected at finish.
        let mut b = Dataset::builder();
        b.push_trace(&trace(2, 37.76));
        b.push_trace(&trace(1, 37.77));
        assert!(b.finish().is_err());

        // An empty builder yields no dataset.
        assert!(matches!(Dataset::builder().finish(), Err(MobilityError::EmptyDataset)));
    }

    #[test]
    fn row_round_trip_is_bit_identical() {
        let traces = vec![trace(2, 37.76), trace(1, 37.77), trace(3, 37.78)];
        let d = Dataset::new(traces).unwrap();
        let rows = d.to_traces();
        assert_eq!(Dataset::new(rows).unwrap(), d);
    }

    #[test]
    fn pairing_validates_alignment() {
        let d = dataset();
        let pairs = d.paired_with(&d).unwrap();
        assert_eq!(pairs.len(), 3);
        for (a, b) in pairs {
            assert_eq!(a.user(), b.user());
        }

        let smaller = d.take(2).unwrap();
        assert!(d.paired_with(&smaller).is_err());

        let other_users =
            Dataset::new(vec![trace(7, 37.76), trace(8, 37.77), trace(9, 37.78)]).unwrap();
        assert!(d.paired_with(&other_users).is_err());
    }
}
