//! Error type for mobility-data operations.

use geopriv_geo::GeoError;
use std::fmt;

/// Errors produced by the `geopriv-mobility` crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum MobilityError {
    /// A geospatial operation failed.
    Geo(GeoError),
    /// A trace or dataset was empty where data is required.
    EmptyTrace,
    /// A dataset contained no users.
    EmptyDataset,
    /// Records were not ordered by timestamp where ordering is required.
    UnorderedRecords {
        /// Index of the first out-of-order record.
        index: usize,
    },
    /// A generator or parser was configured with an invalid parameter.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A line of an input file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// An I/O error occurred while reading or writing trace files.
    Io(std::io::Error),
}

impl fmt::Display for MobilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobilityError::Geo(e) => write!(f, "geospatial error: {e}"),
            MobilityError::EmptyTrace => write!(f, "trace contains no records"),
            MobilityError::EmptyDataset => write!(f, "dataset contains no traces"),
            MobilityError::UnorderedRecords { index } => {
                write!(f, "records are not ordered by timestamp (first violation at index {index})")
            }
            MobilityError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            MobilityError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            MobilityError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for MobilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MobilityError::Geo(e) => Some(e),
            MobilityError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeoError> for MobilityError {
    fn from(e: GeoError) -> Self {
        MobilityError::Geo(e)
    }
}

impl From<std::io::Error> for MobilityError {
    fn from(e: std::io::Error) -> Self {
        MobilityError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = MobilityError::from(GeoError::EmptyBounds);
        assert!(e.to_string().contains("geospatial"));
        assert!(std::error::Error::source(&e).is_some());

        let p = MobilityError::Parse { line: 3, reason: "bad latitude".into() };
        assert!(p.to_string().contains("line 3"));
        assert!(std::error::Error::source(&p).is_none());

        let io = MobilityError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("i/o"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<MobilityError>();
    }
}
