//! Individual mobility records and user identifiers.

use geopriv_geo::{GeoPoint, Seconds};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a user (a taxi driver in the paper's dataset).
///
/// # Examples
///
/// ```
/// use geopriv_mobility::UserId;
///
/// let id = UserId::new(42);
/// assert_eq!(id.value(), 42);
/// assert_eq!(id.to_string(), "user-42");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct UserId(u64);

impl UserId {
    /// Creates a user identifier.
    pub const fn new(id: u64) -> Self {
        Self(id)
    }

    /// The numeric value of the identifier.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user-{}", self.0)
    }
}

impl From<u64> for UserId {
    fn from(id: u64) -> Self {
        Self(id)
    }
}

/// One timestamped location record of a mobility trace.
///
/// Timestamps are expressed in seconds from the start of the observation
/// period (the simulated datasets start at `t = 0`; imported datasets may use
/// Unix timestamps — only differences matter).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Record {
    timestamp: Seconds,
    location: GeoPoint,
}

impl Record {
    /// Creates a record from a timestamp and a location.
    pub fn new(timestamp: Seconds, location: GeoPoint) -> Self {
        Self { timestamp, location }
    }

    /// The record's timestamp.
    pub fn timestamp(&self) -> Seconds {
        self.timestamp
    }

    /// The record's location.
    pub fn location(&self) -> GeoPoint {
        self.location
    }

    /// Returns a copy of the record with a different location (same timestamp).
    ///
    /// This is the primitive used by LPPMs, which perturb *where* the user
    /// was but not *when* she was observed.
    pub fn with_location(&self, location: GeoPoint) -> Record {
        Record { timestamp: self.timestamp, location }
    }

    /// Returns a copy of the record with a different timestamp (same location).
    pub fn with_timestamp(&self, timestamp: Seconds) -> Record {
        Record { timestamp, location: self.location }
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.location, self.timestamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gp(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn user_id_roundtrip() {
        let id = UserId::new(7);
        assert_eq!(id.value(), 7);
        assert_eq!(UserId::from(7u64), id);
        assert_eq!(id.to_string(), "user-7");
        assert!(UserId::new(1) < UserId::new(2));
    }

    #[test]
    fn record_accessors() {
        let r = Record::new(Seconds::new(120.0), gp(37.77, -122.41));
        assert_eq!(r.timestamp().as_f64(), 120.0);
        assert_eq!(r.location().latitude(), 37.77);
        assert!(r.to_string().contains("120"));
    }

    #[test]
    fn with_location_preserves_timestamp() {
        let r = Record::new(Seconds::new(60.0), gp(37.77, -122.41));
        let moved = r.with_location(gp(37.78, -122.42));
        assert_eq!(moved.timestamp(), r.timestamp());
        assert_eq!(moved.location().latitude(), 37.78);
    }

    #[test]
    fn with_timestamp_preserves_location() {
        let r = Record::new(Seconds::new(60.0), gp(37.77, -122.41));
        let later = r.with_timestamp(Seconds::new(90.0));
        assert_eq!(later.location(), r.location());
        assert_eq!(later.timestamp().as_f64(), 90.0);
    }
}
