//! Per-user mobility traces.

use crate::error::MobilityError;
use crate::record::{Record, UserId};
use geopriv_geo::{distance, BoundingBox, GeoPoint, Meters, Seconds};
use serde::{Deserialize, Serialize};

/// A mobility trace: the chronologically ordered location records of one user.
///
/// This is the unit of protection and evaluation in the paper — LPPMs protect
/// a trace, POIs are extracted per trace, and the privacy/utility metrics
/// compare a user's actual and protected traces.
///
/// # Examples
///
/// ```
/// use geopriv_mobility::{Record, Trace, UserId};
/// use geopriv_geo::{GeoPoint, Seconds};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = Trace::new(
///     UserId::new(1),
///     vec![
///         Record::new(Seconds::new(0.0), GeoPoint::new(37.77, -122.41)?),
///         Record::new(Seconds::new(60.0), GeoPoint::new(37.78, -122.42)?),
///     ],
/// )?;
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.duration().as_f64(), 60.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    user: UserId,
    records: Vec<Record>,
}

impl Trace {
    /// Creates a trace from chronologically ordered records.
    ///
    /// # Errors
    ///
    /// * [`MobilityError::EmptyTrace`] if `records` is empty.
    /// * [`MobilityError::UnorderedRecords`] if timestamps are not non-decreasing.
    pub fn new(user: UserId, records: Vec<Record>) -> Result<Self, MobilityError> {
        if records.is_empty() {
            return Err(MobilityError::EmptyTrace);
        }
        for (i, pair) in records.windows(2).enumerate() {
            if pair[1].timestamp() < pair[0].timestamp() {
                return Err(MobilityError::UnorderedRecords { index: i + 1 });
            }
        }
        Ok(Self { user, records })
    }

    /// Creates a trace from possibly unordered records, sorting them by timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::EmptyTrace`] if `records` is empty.
    pub fn from_unordered(user: UserId, mut records: Vec<Record>) -> Result<Self, MobilityError> {
        if records.is_empty() {
            return Err(MobilityError::EmptyTrace);
        }
        records.sort_by(|a, b| {
            a.timestamp()
                .as_f64()
                .partial_cmp(&b.timestamp().as_f64())
                .expect("timestamps are finite")
        });
        Self::new(user, records)
    }

    /// The user this trace belongs to.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The chronologically ordered records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the trace has no records (never the case for a
    /// successfully constructed trace).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, Record> {
        self.records.iter()
    }

    /// The locations of all records, in chronological order.
    pub fn locations(&self) -> Vec<GeoPoint> {
        self.records.iter().map(|r| r.location()).collect()
    }

    /// The first record.
    pub fn first(&self) -> &Record {
        &self.records[0]
    }

    /// The last record.
    pub fn last(&self) -> &Record {
        &self.records[self.records.len() - 1]
    }

    /// Total observation duration (last timestamp minus first timestamp).
    pub fn duration(&self) -> Seconds {
        self.last().timestamp() - self.first().timestamp()
    }

    /// Total distance travelled along the trace.
    pub fn travelled_distance(&self) -> Meters {
        distance::path_length(&self.locations())
    }

    /// Median interval between consecutive records.
    ///
    /// Returns zero for a single-record trace.
    pub fn median_sampling_interval(&self) -> Seconds {
        if self.records.len() < 2 {
            return Seconds::new(0.0);
        }
        let mut intervals: Vec<f64> = self
            .records
            .windows(2)
            .map(|w| (w[1].timestamp() - w[0].timestamp()).as_f64())
            .collect();
        intervals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Seconds::new(intervals[intervals.len() / 2])
    }

    /// Geographic centroid of the trace (unweighted mean of coordinates).
    pub fn centroid(&self) -> GeoPoint {
        let n = self.records.len() as f64;
        let (lat, lon) = self.records.iter().fold((0.0, 0.0), |(la, lo), r| {
            (la + r.location().latitude(), lo + r.location().longitude())
        });
        GeoPoint::clamped(lat / n, lon / n)
    }

    /// Radius of gyration: root-mean-square distance of the records to the
    /// trace centroid. A classic mobility-compactness property used as a
    /// candidate dataset property `d_j`.
    pub fn radius_of_gyration(&self) -> Meters {
        let c = self.centroid();
        let mean_sq = self
            .records
            .iter()
            .map(|r| distance::haversine(r.location(), c).as_f64().powi(2))
            .sum::<f64>()
            / self.records.len() as f64;
        Meters::new(mean_sq.sqrt())
    }

    /// Mean speed over the trace in meters per second.
    ///
    /// Returns zero for traces with no elapsed time.
    pub fn mean_speed(&self) -> f64 {
        let duration = self.duration().as_f64();
        if duration <= 0.0 {
            return 0.0;
        }
        self.travelled_distance().as_f64() / duration
    }

    /// The smallest bounding box containing every record.
    ///
    /// # Errors
    ///
    /// Propagates [`geopriv_geo::GeoError`] for degenerate traces (all records
    /// at exactly the same coordinate are padded into a small box).
    pub fn bounding_box(&self) -> Result<BoundingBox, MobilityError> {
        Ok(BoundingBox::enclosing(self.locations())?)
    }

    /// Returns a copy of the trace restricted to records with
    /// `start <= timestamp < end`.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::EmptyTrace`] if no record falls in the window.
    pub fn time_window(&self, start: Seconds, end: Seconds) -> Result<Trace, MobilityError> {
        let records: Vec<Record> = self
            .records
            .iter()
            .filter(|r| r.timestamp() >= start && r.timestamp() < end)
            .copied()
            .collect();
        Trace::new(self.user, records)
    }

    /// Returns a copy of the trace keeping every `n`-th record (downsampling).
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::InvalidParameter`] if `n == 0`.
    pub fn downsampled(&self, n: usize) -> Result<Trace, MobilityError> {
        if n == 0 {
            return Err(MobilityError::InvalidParameter {
                name: "n",
                reason: "downsampling factor must be at least 1".to_string(),
            });
        }
        let records: Vec<Record> = self.records.iter().step_by(n).copied().collect();
        Trace::new(self.user, records)
    }

    /// Builds a new trace with the same user and timestamps but different
    /// locations, in the same order.
    ///
    /// This is the primitive LPPMs use to emit a protected trace.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::InvalidParameter`] if `locations.len()` does
    /// not match the number of records.
    pub fn with_locations(&self, locations: Vec<GeoPoint>) -> Result<Trace, MobilityError> {
        if locations.len() != self.records.len() {
            return Err(MobilityError::InvalidParameter {
                name: "locations",
                reason: format!(
                    "expected {} locations, got {}",
                    self.records.len(),
                    locations.len()
                ),
            });
        }
        let records =
            self.records.iter().zip(locations).map(|(r, loc)| r.with_location(loc)).collect();
        Trace::new(self.user, records)
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Record;
    type IntoIter = std::slice::Iter<'a, Record>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gp(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn sample_trace() -> Trace {
        Trace::new(
            UserId::new(1),
            vec![
                Record::new(Seconds::new(0.0), gp(37.7700, -122.4100)),
                Record::new(Seconds::new(30.0), gp(37.7710, -122.4110)),
                Record::new(Seconds::new(60.0), gp(37.7720, -122.4120)),
                Record::new(Seconds::new(120.0), gp(37.7800, -122.4200)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_order_and_nonemptiness() {
        assert!(matches!(Trace::new(UserId::new(1), vec![]), Err(MobilityError::EmptyTrace)));
        let unordered = vec![
            Record::new(Seconds::new(10.0), gp(37.77, -122.41)),
            Record::new(Seconds::new(5.0), gp(37.78, -122.42)),
        ];
        assert!(matches!(
            Trace::new(UserId::new(1), unordered.clone()),
            Err(MobilityError::UnorderedRecords { index: 1 })
        ));
        // from_unordered sorts instead of failing.
        let sorted = Trace::from_unordered(UserId::new(1), unordered).unwrap();
        assert!(sorted.first().timestamp() <= sorted.last().timestamp());
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        let t = Trace::new(
            UserId::new(2),
            vec![
                Record::new(Seconds::new(0.0), gp(37.77, -122.41)),
                Record::new(Seconds::new(0.0), gp(37.78, -122.42)),
            ],
        );
        assert!(t.is_ok());
    }

    #[test]
    fn basic_accessors() {
        let t = sample_trace();
        assert_eq!(t.user(), UserId::new(1));
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.duration().as_f64(), 120.0);
        assert_eq!(t.locations().len(), 4);
        assert_eq!(t.iter().count(), 4);
        assert_eq!((&t).into_iter().count(), 4);
        assert_eq!(t.first().timestamp().as_f64(), 0.0);
        assert_eq!(t.last().timestamp().as_f64(), 120.0);
    }

    #[test]
    fn travelled_distance_and_speed() {
        let t = sample_trace();
        let d = t.travelled_distance().as_f64();
        assert!(d > 1_000.0 && d < 3_000.0, "got {d}");
        let v = t.mean_speed();
        assert!((d / 120.0 - v).abs() < 1e-9);

        let stationary =
            Trace::new(UserId::new(3), vec![Record::new(Seconds::new(0.0), gp(37.77, -122.41))])
                .unwrap();
        assert_eq!(stationary.mean_speed(), 0.0);
        assert_eq!(stationary.median_sampling_interval().as_f64(), 0.0);
    }

    #[test]
    fn median_sampling_interval() {
        let t = sample_trace();
        // Intervals are 30, 30, 60 -> median 30.
        assert_eq!(t.median_sampling_interval().as_f64(), 30.0);
    }

    #[test]
    fn centroid_and_radius_of_gyration() {
        let t = sample_trace();
        let c = t.centroid();
        assert!((37.770..37.781).contains(&c.latitude()));
        let r = t.radius_of_gyration().as_f64();
        assert!(r > 100.0 && r < 2_000.0, "got {r}");

        // A stationary trace has zero radius of gyration.
        let stationary = Trace::new(
            UserId::new(3),
            vec![
                Record::new(Seconds::new(0.0), gp(37.77, -122.41)),
                Record::new(Seconds::new(10.0), gp(37.77, -122.41)),
            ],
        )
        .unwrap();
        assert!(stationary.radius_of_gyration().as_f64() < 1e-6);
    }

    #[test]
    fn bounding_box_contains_all_records() {
        let t = sample_trace();
        let b = t.bounding_box().unwrap();
        for r in &t {
            assert!(b.contains(r.location()));
        }
    }

    #[test]
    fn time_window_filters_records() {
        let t = sample_trace();
        let w = t.time_window(Seconds::new(30.0), Seconds::new(120.0)).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.first().timestamp().as_f64(), 30.0);
        assert!(t.time_window(Seconds::new(500.0), Seconds::new(600.0)).is_err());
    }

    #[test]
    fn downsampling() {
        let t = sample_trace();
        let d = t.downsampled(2).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.first().timestamp().as_f64(), 0.0);
        assert_eq!(d.last().timestamp().as_f64(), 60.0);
        assert!(t.downsampled(0).is_err());
        assert_eq!(t.downsampled(10).unwrap().len(), 1);
    }

    #[test]
    fn with_locations_replaces_coordinates_only() {
        let t = sample_trace();
        let new_locations = vec![gp(0.0, 0.0); 4];
        let replaced = t.with_locations(new_locations).unwrap();
        assert_eq!(replaced.len(), 4);
        assert_eq!(replaced.user(), t.user());
        for (old, new) in t.iter().zip(replaced.iter()) {
            assert_eq!(old.timestamp(), new.timestamp());
            assert_eq!(new.location().latitude(), 0.0);
        }
        assert!(t.with_locations(vec![gp(0.0, 0.0)]).is_err());
    }
}
