//! Per-user mobility traces, stored in columnar (struct-of-arrays) form.

use crate::error::MobilityError;
use crate::record::{Record, UserId};
use geopriv_geo::{distance, BoundingBox, GeoPoint, Meters, Seconds};
use serde::{Deserialize, Serialize};

/// A mobility trace: the chronologically ordered location records of one user.
///
/// This is the unit of protection and evaluation in the paper — LPPMs protect
/// a trace, POIs are extracted per trace, and the privacy/utility metrics
/// compare a user's actual and protected traces.
///
/// Internally the trace is stored as three contiguous `f64` columns
/// (timestamps, latitudes, longitudes) rather than a `Vec<Record>`, so hot
/// loops can scan cache-friendly slices; [`Record`]s are materialized on the
/// fly by [`Trace::iter`]. [`Trace::view`] exposes the columns as a borrowed
/// [`TraceView`] — the same representation a [`Dataset`](crate::Dataset) span
/// yields — so every computational method is implemented once, on the view.
///
/// # Examples
///
/// ```
/// use geopriv_mobility::{Record, Trace, UserId};
/// use geopriv_geo::{GeoPoint, Seconds};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = Trace::new(
///     UserId::new(1),
///     vec![
///         Record::new(Seconds::new(0.0), GeoPoint::new(37.77, -122.41)?),
///         Record::new(Seconds::new(60.0), GeoPoint::new(37.78, -122.42)?),
///     ],
/// )?;
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.duration().as_f64(), 60.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    user: UserId,
    t: Vec<f64>,
    lat: Vec<f64>,
    lon: Vec<f64>,
}

impl Trace {
    /// Creates a trace from chronologically ordered records.
    ///
    /// # Errors
    ///
    /// * [`MobilityError::EmptyTrace`] if `records` is empty.
    /// * [`MobilityError::UnorderedRecords`] if timestamps are not non-decreasing.
    pub fn new(user: UserId, records: Vec<Record>) -> Result<Self, MobilityError> {
        let mut t = Vec::with_capacity(records.len());
        let mut lat = Vec::with_capacity(records.len());
        let mut lon = Vec::with_capacity(records.len());
        for r in &records {
            t.push(r.timestamp().as_f64());
            lat.push(r.location().latitude());
            lon.push(r.location().longitude());
        }
        Self::from_columns(user, t, lat, lon)
    }

    /// Creates a trace directly from timestamp / latitude / longitude columns.
    ///
    /// Coordinates must come from valid [`GeoPoint`]s (LPPMs and the columnar
    /// [`Dataset`](crate::Dataset) builder only ever store validated points).
    ///
    /// # Errors
    ///
    /// * [`MobilityError::EmptyTrace`] if the columns are empty.
    /// * [`MobilityError::InvalidParameter`] if the columns have different lengths.
    /// * [`MobilityError::UnorderedRecords`] if timestamps are not non-decreasing.
    pub fn from_columns(
        user: UserId,
        t: Vec<f64>,
        lat: Vec<f64>,
        lon: Vec<f64>,
    ) -> Result<Self, MobilityError> {
        if t.is_empty() {
            return Err(MobilityError::EmptyTrace);
        }
        if t.len() != lat.len() || t.len() != lon.len() {
            return Err(MobilityError::InvalidParameter {
                name: "columns",
                reason: format!(
                    "column lengths differ: t={}, lat={}, lon={}",
                    t.len(),
                    lat.len(),
                    lon.len()
                ),
            });
        }
        for (i, pair) in t.windows(2).enumerate() {
            if pair[1] < pair[0] {
                return Err(MobilityError::UnorderedRecords { index: i + 1 });
            }
        }
        Ok(Self { user, t, lat, lon })
    }

    /// Creates a trace from possibly unordered records, sorting them by timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::EmptyTrace`] if `records` is empty.
    pub fn from_unordered(user: UserId, mut records: Vec<Record>) -> Result<Self, MobilityError> {
        if records.is_empty() {
            return Err(MobilityError::EmptyTrace);
        }
        records.sort_by(|a, b| {
            a.timestamp()
                .as_f64()
                .partial_cmp(&b.timestamp().as_f64())
                .expect("timestamps are finite")
        });
        Self::new(user, records)
    }

    /// A zero-copy view over this trace's columns.
    pub fn view(&self) -> TraceView<'_> {
        TraceView { user: self.user, t: &self.t, lat: &self.lat, lon: &self.lon }
    }

    /// The user this trace belongs to.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The chronologically ordered records, materialized from the columns.
    pub fn to_records(&self) -> Vec<Record> {
        self.view().iter().collect()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Returns `true` if the trace has no records (never the case for a
    /// successfully constructed trace).
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> Records<'_> {
        self.view().iter()
    }

    /// The timestamp column, in seconds.
    pub fn timestamps(&self) -> &[f64] {
        &self.t
    }

    /// The latitude column, in decimal degrees.
    pub fn latitudes(&self) -> &[f64] {
        &self.lat
    }

    /// The longitude column, in decimal degrees.
    pub fn longitudes(&self) -> &[f64] {
        &self.lon
    }

    /// The locations of all records, in chronological order.
    pub fn locations(&self) -> Vec<GeoPoint> {
        self.view().locations()
    }

    /// The first record.
    pub fn first(&self) -> Record {
        self.view().first()
    }

    /// The last record.
    pub fn last(&self) -> Record {
        self.view().last()
    }

    /// Total observation duration (last timestamp minus first timestamp).
    pub fn duration(&self) -> Seconds {
        self.view().duration()
    }

    /// Total distance travelled along the trace.
    pub fn travelled_distance(&self) -> Meters {
        self.view().travelled_distance()
    }

    /// Median interval between consecutive records.
    ///
    /// Returns zero for a single-record trace.
    pub fn median_sampling_interval(&self) -> Seconds {
        self.view().median_sampling_interval()
    }

    /// Geographic centroid of the trace (unweighted mean of coordinates).
    pub fn centroid(&self) -> GeoPoint {
        self.view().centroid()
    }

    /// Radius of gyration: root-mean-square distance of the records to the
    /// trace centroid. A classic mobility-compactness property used as a
    /// candidate dataset property `d_j`.
    pub fn radius_of_gyration(&self) -> Meters {
        self.view().radius_of_gyration()
    }

    /// Mean speed over the trace in meters per second.
    ///
    /// Returns zero for traces with no elapsed time.
    pub fn mean_speed(&self) -> f64 {
        self.view().mean_speed()
    }

    /// The smallest bounding box containing every record.
    ///
    /// # Errors
    ///
    /// Propagates [`geopriv_geo::GeoError`] for degenerate traces (all records
    /// at exactly the same coordinate are padded into a small box).
    pub fn bounding_box(&self) -> Result<BoundingBox, MobilityError> {
        self.view().bounding_box()
    }

    /// Returns a copy of the trace restricted to records with
    /// `start <= timestamp < end`.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::EmptyTrace`] if no record falls in the window.
    pub fn time_window(&self, start: Seconds, end: Seconds) -> Result<Trace, MobilityError> {
        self.view().time_window(start, end)
    }

    /// Returns a copy of the trace keeping every `n`-th record (downsampling).
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::InvalidParameter`] if `n == 0`.
    pub fn downsampled(&self, n: usize) -> Result<Trace, MobilityError> {
        self.view().downsampled(n)
    }

    /// Builds a new trace with the same user and timestamps but different
    /// locations, in the same order.
    ///
    /// This is the primitive LPPMs use to emit a protected trace.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::InvalidParameter`] if `locations.len()` does
    /// not match the number of records.
    pub fn with_locations(&self, locations: Vec<GeoPoint>) -> Result<Trace, MobilityError> {
        if locations.len() != self.t.len() {
            return Err(MobilityError::InvalidParameter {
                name: "locations",
                reason: format!("expected {} locations, got {}", self.t.len(), locations.len()),
            });
        }
        let mut lat = Vec::with_capacity(locations.len());
        let mut lon = Vec::with_capacity(locations.len());
        for loc in &locations {
            lat.push(loc.latitude());
            lon.push(loc.longitude());
        }
        // Timestamps are copied from an already-validated trace, so no
        // re-validation is needed.
        Ok(Self { user: self.user, t: self.t.clone(), lat, lon })
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = Record;
    type IntoIter = Records<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A zero-copy view over one trace's columns.
///
/// Views are what a columnar [`Dataset`](crate::Dataset) hands out for each
/// of its spans: three borrowed `f64` slices plus the owning user. All trace
/// computations (distance, centroid, bounding box, …) are implemented here,
/// on contiguous slices, and [`Trace`] delegates to its own view.
#[derive(Debug, Clone, Copy)]
pub struct TraceView<'a> {
    pub(crate) user: UserId,
    pub(crate) t: &'a [f64],
    pub(crate) lat: &'a [f64],
    pub(crate) lon: &'a [f64],
}

impl<'a> TraceView<'a> {
    /// Assembles a view from raw columns (lengths must match, and be non-zero).
    pub fn from_columns(user: UserId, t: &'a [f64], lat: &'a [f64], lon: &'a [f64]) -> Self {
        assert!(
            !t.is_empty() && t.len() == lat.len() && t.len() == lon.len(),
            "view columns must be non-empty and of equal length"
        );
        Self { user, t, lat, lon }
    }

    /// The user this trace belongs to.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Returns `true` if the view has no records (never the case for views
    /// handed out by a dataset or trace).
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// The timestamp column, in seconds.
    pub fn timestamps(&self) -> &'a [f64] {
        self.t
    }

    /// The latitude column, in decimal degrees.
    pub fn latitudes(&self) -> &'a [f64] {
        self.lat
    }

    /// The longitude column, in decimal degrees.
    pub fn longitudes(&self) -> &'a [f64] {
        self.lon
    }

    /// The `i`-th record, materialized from the columns.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn record(&self, i: usize) -> Record {
        Record::new(Seconds::new(self.t[i]), GeoPoint::from_stored(self.lat[i], self.lon[i]))
    }

    /// The `i`-th location, materialized from the columns.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn location(&self, i: usize) -> GeoPoint {
        GeoPoint::from_stored(self.lat[i], self.lon[i])
    }

    /// Iterates over the records, materializing each from the columns.
    pub fn iter(&self) -> Records<'a> {
        Records { view: *self, next: 0 }
    }

    /// The locations of all records, in chronological order.
    pub fn locations(&self) -> Vec<GeoPoint> {
        (0..self.len()).map(|i| self.location(i)).collect()
    }

    /// The first record.
    pub fn first(&self) -> Record {
        self.record(0)
    }

    /// The last record.
    pub fn last(&self) -> Record {
        self.record(self.len() - 1)
    }

    /// Copies the view into an owned [`Trace`].
    pub fn to_trace(&self) -> Trace {
        Trace {
            user: self.user,
            t: self.t.to_vec(),
            lat: self.lat.to_vec(),
            lon: self.lon.to_vec(),
        }
    }

    /// Total observation duration (last timestamp minus first timestamp).
    pub fn duration(&self) -> Seconds {
        Seconds::new(self.t[self.t.len() - 1] - self.t[0])
    }

    /// Total distance travelled along the trace.
    pub fn travelled_distance(&self) -> Meters {
        distance::path_length(&self.locations())
    }

    /// Median interval between consecutive records.
    ///
    /// Returns zero for a single-record trace.
    pub fn median_sampling_interval(&self) -> Seconds {
        if self.t.len() < 2 {
            return Seconds::new(0.0);
        }
        let mut intervals: Vec<f64> = self.t.windows(2).map(|w| w[1] - w[0]).collect();
        intervals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Seconds::new(intervals[intervals.len() / 2])
    }

    /// Geographic centroid of the trace (unweighted mean of coordinates).
    pub fn centroid(&self) -> GeoPoint {
        let n = self.t.len() as f64;
        let mut la = 0.0;
        let mut lo = 0.0;
        for i in 0..self.t.len() {
            la += self.lat[i];
            lo += self.lon[i];
        }
        GeoPoint::clamped(la / n, lo / n)
    }

    /// Radius of gyration: root-mean-square distance of the records to the
    /// trace centroid.
    pub fn radius_of_gyration(&self) -> Meters {
        let c = self.centroid();
        let mean_sq = (0..self.len())
            .map(|i| distance::haversine(self.location(i), c).as_f64().powi(2))
            .sum::<f64>()
            / self.len() as f64;
        Meters::new(mean_sq.sqrt())
    }

    /// Mean speed over the trace in meters per second.
    ///
    /// Returns zero for traces with no elapsed time.
    pub fn mean_speed(&self) -> f64 {
        let duration = self.duration().as_f64();
        if duration <= 0.0 {
            return 0.0;
        }
        self.travelled_distance().as_f64() / duration
    }

    /// The smallest bounding box containing every record.
    ///
    /// # Errors
    ///
    /// Propagates [`geopriv_geo::GeoError`] for degenerate traces.
    pub fn bounding_box(&self) -> Result<BoundingBox, MobilityError> {
        Ok(BoundingBox::enclosing((0..self.len()).map(|i| self.location(i)))?)
    }

    /// Returns an owned trace restricted to records with
    /// `start <= timestamp < end`.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::EmptyTrace`] if no record falls in the window.
    pub fn time_window(&self, start: Seconds, end: Seconds) -> Result<Trace, MobilityError> {
        let (s, e) = (start.as_f64(), end.as_f64());
        let mut t = Vec::new();
        let mut lat = Vec::new();
        let mut lon = Vec::new();
        for i in 0..self.len() {
            if self.t[i] >= s && self.t[i] < e {
                t.push(self.t[i]);
                lat.push(self.lat[i]);
                lon.push(self.lon[i]);
            }
        }
        if t.is_empty() {
            return Err(MobilityError::EmptyTrace);
        }
        Ok(Trace { user: self.user, t, lat, lon })
    }

    /// Returns an owned trace keeping every `n`-th record (downsampling).
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::InvalidParameter`] if `n == 0`.
    pub fn downsampled(&self, n: usize) -> Result<Trace, MobilityError> {
        if n == 0 {
            return Err(MobilityError::InvalidParameter {
                name: "n",
                reason: "downsampling factor must be at least 1".to_string(),
            });
        }
        Ok(Trace {
            user: self.user,
            t: self.t.iter().step_by(n).copied().collect(),
            lat: self.lat.iter().step_by(n).copied().collect(),
            lon: self.lon.iter().step_by(n).copied().collect(),
        })
    }
}

impl<'a> IntoIterator for TraceView<'a> {
    type Item = Record;
    type IntoIter = Records<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the records of a [`TraceView`], materializing each [`Record`]
/// from the underlying columns.
#[derive(Debug, Clone)]
pub struct Records<'a> {
    view: TraceView<'a>,
    next: usize,
}

impl Iterator for Records<'_> {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        if self.next >= self.view.len() {
            return None;
        }
        let record = self.view.record(self.next);
        self.next += 1;
        Some(record)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.view.len() - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Records<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn gp(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn sample_trace() -> Trace {
        Trace::new(
            UserId::new(1),
            vec![
                Record::new(Seconds::new(0.0), gp(37.7700, -122.4100)),
                Record::new(Seconds::new(30.0), gp(37.7710, -122.4110)),
                Record::new(Seconds::new(60.0), gp(37.7720, -122.4120)),
                Record::new(Seconds::new(120.0), gp(37.7800, -122.4200)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_order_and_nonemptiness() {
        assert!(matches!(Trace::new(UserId::new(1), vec![]), Err(MobilityError::EmptyTrace)));
        let unordered = vec![
            Record::new(Seconds::new(10.0), gp(37.77, -122.41)),
            Record::new(Seconds::new(5.0), gp(37.78, -122.42)),
        ];
        assert!(matches!(
            Trace::new(UserId::new(1), unordered.clone()),
            Err(MobilityError::UnorderedRecords { index: 1 })
        ));
        // from_unordered sorts instead of failing.
        let sorted = Trace::from_unordered(UserId::new(1), unordered).unwrap();
        assert!(sorted.first().timestamp() <= sorted.last().timestamp());
    }

    #[test]
    fn column_construction_validates_shape() {
        let t = Trace::from_columns(
            UserId::new(1),
            vec![0.0, 10.0],
            vec![37.7, 37.8],
            vec![-122.4, -122.5],
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        assert!(matches!(
            Trace::from_columns(UserId::new(1), vec![], vec![], vec![]),
            Err(MobilityError::EmptyTrace)
        ));
        assert!(matches!(
            Trace::from_columns(UserId::new(1), vec![0.0, 1.0], vec![37.7], vec![-122.4, -122.5]),
            Err(MobilityError::InvalidParameter { .. })
        ));
        assert!(matches!(
            Trace::from_columns(
                UserId::new(1),
                vec![10.0, 0.0],
                vec![37.7, 37.8],
                vec![-122.4, -122.5,]
            ),
            Err(MobilityError::UnorderedRecords { index: 1 })
        ));
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        let t = Trace::new(
            UserId::new(2),
            vec![
                Record::new(Seconds::new(0.0), gp(37.77, -122.41)),
                Record::new(Seconds::new(0.0), gp(37.78, -122.42)),
            ],
        );
        assert!(t.is_ok());
    }

    #[test]
    fn basic_accessors() {
        let t = sample_trace();
        assert_eq!(t.user(), UserId::new(1));
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.duration().as_f64(), 120.0);
        assert_eq!(t.locations().len(), 4);
        assert_eq!(t.iter().count(), 4);
        assert_eq!((&t).into_iter().count(), 4);
        assert_eq!(t.first().timestamp().as_f64(), 0.0);
        assert_eq!(t.last().timestamp().as_f64(), 120.0);
        assert_eq!(t.timestamps(), &[0.0, 30.0, 60.0, 120.0]);
        assert_eq!(t.latitudes().len(), 4);
        assert_eq!(t.longitudes().len(), 4);
    }

    #[test]
    fn records_round_trip_through_columns() {
        let records = vec![
            Record::new(Seconds::new(0.0), gp(37.7700, -122.4100)),
            Record::new(Seconds::new(30.0), gp(37.7710, -122.4110)),
        ];
        let t = Trace::new(UserId::new(1), records.clone()).unwrap();
        assert_eq!(t.to_records(), records);
        let view = t.view();
        assert_eq!(view.len(), 2);
        assert_eq!(view.record(1), records[1]);
        assert_eq!(view.to_trace(), t);
        assert_eq!(view.iter().len(), 2);
        assert_eq!(view.into_iter().collect::<Vec<_>>(), records);
    }

    #[test]
    fn travelled_distance_and_speed() {
        let t = sample_trace();
        let d = t.travelled_distance().as_f64();
        assert!(d > 1_000.0 && d < 3_000.0, "got {d}");
        let v = t.mean_speed();
        assert!((d / 120.0 - v).abs() < 1e-9);

        let stationary =
            Trace::new(UserId::new(3), vec![Record::new(Seconds::new(0.0), gp(37.77, -122.41))])
                .unwrap();
        assert_eq!(stationary.mean_speed(), 0.0);
        assert_eq!(stationary.median_sampling_interval().as_f64(), 0.0);
    }

    #[test]
    fn median_sampling_interval() {
        let t = sample_trace();
        // Intervals are 30, 30, 60 -> median 30.
        assert_eq!(t.median_sampling_interval().as_f64(), 30.0);
    }

    #[test]
    fn centroid_and_radius_of_gyration() {
        let t = sample_trace();
        let c = t.centroid();
        assert!((37.770..37.781).contains(&c.latitude()));
        let r = t.radius_of_gyration().as_f64();
        assert!(r > 100.0 && r < 2_000.0, "got {r}");

        // A stationary trace has zero radius of gyration.
        let stationary = Trace::new(
            UserId::new(3),
            vec![
                Record::new(Seconds::new(0.0), gp(37.77, -122.41)),
                Record::new(Seconds::new(10.0), gp(37.77, -122.41)),
            ],
        )
        .unwrap();
        assert!(stationary.radius_of_gyration().as_f64() < 1e-6);
    }

    #[test]
    fn bounding_box_contains_all_records() {
        let t = sample_trace();
        let b = t.bounding_box().unwrap();
        for r in &t {
            assert!(b.contains(r.location()));
        }
    }

    #[test]
    fn time_window_filters_records() {
        let t = sample_trace();
        let w = t.time_window(Seconds::new(30.0), Seconds::new(120.0)).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.first().timestamp().as_f64(), 30.0);
        assert!(t.time_window(Seconds::new(500.0), Seconds::new(600.0)).is_err());
    }

    #[test]
    fn downsampling() {
        let t = sample_trace();
        let d = t.downsampled(2).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.first().timestamp().as_f64(), 0.0);
        assert_eq!(d.last().timestamp().as_f64(), 60.0);
        assert!(t.downsampled(0).is_err());
        assert_eq!(t.downsampled(10).unwrap().len(), 1);
    }

    #[test]
    fn with_locations_replaces_coordinates_only() {
        let t = sample_trace();
        let new_locations = vec![gp(0.0, 0.0); 4];
        let replaced = t.with_locations(new_locations).unwrap();
        assert_eq!(replaced.len(), 4);
        assert_eq!(replaced.user(), t.user());
        for (old, new) in t.iter().zip(replaced.iter()) {
            assert_eq!(old.timestamp(), new.timestamp());
            assert_eq!(new.location().latitude(), 0.0);
        }
        assert!(t.with_locations(vec![gp(0.0, 0.0)]).is_err());
    }
}
