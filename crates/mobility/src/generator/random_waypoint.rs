//! Random-waypoint workload.
//!
//! The classic mobility baseline: users repeatedly pick a uniformly random
//! destination, move there at a random speed, pause, and repeat. Unlike the
//! taxi and commuter generators it has no hotspot structure, so POIs are rare
//! and unstable — a useful *negative control* when validating the privacy
//! metric and the framework's robustness to dataset properties.

use crate::dataset::Dataset;
use crate::error::MobilityError;
use crate::generator::city::CityModel;
use crate::generator::noise::gps_jitter;
use crate::record::{Record, UserId};
use crate::trace::Trace;
use geopriv_geo::{Meters, Point, Seconds};
use rand::Rng;

/// Builder for a random-waypoint dataset.
///
/// # Examples
///
/// ```
/// use geopriv_mobility::generator::RandomWaypointBuilder;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let dataset = RandomWaypointBuilder::new().users(3).duration_hours(2.0).build(&mut rng)?;
/// assert_eq!(dataset.user_count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RandomWaypointBuilder {
    users: usize,
    duration: Seconds,
    sampling_interval: Seconds,
    speed_range_mps: (f64, f64),
    pause_range: (Seconds, Seconds),
    gps_noise: Meters,
    first_user_id: u64,
}

impl Default for RandomWaypointBuilder {
    fn default() -> Self {
        Self {
            users: 20,
            duration: Seconds::from_hours(12.0),
            sampling_interval: Seconds::new(30.0),
            speed_range_mps: (1.0, 15.0),
            pause_range: (Seconds::new(0.0), Seconds::from_minutes(10.0)),
            gps_noise: Meters::new(8.0),
            first_user_id: 0,
        }
    }
}

impl RandomWaypointBuilder {
    /// Creates a builder with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of users to simulate. Default: 20.
    pub fn users(mut self, users: usize) -> Self {
        self.users = users;
        self
    }

    /// Observation duration per user, in hours. Default: 12 h.
    pub fn duration_hours(mut self, hours: f64) -> Self {
        self.duration = Seconds::from_hours(hours);
        self
    }

    /// GPS sampling interval, in seconds. Default: 30 s.
    pub fn sampling_interval_s(mut self, seconds: f64) -> Self {
        self.sampling_interval = Seconds::new(seconds);
        self
    }

    /// Uniform range of per-leg speeds in m/s. Default: 1 – 15 m/s.
    pub fn speed_range_mps(mut self, min: f64, max: f64) -> Self {
        self.speed_range_mps = (min, max);
        self
    }

    /// Uniform range of pause durations at each waypoint, in minutes.
    /// Default: 0 – 10 min.
    pub fn pause_range_minutes(mut self, min: f64, max: f64) -> Self {
        self.pause_range = (Seconds::from_minutes(min), Seconds::from_minutes(max));
        self
    }

    /// Standard deviation of the GPS noise in meters. Default: 8 m.
    pub fn gps_noise_m(mut self, meters: f64) -> Self {
        self.gps_noise = Meters::new(meters);
        self
    }

    /// First user id to assign. Default: 0.
    pub fn first_user_id(mut self, id: u64) -> Self {
        self.first_user_id = id;
        self
    }

    fn validate(&self) -> Result<(), MobilityError> {
        if self.users == 0 {
            return Err(MobilityError::InvalidParameter {
                name: "users",
                reason: "at least one user is required".to_string(),
            });
        }
        if !(self.duration.as_f64().is_finite() && self.duration.as_f64() > 0.0) {
            return Err(MobilityError::InvalidParameter {
                name: "duration",
                reason: "must be finite and strictly positive".to_string(),
            });
        }
        if !(self.sampling_interval.as_f64().is_finite() && self.sampling_interval.as_f64() > 0.0) {
            return Err(MobilityError::InvalidParameter {
                name: "sampling_interval",
                reason: "must be finite and strictly positive".to_string(),
            });
        }
        let (smin, smax) = self.speed_range_mps;
        if !(smin.is_finite() && smax.is_finite() && smin > 0.0 && smin <= smax) {
            return Err(MobilityError::InvalidParameter {
                name: "speed_range",
                reason: format!("need 0 < min <= max, got {smin}..{smax}"),
            });
        }
        let (pmin, pmax) = self.pause_range;
        if pmin.as_f64() < 0.0 || pmax.as_f64() < pmin.as_f64() {
            return Err(MobilityError::InvalidParameter {
                name: "pause_range",
                reason: "need 0 <= min <= max".to_string(),
            });
        }
        Ok(())
    }

    /// Generates the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::InvalidParameter`] for invalid configuration.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Dataset, MobilityError> {
        self.validate()?;
        // Hotspots are irrelevant here; the city model only provides bounds.
        let city = CityModel::san_francisco(1, rng)?;
        let projection = *city.projection();
        let dt = self.sampling_interval.as_f64();
        let horizon = self.duration.as_f64();
        let noise = self.gps_noise.as_f64();

        let traces: Result<Vec<Trace>, MobilityError> = (0..self.users)
            .map(|i| {
                let user = UserId::new(self.first_user_id + i as u64);
                let mut records = Vec::with_capacity((horizon / dt) as usize + 1);
                let mut time = 0.0;
                let mut position: Point = projection.project(city.sample_uniform_location(rng));

                while time <= horizon {
                    // Pick destination and speed for this leg.
                    let destination = projection.project(city.sample_uniform_location(rng));
                    let speed = rng.gen_range(self.speed_range_mps.0..=self.speed_range_mps.1);
                    let travel_time = position.distance_to(destination).as_f64() / speed;
                    let leg_start = time;
                    let leg_origin = position;
                    while time <= (leg_start + travel_time).min(horizon) {
                        let progress = if travel_time > 0.0 {
                            ((time - leg_start) / travel_time).clamp(0.0, 1.0)
                        } else {
                            1.0
                        };
                        position = leg_origin.lerp(destination, progress);
                        let observed = gps_jitter(rng, position, noise);
                        records
                            .push(Record::new(Seconds::new(time), projection.unproject(observed)));
                        time += dt;
                    }
                    position = destination;
                    if time > horizon {
                        break;
                    }
                    // Pause.
                    let pause =
                        rng.gen_range(self.pause_range.0.as_f64()..=self.pause_range.1.as_f64());
                    let pause_end = (time + pause).min(horizon);
                    while time <= pause_end {
                        let observed = gps_jitter(rng, position, noise);
                        records
                            .push(Record::new(Seconds::new(time), projection.unproject(observed)));
                        time += dt;
                    }
                }
                Trace::new(user, records)
            })
            .collect();
        Dataset::new(traces?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(RandomWaypointBuilder::new().users(0).build(&mut rng).is_err());
        assert!(RandomWaypointBuilder::new().duration_hours(0.0).build(&mut rng).is_err());
        assert!(RandomWaypointBuilder::new().sampling_interval_s(0.0).build(&mut rng).is_err());
        assert!(RandomWaypointBuilder::new().speed_range_mps(5.0, 1.0).build(&mut rng).is_err());
        assert!(RandomWaypointBuilder::new().speed_range_mps(0.0, 1.0).build(&mut rng).is_err());
        assert!(RandomWaypointBuilder::new()
            .pause_range_minutes(10.0, 1.0)
            .build(&mut rng)
            .is_err());
    }

    #[test]
    fn users_wander_across_the_city() {
        let mut rng = StdRng::seed_from_u64(2);
        let dataset =
            RandomWaypointBuilder::new().users(3).duration_hours(6.0).build(&mut rng).unwrap();
        for trace in &dataset {
            // Without hotspot structure the radius of gyration is large.
            assert!(trace.radius_of_gyration().to_kilometers() > 1.0);
            assert!(trace.travelled_distance().to_kilometers() > 10.0);
            assert!(trace.len() > 300);
        }
    }

    #[test]
    fn bounded_in_city_and_deterministic() {
        let build = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            RandomWaypointBuilder::new().users(2).duration_hours(2.0).build(&mut rng).unwrap()
        };
        let a = build(3);
        assert_eq!(a, build(3));
        let bounds = CityModel::default_bounds().expanded(0.2);
        for trace in &a {
            for record in trace {
                assert!(bounds.contains(record.location()));
            }
        }
    }
}
