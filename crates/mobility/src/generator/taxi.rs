//! Synthetic taxi-fleet workload (stand-in for the cabspotting dataset).
//!
//! The paper's evaluation protects "mobility traces of taxi drivers around
//! San Francisco". That dataset is not redistributable, so this module
//! simulates the behaviours the privacy/utility metrics depend on:
//!
//! * drivers alternate **trips** (straight-line drives at realistic city
//!   speeds, GPS-sampled every few tens of seconds with measurement noise)
//!   and **stops** (dwelling several minutes at an activity hotspot — these
//!   stops are exactly what the POI extractor later recovers);
//! * destinations are drawn from weighted hotspots, so drivers repeatedly
//!   return to a handful of meaningful places (home plate, taxi ranks,
//!   downtown), giving each user a stable set of POIs;
//! * coverage spans a realistic fraction of the city, driving the
//!   area-coverage utility metric.

use crate::dataset::Dataset;
use crate::error::MobilityError;
use crate::generator::city::CityModel;
use crate::generator::noise::{gps_jitter, sample_exponential, sample_normal};
use crate::record::{Record, UserId};
use crate::trace::Trace;
use geopriv_geo::{GeoPoint, Meters, Point, Seconds};
use rand::Rng;

/// Builder for a synthetic taxi-fleet dataset.
///
/// The defaults produce a dataset comparable (in structure, not size) to the
/// slice of cabspotting the paper uses: tens of drivers observed for a day at
/// a ~30 s sampling period.
///
/// # Examples
///
/// ```
/// use geopriv_mobility::generator::TaxiFleetBuilder;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let dataset = TaxiFleetBuilder::new()
///     .drivers(5)
///     .duration_hours(6.0)
///     .sampling_interval_s(30.0)
///     .build(&mut rng)?;
/// assert_eq!(dataset.user_count(), 5);
/// assert!(dataset.record_count() > 1_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaxiFleetBuilder {
    drivers: usize,
    duration: Seconds,
    sampling_interval: Seconds,
    speed_mean_mps: f64,
    speed_std_mps: f64,
    stop_mean_duration: Seconds,
    stop_min_duration: Seconds,
    stop_probability: f64,
    gps_noise: Meters,
    hotspot_count: usize,
    hotspot_bias: f64,
    first_user_id: u64,
    city: Option<CityModel>,
}

impl Default for TaxiFleetBuilder {
    fn default() -> Self {
        Self {
            drivers: 50,
            duration: Seconds::from_hours(24.0),
            sampling_interval: Seconds::new(30.0),
            speed_mean_mps: 8.0,
            speed_std_mps: 2.0,
            stop_mean_duration: Seconds::from_minutes(25.0),
            stop_min_duration: Seconds::from_minutes(16.0),
            stop_probability: 0.55,
            gps_noise: Meters::new(8.0),
            hotspot_count: 15,
            hotspot_bias: 0.85,
            first_user_id: 0,
            city: None,
        }
    }
}

impl TaxiFleetBuilder {
    /// Creates a builder with the default fleet configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of drivers (users) to simulate. Default: 50.
    pub fn drivers(mut self, drivers: usize) -> Self {
        self.drivers = drivers;
        self
    }

    /// Observation duration per driver, in hours. Default: 24 h.
    pub fn duration_hours(mut self, hours: f64) -> Self {
        self.duration = Seconds::from_hours(hours);
        self
    }

    /// GPS sampling interval, in seconds. Default: 30 s.
    pub fn sampling_interval_s(mut self, seconds: f64) -> Self {
        self.sampling_interval = Seconds::new(seconds);
        self
    }

    /// Mean and standard deviation of driving speed, in m/s. Default: 8 ± 2 m/s.
    pub fn speed_mps(mut self, mean: f64, std_dev: f64) -> Self {
        self.speed_mean_mps = mean;
        self.speed_std_mps = std_dev;
        self
    }

    /// Mean duration of a stop, in minutes. Default: 25 min.
    ///
    /// Stops shorter than the minimum stop duration (16 min by default) are
    /// stretched to that minimum so they remain detectable POIs.
    pub fn stop_mean_minutes(mut self, minutes: f64) -> Self {
        self.stop_mean_duration = Seconds::from_minutes(minutes);
        self
    }

    /// Minimum duration of a stop, in minutes. Default: 16 min.
    pub fn stop_min_minutes(mut self, minutes: f64) -> Self {
        self.stop_min_duration = Seconds::from_minutes(minutes);
        self
    }

    /// Probability that a driver stops (dwells) after reaching a destination.
    /// Default: 0.55.
    pub fn stop_probability(mut self, probability: f64) -> Self {
        self.stop_probability = probability;
        self
    }

    /// Standard deviation of the GPS measurement noise, in meters. Default: 8 m.
    pub fn gps_noise_m(mut self, meters: f64) -> Self {
        self.gps_noise = Meters::new(meters);
        self
    }

    /// Number of activity hotspots in the synthetic city. Default: 15.
    pub fn hotspots(mut self, count: usize) -> Self {
        self.hotspot_count = count;
        self
    }

    /// Probability that a trip destination is a hotspot rather than a
    /// uniformly random street location. Default: 0.85.
    pub fn hotspot_bias(mut self, bias: f64) -> Self {
        self.hotspot_bias = bias;
        self
    }

    /// First user id to assign; drivers get consecutive ids. Default: 0.
    pub fn first_user_id(mut self, id: u64) -> Self {
        self.first_user_id = id;
        self
    }

    /// Uses an explicit city model instead of generating one.
    pub fn city(mut self, city: CityModel) -> Self {
        self.city = Some(city);
        self
    }

    fn validate(&self) -> Result<(), MobilityError> {
        fn positive(name: &'static str, value: f64) -> Result<(), MobilityError> {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(MobilityError::InvalidParameter {
                    name,
                    reason: format!("must be finite and strictly positive, got {value}"),
                })
            }
        }
        if self.drivers == 0 {
            return Err(MobilityError::InvalidParameter {
                name: "drivers",
                reason: "at least one driver is required".to_string(),
            });
        }
        positive("duration", self.duration.as_f64())?;
        positive("sampling_interval", self.sampling_interval.as_f64())?;
        positive("speed_mean", self.speed_mean_mps)?;
        positive("stop_mean_duration", self.stop_mean_duration.as_f64())?;
        if self.stop_min_duration.as_f64() < 0.0 {
            return Err(MobilityError::InvalidParameter {
                name: "stop_min_duration",
                reason: "must be non-negative".to_string(),
            });
        }
        if !(0.0..=1.0).contains(&self.stop_probability) {
            return Err(MobilityError::InvalidParameter {
                name: "stop_probability",
                reason: format!("must be in [0, 1], got {}", self.stop_probability),
            });
        }
        if !(0.0..=1.0).contains(&self.hotspot_bias) {
            return Err(MobilityError::InvalidParameter {
                name: "hotspot_bias",
                reason: format!("must be in [0, 1], got {}", self.hotspot_bias),
            });
        }
        if self.gps_noise.as_f64() < 0.0 || !self.gps_noise.is_finite() {
            return Err(MobilityError::InvalidParameter {
                name: "gps_noise",
                reason: "must be finite and non-negative".to_string(),
            });
        }
        if self.hotspot_count == 0 {
            return Err(MobilityError::InvalidParameter {
                name: "hotspot_count",
                reason: "at least one hotspot is required".to_string(),
            });
        }
        Ok(())
    }

    /// Generates the dataset.
    ///
    /// The same builder with the same seeded RNG produces the same dataset,
    /// which is how the reproduction harness keeps figures deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::InvalidParameter`] for invalid configuration.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Dataset, MobilityError> {
        self.validate()?;
        let city = match &self.city {
            Some(c) => c.clone(),
            None => CityModel::san_francisco(self.hotspot_count, rng)?,
        };
        let traces: Result<Vec<Trace>, MobilityError> = (0..self.drivers)
            .map(|i| self.simulate_driver(UserId::new(self.first_user_id + i as u64), &city, rng))
            .collect();
        Dataset::new(traces?)
    }

    fn simulate_driver<R: Rng + ?Sized>(
        &self,
        user: UserId,
        city: &CityModel,
        rng: &mut R,
    ) -> Result<Trace, MobilityError> {
        let projection = *city.projection();
        let dt = self.sampling_interval.as_f64();
        let horizon = self.duration.as_f64();
        let noise = self.gps_noise.as_f64();

        let mut records: Vec<Record> = Vec::with_capacity((horizon / dt) as usize + 1);
        let mut time = 0.0;
        let mut position: Point = projection.project(city.sample_stop_location(rng));

        let emit = |records: &mut Vec<Record>, time: f64, position: Point, rng: &mut R| {
            let observed = gps_jitter(rng, position, noise);
            records.push(Record::new(Seconds::new(time), projection.unproject(observed)));
        };

        // Drivers begin their shift stopped at a hotspot, so even short
        // simulations contain at least one POI-grade stop.
        let initial_dwell = self
            .stop_min_duration
            .as_f64()
            .max(sample_exponential(rng, self.stop_mean_duration.as_f64()))
            .min(horizon);
        while time <= initial_dwell.min(horizon) {
            emit(&mut records, time, position, rng);
            time += dt;
        }

        while time <= horizon {
            // Choose the next destination.
            let destination_geo: GeoPoint = if rng.gen_bool(self.hotspot_bias) {
                city.sample_stop_location(rng)
            } else {
                city.sample_uniform_location(rng)
            };
            let destination = projection.project(destination_geo);

            // Drive there in straight-line segments at a per-trip speed.
            let speed = sample_normal(rng, self.speed_mean_mps, self.speed_std_mps).max(1.0);
            let distance = position.distance_to(destination).as_f64();
            let travel_time = distance / speed;
            let start_time = time;
            let start_position = position;
            while time <= (start_time + travel_time).min(horizon) {
                let progress = if travel_time > 0.0 {
                    ((time - start_time) / travel_time).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                position = start_position.lerp(destination, progress);
                emit(&mut records, time, position, rng);
                time += dt;
            }
            position = destination;
            if time > horizon {
                break;
            }

            // Possibly dwell at the destination (producing a POI-grade stop).
            if rng.gen_bool(self.stop_probability) {
                let dwell = self
                    .stop_min_duration
                    .as_f64()
                    .max(sample_exponential(rng, self.stop_mean_duration.as_f64()));
                let stop_end = (time + dwell).min(horizon);
                while time <= stop_end {
                    emit(&mut records, time, position, rng);
                    time += dt;
                }
            }
        }

        Trace::new(user, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_fleet(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        TaxiFleetBuilder::new()
            .drivers(3)
            .duration_hours(4.0)
            .sampling_interval_s(30.0)
            .build(&mut rng)
            .unwrap()
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(TaxiFleetBuilder::new().drivers(0).build(&mut rng).is_err());
        assert!(TaxiFleetBuilder::new().duration_hours(0.0).build(&mut rng).is_err());
        assert!(TaxiFleetBuilder::new().sampling_interval_s(-1.0).build(&mut rng).is_err());
        assert!(TaxiFleetBuilder::new().speed_mps(0.0, 1.0).build(&mut rng).is_err());
        assert!(TaxiFleetBuilder::new().stop_probability(1.5).build(&mut rng).is_err());
        assert!(TaxiFleetBuilder::new().hotspot_bias(-0.1).build(&mut rng).is_err());
        assert!(TaxiFleetBuilder::new().gps_noise_m(f64::NAN).build(&mut rng).is_err());
        assert!(TaxiFleetBuilder::new().hotspots(0).build(&mut rng).is_err());
        assert!(TaxiFleetBuilder::new().stop_mean_minutes(0.0).build(&mut rng).is_err());
    }

    #[test]
    fn fleet_has_expected_shape() {
        let dataset = small_fleet(7);
        assert_eq!(dataset.user_count(), 3);
        assert_eq!(dataset.len(), 3);
        // 4 hours at 30 s sampling is at most ~480 records per driver, and the
        // simulator emits nearly continuously.
        for trace in &dataset {
            assert!(trace.len() > 200, "trace has only {} records", trace.len());
            assert!(trace.len() < 700);
            assert!(trace.duration().to_hours() <= 4.01);
            assert!(trace.duration().to_hours() > 3.5);
            assert_eq!(trace.median_sampling_interval().as_f64(), 30.0);
        }
    }

    #[test]
    fn records_stay_in_a_city_scale_area() {
        let dataset = small_fleet(11);
        let bounds = CityModel::default_bounds().expanded(0.2);
        for trace in &dataset {
            for record in trace {
                assert!(bounds.contains(record.location()), "record outside city: {record}");
            }
        }
    }

    #[test]
    fn drivers_actually_move_and_stop() {
        let dataset = small_fleet(13);
        for trace in &dataset {
            // They cover several kilometers...
            assert!(trace.travelled_distance().to_kilometers() > 2.0);
            // ...but also spend long intervals (stops) nearly still: count
            // consecutive-record displacements under 30 m.
            let locations = trace.locations();
            let still = locations
                .windows(2)
                .filter(|w| geopriv_geo::distance::haversine(w[0], w[1]).as_f64() < 30.0)
                .count();
            assert!(
                still as f64 / locations.len() as f64 > 0.2,
                "driver never dwells: {} still of {}",
                still,
                locations.len()
            );
        }
    }

    #[test]
    fn same_seed_reproduces_the_same_dataset() {
        let a = small_fleet(99);
        let b = small_fleet(99);
        assert_eq!(a, b);
        let c = small_fleet(100);
        assert_ne!(a, c);
    }

    #[test]
    fn first_user_id_offsets_users() {
        let mut rng = StdRng::seed_from_u64(5);
        let dataset = TaxiFleetBuilder::new()
            .drivers(2)
            .duration_hours(1.0)
            .first_user_id(10)
            .build(&mut rng)
            .unwrap();
        assert_eq!(dataset.users(), vec![UserId::new(10), UserId::new(11)]);
    }

    #[test]
    fn custom_city_is_respected() {
        let mut rng = StdRng::seed_from_u64(6);
        let bounds = geopriv_geo::BoundingBox::new(48.80, 2.25, 48.90, 2.42).unwrap(); // Paris
        let city = CityModel::new(bounds, 8, &mut rng).unwrap();
        let dataset = TaxiFleetBuilder::new()
            .drivers(2)
            .duration_hours(2.0)
            .city(city)
            .build(&mut rng)
            .unwrap();
        let expanded = bounds.expanded(0.2);
        for trace in &dataset {
            for record in trace {
                assert!(expanded.contains(record.location()));
            }
        }
    }
}
