//! Synthetic mobility workload generators.
//!
//! The paper evaluates on the cabspotting San-Francisco taxi dataset, which
//! cannot be redistributed. These generators produce datasets with the same
//! *structural* characteristics the privacy and utility metrics depend on
//! (stable stop locations, hotspot-skewed destinations, city-scale coverage),
//! so every experiment of the paper can be re-run end to end:
//!
//! * [`TaxiFleetBuilder`] — the cabspotting stand-in (the default workload of
//!   the reproduction harness).
//! * [`CommuterBuilder`] — home/work commuters, the scenario motivating the
//!   paper's introduction (POIs reveal home and work places).
//! * [`RandomWaypointBuilder`] — a structure-free negative control.
//! * [`CityModel`] — the shared synthetic city (bounds plus weighted hotspots).

pub mod city;
pub mod commuter;
pub mod noise;
pub mod random_waypoint;
pub mod taxi;

pub use city::{CityModel, Hotspot};
pub use commuter::CommuterBuilder;
pub use random_waypoint::RandomWaypointBuilder;
pub use taxi::TaxiFleetBuilder;

use crate::dataset::Dataset;
use crate::error::MobilityError;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates a scale-test taxi dataset with `users` drivers, deterministic
/// from one `seed`.
///
/// This is the entry point the scale benches use to emit 10 → 1,000,000-user
/// datasets: a deliberately short observation window (30 minutes at a
/// 2-minute sampling interval, 16 records per driver) keeps the per-user
/// footprint small enough that million-user datasets fit in memory while
/// still exercising every protection and metric path. The same
/// `(users, seed)` pair always produces the bit-identical dataset.
///
/// # Errors
///
/// Returns [`MobilityError::EmptyDataset`] if `users` is zero.
///
/// # Examples
///
/// ```
/// use geopriv_mobility::generator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = generator::scaled(10, 42)?;
/// assert_eq!(dataset.user_count(), 10);
/// assert_eq!(dataset, generator::scaled(10, 42)?);
/// # Ok(())
/// # }
/// ```
pub fn scaled(users: usize, seed: u64) -> Result<Dataset, MobilityError> {
    let mut rng = StdRng::seed_from_u64(seed);
    TaxiFleetBuilder::new()
        .drivers(users)
        .duration_hours(0.5)
        .sampling_interval_s(120.0)
        .build(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_is_deterministic_and_compact() {
        let d = scaled(25, 7).unwrap();
        assert_eq!(d.user_count(), 25);
        // The scale profile keeps the per-user footprint small (~16 records).
        let per_user = d.record_count() / d.user_count();
        assert!((10..=20).contains(&per_user), "got {per_user} records/user");
        assert_eq!(d, scaled(25, 7).unwrap());
        assert_ne!(scaled(25, 8).unwrap(), d);
        assert!(scaled(0, 7).is_err());
    }
}
