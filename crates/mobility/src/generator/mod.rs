//! Synthetic mobility workload generators.
//!
//! The paper evaluates on the cabspotting San-Francisco taxi dataset, which
//! cannot be redistributed. These generators produce datasets with the same
//! *structural* characteristics the privacy and utility metrics depend on
//! (stable stop locations, hotspot-skewed destinations, city-scale coverage),
//! so every experiment of the paper can be re-run end to end:
//!
//! * [`TaxiFleetBuilder`] — the cabspotting stand-in (the default workload of
//!   the reproduction harness).
//! * [`CommuterBuilder`] — home/work commuters, the scenario motivating the
//!   paper's introduction (POIs reveal home and work places).
//! * [`RandomWaypointBuilder`] — a structure-free negative control.
//! * [`CityModel`] — the shared synthetic city (bounds plus weighted hotspots).

pub mod city;
pub mod commuter;
pub mod noise;
pub mod random_waypoint;
pub mod taxi;

pub use city::{CityModel, Hotspot};
pub use commuter::CommuterBuilder;
pub use random_waypoint::RandomWaypointBuilder;
pub use taxi::TaxiFleetBuilder;

use crate::dataset::Dataset;
use crate::error::MobilityError;
use crate::record::UserId;
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Generates a scale-test taxi dataset with `users` drivers, deterministic
/// from one `seed`.
///
/// This is the entry point the scale benches use to emit 10 → 1,000,000-user
/// datasets: a deliberately short observation window (30 minutes at a
/// 2-minute sampling interval, 16 records per driver) keeps the per-user
/// footprint small enough that million-user datasets fit in memory while
/// still exercising every protection and metric path. The same
/// `(users, seed)` pair always produces the bit-identical dataset.
///
/// # Errors
///
/// Returns [`MobilityError::EmptyDataset`] if `users` is zero.
///
/// # Examples
///
/// ```
/// use geopriv_mobility::generator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = generator::scaled(10, 42)?;
/// assert_eq!(dataset.user_count(), 10);
/// assert_eq!(dataset, generator::scaled(10, 42)?);
/// # Ok(())
/// # }
/// ```
pub fn scaled(users: usize, seed: u64) -> Result<Dataset, MobilityError> {
    let mut rng = StdRng::seed_from_u64(seed);
    TaxiFleetBuilder::new()
        .drivers(users)
        .duration_hours(0.5)
        .sampling_interval_s(120.0)
        .build(&mut rng)
}

/// Deterministically perturbs the traces of exactly the given users,
/// leaving every other user's records bit-identical.
///
/// This is the shared *drift driver* for the incremental-recomputation
/// tests, bench and example: it simulates K users' mobility changing between
/// two observation windows. Every record of a targeted user gets a small
/// coordinate jitter (a guaranteed ≥ ~1 m latitude shift plus Gaussian
/// noise, ~5 m standard deviation per axis); timestamps are untouched, so
/// trace ordering and record counts are preserved.
///
/// Determinism is *per user*: a user's perturbed records are a pure function
/// of `(seed, her user id, her trace ordinal, her records)` — independent of
/// which *other* users are in `users`. Perturbing `{a, b}` therefore yields
/// bit-identical records for `a` as perturbing `{a}` alone, which lets tests
/// compose drift scenarios freely. Duplicate entries in `users` are
/// harmless (the set is deduplicated).
///
/// # Errors
///
/// Returns [`MobilityError::InvalidParameter`] if any requested user has no
/// trace in `dataset`.
///
/// # Examples
///
/// ```
/// use geopriv_mobility::generator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fleet = generator::scaled(10, 42)?;
/// let victim = fleet.users()[0];
/// let drifted = generator::perturb_users(&fleet, &[victim], 7)?;
/// assert_ne!(fleet, drifted);
/// assert_eq!(drifted, generator::perturb_users(&fleet, &[victim], 7)?);
/// # Ok(())
/// # }
/// ```
pub fn perturb_users(
    dataset: &Dataset,
    users: &[UserId],
    seed: u64,
) -> Result<Dataset, MobilityError> {
    let targets: BTreeSet<UserId> = users.iter().copied().collect();
    let present: BTreeSet<UserId> = dataset.users().into_iter().collect();
    if let Some(missing) = targets.iter().find(|u| !present.contains(u)) {
        return Err(MobilityError::InvalidParameter {
            name: "users",
            reason: format!("user {} has no trace in the dataset", missing.value()),
        });
    }
    if targets.is_empty() {
        return Ok(dataset.clone());
    }
    // Ordinal of the trace within its user, so multi-trace users draw an
    // independent stream per trace.
    let mut previous: Option<(UserId, u64)> = None;
    dataset.map_traces(|view| {
        let ordinal = match previous {
            Some((user, n)) if user == view.user() => n + 1,
            _ => 0,
        };
        previous = Some((view.user(), ordinal));
        if !targets.contains(&view.user()) {
            return Ok(view.to_trace());
        }
        let mut rng = StdRng::seed_from_u64(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(view.user().value() ^ 0xcbf2_9ce4_8422_2325)
                .wrapping_add(ordinal.wrapping_shl(48)),
        );
        let t = view.timestamps().to_vec();
        let mut lat = Vec::with_capacity(view.len());
        let mut lon = Vec::with_capacity(view.len());
        for i in 0..view.len() {
            let (la, lo) = (view.latitudes()[i], view.longitudes()[i]);
            // A guaranteed minimum latitude shift (~1.1 m) on top of the
            // Gaussian jitter makes "this user's records changed" an
            // unconditional postcondition, not a probabilistic one.
            let sign = if rng.gen_range(0u32..2) == 0 { 1.0 } else { -1.0 };
            let dlat = sign * (1e-5 + noise::sample_normal(&mut rng, 0.0, 5e-5).abs());
            let dlon = noise::sample_normal(&mut rng, 0.0, 5e-5);
            let mut new_lat = (la + dlat).clamp(-90.0, 90.0);
            if new_lat == la {
                // Only reachable when clamping at a pole ate the shift.
                new_lat = (la - dlat).clamp(-90.0, 90.0);
            }
            lat.push(new_lat);
            lon.push((lo + dlon).clamp(-180.0, 180.0));
        }
        Trace::from_columns(view.user(), t, lat, lon)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_is_deterministic_and_compact() {
        let d = scaled(25, 7).unwrap();
        assert_eq!(d.user_count(), 25);
        // The scale profile keeps the per-user footprint small (~16 records).
        let per_user = d.record_count() / d.user_count();
        assert!((10..=20).contains(&per_user), "got {per_user} records/user");
        assert_eq!(d, scaled(25, 7).unwrap());
        assert_ne!(scaled(25, 8).unwrap(), d);
        assert!(scaled(0, 7).is_err());
    }

    #[test]
    fn perturb_users_changes_exactly_the_targets() {
        let d = scaled(8, 3).unwrap();
        let users = d.users();
        let targets = [users[1], users[5]];
        let drifted = perturb_users(&d, &targets, 99).unwrap();
        assert_eq!(drifted.users(), users);
        for (before, after) in d.iter().zip(drifted.iter()) {
            assert_eq!(before.user(), after.user());
            assert_eq!(before.timestamps(), after.timestamps());
            let changed = before.latitudes() != after.latitudes()
                || before.longitudes() != after.longitudes();
            assert_eq!(changed, targets.contains(&before.user()), "user {:?}", before.user());
        }
    }

    #[test]
    fn perturb_users_is_per_user_deterministic() {
        let d = scaled(6, 11).unwrap();
        let users = d.users();
        let both = perturb_users(&d, &[users[0], users[3]], 5).unwrap();
        let alone = perturb_users(&d, &[users[3]], 5).unwrap();
        // User 3's perturbed records must not depend on user 0 being targeted.
        let from_both = both.iter().find(|t| t.user() == users[3]).unwrap();
        let from_alone = alone.iter().find(|t| t.user() == users[3]).unwrap();
        assert_eq!(from_both.latitudes(), from_alone.latitudes());
        assert_eq!(from_both.longitudes(), from_alone.longitudes());
        // Different seeds draw different jitter.
        assert_ne!(perturb_users(&d, &[users[3]], 6).unwrap(), alone);
        // Duplicates are deduplicated; an empty target set is a no-op.
        assert_eq!(perturb_users(&d, &[users[3], users[3]], 5).unwrap(), alone);
        assert_eq!(perturb_users(&d, &[], 5).unwrap(), d);
    }

    #[test]
    fn perturb_users_rejects_unknown_users() {
        let d = scaled(3, 1).unwrap();
        let err = perturb_users(&d, &[UserId::new(1_000_000)], 0).unwrap_err();
        assert!(matches!(err, MobilityError::InvalidParameter { .. }));
    }
}
