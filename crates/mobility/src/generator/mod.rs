//! Synthetic mobility workload generators.
//!
//! The paper evaluates on the cabspotting San-Francisco taxi dataset, which
//! cannot be redistributed. These generators produce datasets with the same
//! *structural* characteristics the privacy and utility metrics depend on
//! (stable stop locations, hotspot-skewed destinations, city-scale coverage),
//! so every experiment of the paper can be re-run end to end:
//!
//! * [`TaxiFleetBuilder`] — the cabspotting stand-in (the default workload of
//!   the reproduction harness).
//! * [`CommuterBuilder`] — home/work commuters, the scenario motivating the
//!   paper's introduction (POIs reveal home and work places).
//! * [`RandomWaypointBuilder`] — a structure-free negative control.
//! * [`CityModel`] — the shared synthetic city (bounds plus weighted hotspots).

pub mod city;
pub mod commuter;
pub mod noise;
pub mod random_waypoint;
pub mod taxi;

pub use city::{CityModel, Hotspot};
pub use commuter::CommuterBuilder;
pub use random_waypoint::RandomWaypointBuilder;
pub use taxi::TaxiFleetBuilder;
