//! Synthetic city model: the spatial backdrop of the mobility simulators.
//!
//! The cabspotting dataset the paper evaluates on covers San Francisco, a
//! city with pronounced activity hotspots (downtown, the Mission, the
//! airport…). [`CityModel`] reproduces the aspects the metrics care about: a
//! bounding box and a set of weighted hotspots around which users stop
//! (producing POIs) and between which they travel (producing coverage).

use crate::error::MobilityError;
use crate::generator::noise::{sample_normal, sample_weighted_index};
use geopriv_geo::{BoundingBox, GeoPoint, LocalProjection, Meters, Point};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A weighted activity hotspot of the synthetic city.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hotspot {
    /// Center of the hotspot.
    pub location: GeoPoint,
    /// Relative popularity (visit probability is proportional to this weight).
    pub weight: f64,
    /// Spatial spread of stops around the center, in meters.
    pub spread: Meters,
}

/// The synthetic city: a bounding box plus weighted hotspots.
///
/// # Examples
///
/// ```
/// use geopriv_mobility::generator::CityModel;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let city = CityModel::san_francisco(12, &mut rng)?;
/// assert_eq!(city.hotspots().len(), 12);
/// let stop = city.sample_stop_location(&mut rng);
/// assert!(city.bounds().expanded(0.1).contains(stop));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityModel {
    bounds: BoundingBox,
    hotspots: Vec<Hotspot>,
    projection: LocalProjection,
}

impl CityModel {
    /// The default San-Francisco-like bounding box (roughly the cabspotting extent).
    pub fn default_bounds() -> BoundingBox {
        BoundingBox::new(37.70, -122.52, 37.83, -122.35).expect("static bounds are valid")
    }

    /// Creates a city over the default San-Francisco bounding box with
    /// `hotspot_count` randomly placed hotspots.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::InvalidParameter`] if `hotspot_count` is zero.
    pub fn san_francisco<R: Rng + ?Sized>(
        hotspot_count: usize,
        rng: &mut R,
    ) -> Result<Self, MobilityError> {
        Self::new(Self::default_bounds(), hotspot_count, rng)
    }

    /// Creates a city over an arbitrary bounding box with `hotspot_count`
    /// randomly placed hotspots.
    ///
    /// Hotspot weights follow a Zipf-like distribution (weight ∝ 1/rank), so
    /// a few hotspots dominate — mirroring the skew of real urban activity.
    /// Hotspot spreads are drawn between 30 m and 400 m, so different places
    /// lose their POIs at different noise levels (this heterogeneity is what
    /// widens the privacy transition band of Figure 1a).
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::InvalidParameter`] if `hotspot_count` is zero.
    pub fn new<R: Rng + ?Sized>(
        bounds: BoundingBox,
        hotspot_count: usize,
        rng: &mut R,
    ) -> Result<Self, MobilityError> {
        if hotspot_count == 0 {
            return Err(MobilityError::InvalidParameter {
                name: "hotspot_count",
                reason: "a city needs at least one hotspot".to_string(),
            });
        }
        let hotspots = (0..hotspot_count)
            .map(|rank| Hotspot {
                location: uniform_point_in(&bounds, rng),
                weight: 1.0 / (rank as f64 + 1.0),
                spread: Meters::new(rng.gen_range(30.0..400.0)),
            })
            .collect();
        Ok(Self { bounds, hotspots, projection: LocalProjection::centered_on(bounds.center()) })
    }

    /// Creates a city from explicitly provided hotspots.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::InvalidParameter`] if `hotspots` is empty.
    pub fn with_hotspots(
        bounds: BoundingBox,
        hotspots: Vec<Hotspot>,
    ) -> Result<Self, MobilityError> {
        if hotspots.is_empty() {
            return Err(MobilityError::InvalidParameter {
                name: "hotspots",
                reason: "a city needs at least one hotspot".to_string(),
            });
        }
        Ok(Self { bounds, hotspots, projection: LocalProjection::centered_on(bounds.center()) })
    }

    /// The city's bounding box.
    pub fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// The city's hotspots.
    pub fn hotspots(&self) -> &[Hotspot] {
        &self.hotspots
    }

    /// The projection centered on the city, shared by the simulators.
    pub fn projection(&self) -> &LocalProjection {
        &self.projection
    }

    /// Samples a hotspot according to the popularity weights.
    pub fn sample_hotspot<R: Rng + ?Sized>(&self, rng: &mut R) -> &Hotspot {
        let weights: Vec<f64> = self.hotspots.iter().map(|h| h.weight).collect();
        &self.hotspots[sample_weighted_index(rng, &weights)]
    }

    /// Samples a concrete stop location: a hotspot center plus Gaussian
    /// scatter of that hotspot's spread.
    ///
    /// Different visits to the same hotspot land within a couple hundred
    /// meters of each other — close enough to cluster into the same POI.
    pub fn sample_stop_location<R: Rng + ?Sized>(&self, rng: &mut R) -> GeoPoint {
        let hotspot = self.sample_hotspot(rng);
        let center = self.projection.project(hotspot.location);
        let scattered = Point::new(
            center.x() + sample_normal(rng, 0.0, hotspot.spread.as_f64()),
            center.y() + sample_normal(rng, 0.0, hotspot.spread.as_f64()),
        );
        self.projection.unproject(scattered)
    }

    /// Samples a uniformly distributed point inside the city bounds.
    pub fn sample_uniform_location<R: Rng + ?Sized>(&self, rng: &mut R) -> GeoPoint {
        uniform_point_in(&self.bounds, rng)
    }
}

fn uniform_point_in<R: Rng + ?Sized>(bounds: &BoundingBox, rng: &mut R) -> GeoPoint {
    GeoPoint::clamped(
        rng.gen_range(bounds.min_latitude()..bounds.max_latitude()),
        rng.gen_range(bounds.min_longitude()..bounds.max_longitude()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_hotspot_count() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(CityModel::san_francisco(0, &mut rng).is_err());
        assert!(CityModel::with_hotspots(CityModel::default_bounds(), vec![]).is_err());
        let city = CityModel::san_francisco(5, &mut rng).unwrap();
        assert_eq!(city.hotspots().len(), 5);
    }

    #[test]
    fn hotspots_are_inside_bounds_and_zipf_weighted() {
        let mut rng = StdRng::seed_from_u64(2);
        let city = CityModel::san_francisco(10, &mut rng).unwrap();
        for (i, h) in city.hotspots().iter().enumerate() {
            assert!(city.bounds().contains(h.location));
            assert!((h.weight - 1.0 / (i as f64 + 1.0)).abs() < 1e-12);
            assert!(h.spread.as_f64() >= 30.0 && h.spread.as_f64() <= 400.0);
        }
    }

    #[test]
    fn popular_hotspots_are_sampled_more_often() {
        let mut rng = StdRng::seed_from_u64(3);
        let city = CityModel::san_francisco(5, &mut rng).unwrap();
        let first = city.hotspots()[0].location;
        let last = city.hotspots()[4].location;
        let mut first_count = 0;
        let mut last_count = 0;
        for _ in 0..5_000 {
            let h = city.sample_hotspot(&mut rng);
            if h.location == first {
                first_count += 1;
            } else if h.location == last {
                last_count += 1;
            }
        }
        // Weight ratio is 5:1; allow generous sampling slack.
        assert!(first_count > 3 * last_count, "{first_count} vs {last_count}");
    }

    #[test]
    fn stop_locations_cluster_near_their_hotspot() {
        let mut rng = StdRng::seed_from_u64(4);
        let bounds = CityModel::default_bounds();
        let hotspot =
            Hotspot { location: bounds.center(), weight: 1.0, spread: Meters::new(100.0) };
        let city = CityModel::with_hotspots(bounds, vec![hotspot]).unwrap();
        for _ in 0..200 {
            let stop = city.sample_stop_location(&mut rng);
            let d = geopriv_geo::distance::haversine(stop, hotspot.location).as_f64();
            assert!(d < 1_000.0, "stop {d} m away from its hotspot");
        }
    }

    #[test]
    fn uniform_locations_cover_the_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let city = CityModel::san_francisco(3, &mut rng).unwrap();
        let points: Vec<GeoPoint> =
            (0..500).map(|_| city.sample_uniform_location(&mut rng)).collect();
        assert!(points.iter().all(|p| city.bounds().contains(*p)));
        // Both halves of the box are hit.
        let mid = city.bounds().center().latitude();
        let north = points.iter().filter(|p| p.latitude() > mid).count();
        assert!(north > 100 && north < 400, "north {north}");
    }
}
