//! Random sampling helpers shared by the synthetic mobility generators.
//!
//! Only the uniform generator of [`rand`] is assumed; the normal and
//! exponential variates needed by the simulators are derived here (Box-Muller
//! and inverse-CDF respectively), keeping the dependency surface to the
//! pre-approved crates.

use geopriv_geo::Point;
use rand::Rng;

/// Samples a normally distributed value with the given mean and standard deviation.
///
/// Uses the Box-Muller transform. A non-positive `std_dev` returns `mean`.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    if std_dev <= 0.0 {
        return mean;
    }
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std_dev * z
}

/// Samples an exponentially distributed value with the given mean.
///
/// Uses inverse-CDF sampling. A non-positive `mean` returns `0`.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Adds isotropic Gaussian jitter (standard deviation `sigma_m` meters per
/// axis) to a planar point. Models GPS measurement noise.
pub fn gps_jitter<R: Rng + ?Sized>(rng: &mut R, point: Point, sigma_m: f64) -> Point {
    if sigma_m <= 0.0 {
        return point;
    }
    Point::new(
        point.x() + sample_normal(rng, 0.0, sigma_m),
        point.y() + sample_normal(rng, 0.0, sigma_m),
    )
}

/// Samples an index according to non-negative weights.
///
/// Falls back to index 0 when all weights are zero or the slice is empty
/// degenerately (callers validate non-emptiness).
pub fn sample_weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 || weights.is_empty() {
        return 0;
    }
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if w.is_finite() && w > 0.0 {
            if target < w {
                return i;
            }
            target -= w;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_samples_have_expected_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| sample_normal(&mut rng, 10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn zero_std_returns_mean_exactly() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sample_normal(&mut rng, 5.0, 0.0), 5.0);
        assert_eq!(sample_normal(&mut rng, 5.0, -1.0), 5.0);
    }

    #[test]
    fn exponential_samples_have_expected_mean_and_are_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..20_000).map(|_| sample_exponential(&mut rng, 300.0)).collect();
        assert!(samples.iter().all(|&v| v >= 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 300.0).abs() < 15.0, "mean {mean}");
        assert_eq!(sample_exponential(&mut rng, 0.0), 0.0);
    }

    #[test]
    fn gps_jitter_moves_points_by_roughly_sigma() {
        let mut rng = StdRng::seed_from_u64(4);
        let origin = Point::origin();
        let displacements: Vec<f64> = (0..5_000)
            .map(|_| gps_jitter(&mut rng, origin, 10.0).distance_to(origin).as_f64())
            .collect();
        let mean = displacements.iter().sum::<f64>() / displacements.len() as f64;
        // Mean displacement of a 2D Gaussian is sigma * sqrt(pi/2) ≈ 12.5 m.
        assert!((mean - 12.5).abs() < 1.0, "mean {mean}");
        assert_eq!(gps_jitter(&mut rng, origin, 0.0), origin);
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[sample_weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");

        // Degenerate weights fall back to index 0.
        assert_eq!(sample_weighted_index(&mut rng, &[0.0, 0.0]), 0);
        assert_eq!(sample_weighted_index(&mut rng, &[]), 0);
    }
}
