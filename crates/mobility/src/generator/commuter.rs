//! Synthetic commuter workload.
//!
//! The taxi fleet reproduces the paper's evaluation dataset; the commuter
//! generator exercises the opposite regime the introduction motivates —
//! ordinary LBS users whose traces expose *home and work places*. Each user
//! has a fixed home and workplace; days alternate home-dwell, commute, work-
//! dwell, commute, home-dwell. The resulting POIs are extremely stable,
//! making this the adversary-friendly scenario for the privacy metric.

use crate::dataset::Dataset;
use crate::error::MobilityError;
use crate::generator::city::CityModel;
use crate::generator::noise::{gps_jitter, sample_normal};
use crate::record::{Record, UserId};
use crate::trace::Trace;
use geopriv_geo::{Meters, Point, Seconds};
use rand::Rng;

/// Builder for a synthetic commuter dataset.
///
/// # Examples
///
/// ```
/// use geopriv_mobility::generator::CommuterBuilder;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let dataset = CommuterBuilder::new().users(4).days(2).build(&mut rng)?;
/// assert_eq!(dataset.user_count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CommuterBuilder {
    users: usize,
    days: usize,
    sampling_interval: Seconds,
    work_start_hour: f64,
    work_end_hour: f64,
    speed_mean_mps: f64,
    gps_noise: Meters,
    hotspot_count: usize,
    first_user_id: u64,
}

impl Default for CommuterBuilder {
    fn default() -> Self {
        Self {
            users: 20,
            days: 1,
            sampling_interval: Seconds::new(60.0),
            work_start_hour: 9.0,
            work_end_hour: 17.5,
            speed_mean_mps: 6.0,
            gps_noise: Meters::new(10.0),
            hotspot_count: 12,
            first_user_id: 0,
        }
    }
}

impl CommuterBuilder {
    /// Creates a builder with the default commuter configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of users to simulate. Default: 20.
    pub fn users(mut self, users: usize) -> Self {
        self.users = users;
        self
    }

    /// Number of simulated days per user. Default: 1.
    pub fn days(mut self, days: usize) -> Self {
        self.days = days;
        self
    }

    /// GPS sampling interval, in seconds. Default: 60 s.
    pub fn sampling_interval_s(mut self, seconds: f64) -> Self {
        self.sampling_interval = Seconds::new(seconds);
        self
    }

    /// Working hours (start, end) as fractional hours of the day.
    /// Default: 9.0 – 17.5.
    pub fn work_hours(mut self, start: f64, end: f64) -> Self {
        self.work_start_hour = start;
        self.work_end_hour = end;
        self
    }

    /// Mean commute speed in m/s. Default: 6 m/s.
    pub fn speed_mps(mut self, mean: f64) -> Self {
        self.speed_mean_mps = mean;
        self
    }

    /// Standard deviation of the GPS noise in meters. Default: 10 m.
    pub fn gps_noise_m(mut self, meters: f64) -> Self {
        self.gps_noise = Meters::new(meters);
        self
    }

    /// Number of hotspots homes/workplaces are drawn from. Default: 12.
    pub fn hotspots(mut self, count: usize) -> Self {
        self.hotspot_count = count;
        self
    }

    /// First user id to assign. Default: 0.
    pub fn first_user_id(mut self, id: u64) -> Self {
        self.first_user_id = id;
        self
    }

    fn validate(&self) -> Result<(), MobilityError> {
        if self.users == 0 {
            return Err(MobilityError::InvalidParameter {
                name: "users",
                reason: "at least one user is required".to_string(),
            });
        }
        if self.days == 0 {
            return Err(MobilityError::InvalidParameter {
                name: "days",
                reason: "at least one day is required".to_string(),
            });
        }
        if !(self.sampling_interval.as_f64().is_finite() && self.sampling_interval.as_f64() > 0.0) {
            return Err(MobilityError::InvalidParameter {
                name: "sampling_interval",
                reason: "must be finite and strictly positive".to_string(),
            });
        }
        if !(0.0..24.0).contains(&self.work_start_hour)
            || !(0.0..=24.0).contains(&self.work_end_hour)
            || self.work_start_hour >= self.work_end_hour
        {
            return Err(MobilityError::InvalidParameter {
                name: "work_hours",
                reason: format!(
                    "need 0 <= start < end <= 24, got {}..{}",
                    self.work_start_hour, self.work_end_hour
                ),
            });
        }
        if !(self.speed_mean_mps.is_finite() && self.speed_mean_mps > 0.0) {
            return Err(MobilityError::InvalidParameter {
                name: "speed_mean",
                reason: "must be finite and strictly positive".to_string(),
            });
        }
        if self.hotspot_count == 0 {
            return Err(MobilityError::InvalidParameter {
                name: "hotspot_count",
                reason: "at least one hotspot is required".to_string(),
            });
        }
        Ok(())
    }

    /// Generates the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::InvalidParameter`] for invalid configuration.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Dataset, MobilityError> {
        self.validate()?;
        let city = CityModel::san_francisco(self.hotspot_count, rng)?;
        let projection = *city.projection();
        let dt = self.sampling_interval.as_f64();
        let noise = self.gps_noise.as_f64();
        let day = 86_400.0;

        let traces: Result<Vec<Trace>, MobilityError> = (0..self.users)
            .map(|i| {
                let user = UserId::new(self.first_user_id + i as u64);
                let home = projection.project(city.sample_stop_location(rng));
                let work = projection.project(city.sample_stop_location(rng));
                let speed = sample_normal(rng, self.speed_mean_mps, 1.0).max(1.0);
                let commute_time = home.distance_to(work).as_f64() / speed;

                let mut records: Vec<Record> = Vec::new();
                let emit = |records: &mut Vec<Record>, t: f64, p: Point, rng: &mut R| {
                    let observed = gps_jitter(rng, p, noise);
                    records.push(Record::new(Seconds::new(t), projection.unproject(observed)));
                };

                for d in 0..self.days {
                    let day_start = d as f64 * day;
                    let leave_home = day_start + self.work_start_hour * 3_600.0 - commute_time;
                    let arrive_work = day_start + self.work_start_hour * 3_600.0;
                    let leave_work = day_start + self.work_end_hour * 3_600.0;
                    let arrive_home = leave_work + commute_time;
                    let day_end = day_start + day;

                    let mut t = day_start;
                    while t < day_end {
                        let position = if t < leave_home {
                            home
                        } else if t < arrive_work {
                            let progress = ((t - leave_home) / commute_time).clamp(0.0, 1.0);
                            home.lerp(work, progress)
                        } else if t < leave_work {
                            work
                        } else if t < arrive_home {
                            let progress = ((t - leave_work) / commute_time).clamp(0.0, 1.0);
                            work.lerp(home, progress)
                        } else {
                            home
                        };
                        emit(&mut records, t, position, rng);
                        t += dt;
                    }
                }
                Trace::new(user, records)
            })
            .collect();
        Dataset::new(traces?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(CommuterBuilder::new().users(0).build(&mut rng).is_err());
        assert!(CommuterBuilder::new().days(0).build(&mut rng).is_err());
        assert!(CommuterBuilder::new().sampling_interval_s(0.0).build(&mut rng).is_err());
        assert!(CommuterBuilder::new().work_hours(18.0, 9.0).build(&mut rng).is_err());
        assert!(CommuterBuilder::new().work_hours(-1.0, 9.0).build(&mut rng).is_err());
        assert!(CommuterBuilder::new().speed_mps(0.0).build(&mut rng).is_err());
        assert!(CommuterBuilder::new().hotspots(0).build(&mut rng).is_err());
    }

    #[test]
    fn one_day_one_user_has_expected_structure() {
        let mut rng = StdRng::seed_from_u64(2);
        let dataset = CommuterBuilder::new()
            .users(1)
            .days(1)
            .sampling_interval_s(120.0)
            .build(&mut rng)
            .unwrap();
        let trace = dataset.trace_at(0);
        // 86400 / 120 = 720 records.
        assert_eq!(trace.len(), 720);
        assert!(trace.duration().to_hours() > 23.5);

        // The user dwells at two dominant locations (home and work): the two
        // most-visited 200 m cells should hold the vast majority of records.
        let bounds = dataset.bounding_box().unwrap().expanded(0.1);
        let grid = geopriv_geo::Grid::new(bounds, geopriv_geo::Meters::new(200.0)).unwrap();
        let mut counts: Vec<usize> =
            grid.histogram(trace.iter().map(|r| r.location())).into_values().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_two: usize = counts.iter().take(2).sum();
        assert!(
            top_two as f64 / trace.len() as f64 > 0.7,
            "top-2 cells only cover {top_two} of {} records",
            trace.len()
        );
    }

    #[test]
    fn multiple_days_repeat_the_routine() {
        let mut rng = StdRng::seed_from_u64(3);
        let dataset = CommuterBuilder::new()
            .users(2)
            .days(3)
            .sampling_interval_s(300.0)
            .build(&mut rng)
            .unwrap();
        for trace in &dataset {
            assert!(trace.duration().to_hours() > 70.0);
            // Radius of gyration stays city-scale (home/work are fixed).
            assert!(trace.radius_of_gyration().to_kilometers() < 20.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let build = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            CommuterBuilder::new().users(2).days(1).build(&mut rng).unwrap()
        };
        assert_eq!(build(5), build(5));
        assert_ne!(build(5), build(6));
    }
}
