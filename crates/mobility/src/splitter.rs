//! Splitting traces and datasets along the time axis.
//!
//! The paper's framework studies one observation period at a time; extending
//! it to "other datasets" (future work) or validating a fitted model on a
//! later period both require carving a dataset into time windows — typically
//! days. This module provides that plumbing.

use crate::dataset::Dataset;
use crate::error::MobilityError;
use crate::trace::{Trace, TraceView};
use geopriv_geo::Seconds;

/// Splits a trace into consecutive windows of `window` duration, dropping
/// windows that end up empty.
///
/// Windows are aligned on the trace's first timestamp. Each returned trace
/// keeps the original user id.
///
/// # Errors
///
/// Returns [`MobilityError::InvalidParameter`] for a non-positive window.
///
/// # Examples
///
/// ```
/// use geopriv_mobility::{splitter, Record, Trace, UserId};
/// use geopriv_geo::{GeoPoint, Seconds};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let records: Vec<Record> = (0..48)
///     .map(|i| Record::new(Seconds::new(i as f64 * 3_600.0), GeoPoint::clamped(37.77, -122.41)))
///     .collect();
/// let trace = Trace::new(UserId::new(1), records)?;
/// let days = splitter::split_trace_by_window(trace.view(), Seconds::from_hours(24.0))?;
/// assert_eq!(days.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn split_trace_by_window(
    trace: TraceView<'_>,
    window: Seconds,
) -> Result<Vec<Trace>, MobilityError> {
    if !(window.as_f64().is_finite() && window.as_f64() > 0.0) {
        return Err(MobilityError::InvalidParameter {
            name: "window",
            reason: "window duration must be finite and strictly positive".to_string(),
        });
    }
    let start = trace.first().timestamp().as_f64();
    let end = trace.last().timestamp().as_f64();
    let width = window.as_f64();
    let mut windows = Vec::new();
    let mut window_start = start;
    while window_start <= end {
        let window_end = window_start + width;
        if let Ok(piece) = trace.time_window(Seconds::new(window_start), Seconds::new(window_end)) {
            windows.push(piece);
        }
        window_start = window_end;
    }
    // The final record falls exactly on a window boundary edge case: ensure it
    // is not lost (time_window is half-open).
    if let Some(last_piece) = windows.last() {
        if last_piece.last().timestamp() < trace.last().timestamp() {
            if let Ok(piece) =
                trace.time_window(Seconds::new(window_start), Seconds::new(window_start + width))
            {
                windows.push(piece);
            }
        }
    }
    Ok(windows)
}

/// Splits every trace of a dataset into windows of `window` duration and
/// regroups the pieces into one dataset per window index.
///
/// The i-th returned dataset contains, for every user that has records in her
/// i-th window, that window's trace. Users missing from a window are simply
/// absent from that dataset.
///
/// # Errors
///
/// Returns [`MobilityError::InvalidParameter`] for a non-positive window and
/// [`MobilityError::EmptyDataset`] if no window contains any record.
pub fn split_dataset_by_window(
    dataset: &Dataset,
    window: Seconds,
) -> Result<Vec<Dataset>, MobilityError> {
    let mut per_window: Vec<Vec<Trace>> = Vec::new();
    for trace in dataset {
        let pieces = split_trace_by_window(trace, window)?;
        for (i, piece) in pieces.into_iter().enumerate() {
            if per_window.len() <= i {
                per_window.resize_with(i + 1, Vec::new);
            }
            per_window[i].push(piece);
        }
    }
    let datasets: Vec<Dataset> = per_window
        .into_iter()
        .filter(|traces| !traces.is_empty())
        .map(Dataset::new)
        .collect::<Result<_, _>>()?;
    if datasets.is_empty() {
        return Err(MobilityError::EmptyDataset);
    }
    Ok(datasets)
}

/// Splits a dataset into two halves by alternating traces (even indices to
/// the first half, odd indices to the second).
///
/// This is the split used for hold-out validation of fitted models.
///
/// # Errors
///
/// Returns [`MobilityError::EmptyDataset`] if the dataset has fewer than two traces.
pub fn split_dataset_in_half(dataset: &Dataset) -> Result<(Dataset, Dataset), MobilityError> {
    if dataset.len() < 2 {
        return Err(MobilityError::EmptyDataset);
    }
    let mut even = Vec::new();
    let mut odd = Vec::new();
    for (i, trace) in dataset.iter().enumerate() {
        if i % 2 == 0 {
            even.push(trace.to_trace());
        } else {
            odd.push(trace.to_trace());
        }
    }
    Ok((Dataset::new(even)?, Dataset::new(odd)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, UserId};
    use geopriv_geo::GeoPoint;

    fn hourly_trace(user: u64, hours: usize) -> Trace {
        let records: Vec<Record> = (0..hours)
            .map(|i| {
                Record::new(
                    Seconds::new(i as f64 * 3_600.0),
                    GeoPoint::new(37.75 + i as f64 * 1e-3, -122.45).unwrap(),
                )
            })
            .collect();
        Trace::new(UserId::new(user), records).unwrap()
    }

    #[test]
    fn trace_splitting_by_day() {
        let trace = hourly_trace(1, 72); // three days of hourly records
        let days = split_trace_by_window(trace.view(), Seconds::from_hours(24.0)).unwrap();
        assert_eq!(days.len(), 3);
        assert_eq!(days.iter().map(Trace::len).sum::<usize>(), 72);
        for day in &days {
            assert_eq!(day.user(), trace.user());
            assert!(day.duration().to_hours() <= 24.0);
        }
        // Window order is chronological and non-overlapping.
        assert!(days[0].last().timestamp() < days[1].first().timestamp());
        assert!(days[1].last().timestamp() < days[2].first().timestamp());
    }

    #[test]
    fn invalid_windows_are_rejected() {
        let trace = hourly_trace(1, 5);
        assert!(split_trace_by_window(trace.view(), Seconds::new(0.0)).is_err());
        assert!(split_trace_by_window(trace.view(), Seconds::new(-60.0)).is_err());
        assert!(split_trace_by_window(trace.view(), Seconds::new(f64::NAN)).is_err());
    }

    #[test]
    fn short_trace_yields_a_single_window() {
        let trace = hourly_trace(2, 3);
        let windows = split_trace_by_window(trace.view(), Seconds::from_hours(24.0)).unwrap();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].len(), 3);
    }

    #[test]
    fn dataset_splitting_groups_windows_across_users() {
        let dataset = Dataset::new(vec![hourly_trace(1, 48), hourly_trace(2, 24)]).unwrap();
        let windows = split_dataset_by_window(&dataset, Seconds::from_hours(24.0)).unwrap();
        assert_eq!(windows.len(), 2);
        // Day 0 has both users; day 1 only the first one.
        assert_eq!(windows[0].user_count(), 2);
        assert_eq!(windows[1].user_count(), 1);
        assert!(split_dataset_by_window(&dataset, Seconds::new(0.0)).is_err());
    }

    #[test]
    fn half_splitting_alternates_traces() {
        let dataset = Dataset::new(vec![
            hourly_trace(1, 4),
            hourly_trace(2, 4),
            hourly_trace(3, 4),
            hourly_trace(4, 4),
            hourly_trace(5, 4),
        ])
        .unwrap();
        let (a, b) = split_dataset_in_half(&dataset).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2);
        assert_eq!(a.len() + b.len(), dataset.len());
        // No trace appears in both halves.
        for trace in &a {
            assert!(b.traces_of(trace.user()).is_empty());
        }
        let single = Dataset::new(vec![hourly_trace(9, 4)]).unwrap();
        assert!(split_dataset_in_half(&single).is_err());
    }
}
