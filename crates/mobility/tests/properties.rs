//! Property-based tests of the mobility substrate and its generators.

use geopriv_geo::{GeoPoint, Meters, Seconds};
use geopriv_mobility::generator::{
    CityModel, CommuterBuilder, RandomWaypointBuilder, TaxiFleetBuilder,
};
use geopriv_mobility::{io, Dataset, DatasetProperties, Record, Trace, UserId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arbitrary_records(max_len: usize) -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec((0.0f64..100_000.0, 37.6f64..37.9, -122.6f64..-122.3), 1..max_len)
        .prop_map(|entries| {
            entries
                .into_iter()
                .map(|(t, lat, lon)| Record::new(Seconds::new(t), GeoPoint::clamped(lat, lon)))
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn from_unordered_always_yields_a_chronological_trace(records in arbitrary_records(80)) {
        let trace = Trace::from_unordered(UserId::new(1), records).unwrap();
        for w in trace.to_records().windows(2) {
            prop_assert!(w[0].timestamp() <= w[1].timestamp());
        }
        prop_assert!(trace.duration().as_f64() >= 0.0);
        prop_assert!(trace.travelled_distance().as_f64() >= 0.0);
        prop_assert!(trace.radius_of_gyration().as_f64() >= 0.0);
        prop_assert!(trace.bounding_box().is_ok());
    }

    #[test]
    fn csv_roundtrip_preserves_structure(records in arbitrary_records(60), user_count in 1u64..4) {
        let traces: Vec<Trace> = (0..user_count)
            .map(|u| Trace::from_unordered(UserId::new(u), records.clone()).unwrap())
            .collect();
        let dataset = Dataset::new(traces).unwrap();

        let mut buffer = Vec::new();
        io::write_csv(&dataset, &mut buffer).unwrap();
        let parsed = io::read_csv(buffer.as_slice()).unwrap();
        prop_assert_eq!(parsed.user_count(), dataset.user_count());
        prop_assert_eq!(parsed.record_count(), dataset.record_count());
        for (a, b) in dataset.paired_with(&parsed).unwrap() {
            prop_assert_eq!(a.len(), b.len());
            for (ra, rb) in a.iter().zip(b.iter()) {
                prop_assert!((ra.location().latitude() - rb.location().latitude()).abs() < 1e-5);
                prop_assert!((ra.location().longitude() - rb.location().longitude()).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn taxi_generator_respects_its_configuration(
        drivers in 1usize..4,
        hours in 1.0f64..6.0,
        interval in 20.0f64..120.0,
        seed in 0u64..300,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dataset = TaxiFleetBuilder::new()
            .drivers(drivers)
            .duration_hours(hours)
            .sampling_interval_s(interval)
            .build(&mut rng)
            .unwrap();
        prop_assert_eq!(dataset.user_count(), drivers);
        let bounds = CityModel::default_bounds().expanded(0.25);
        for trace in &dataset {
            prop_assert!(trace.duration().to_hours() <= hours + 1e-9);
            prop_assert!(trace.median_sampling_interval().as_f64() <= interval + 1e-9);
            for record in trace {
                prop_assert!(bounds.contains(record.location()));
            }
        }
    }

    #[test]
    fn generators_are_deterministic_under_a_seed(seed in 0u64..200) {
        let build_taxi = |s| {
            let mut rng = StdRng::seed_from_u64(s);
            TaxiFleetBuilder::new().drivers(2).duration_hours(1.0).build(&mut rng).unwrap()
        };
        prop_assert_eq!(build_taxi(seed), build_taxi(seed));

        let build_rw = |s| {
            let mut rng = StdRng::seed_from_u64(s);
            RandomWaypointBuilder::new().users(2).duration_hours(1.0).build(&mut rng).unwrap()
        };
        prop_assert_eq!(build_rw(seed), build_rw(seed));
    }

    #[test]
    fn commuters_have_stable_home_and_work_cells(users in 1usize..3, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dataset = CommuterBuilder::new()
            .users(users)
            .days(1)
            .sampling_interval_s(300.0)
            .build(&mut rng)
            .unwrap();
        prop_assert_eq!(dataset.user_count(), users);
        for trace in &dataset {
            // A commuter's radius of gyration stays within the city.
            prop_assert!(trace.radius_of_gyration().to_kilometers() < 25.0);
            prop_assert!(trace.len() > 100);
        }
    }

    #[test]
    fn columnar_roundtrip_is_bit_identical(
        records in arbitrary_records(60),
        user_count in 1u64..5,
        traces_per_user in 1usize..3,
    ) {
        let mut traces = Vec::new();
        for u in 0..user_count {
            for _ in 0..traces_per_user {
                traces.push(Trace::from_unordered(UserId::new(u), records.clone()).unwrap());
            }
        }
        let dataset = Dataset::new(traces.clone()).unwrap();

        // Row round-trip: Vec<Trace> -> columnar Dataset -> Vec<Trace> gives
        // back every record bit for bit (the inputs are already sorted by
        // user, so the construction sort is a no-op).
        prop_assert_eq!(dataset.to_traces(), traces);

        // The span table tiles the column buffers exactly: contiguous,
        // gap-free, non-empty, covering every record.
        let mut cursor = 0usize;
        for span in dataset.spans() {
            prop_assert_eq!(span.start(), cursor);
            prop_assert!(!span.is_empty());
            cursor += span.len();
        }
        prop_assert_eq!(cursor, dataset.record_count());
        prop_assert_eq!(dataset.timestamps().len(), cursor);
        prop_assert_eq!(dataset.latitudes().len(), cursor);
        prop_assert_eq!(dataset.longitudes().len(), cursor);

        // Every view reads exactly its trace's columns.
        for (view, trace) in dataset.iter().zip(&traces) {
            prop_assert_eq!(view.user(), trace.user());
            prop_assert_eq!(view.timestamps(), trace.timestamps());
            prop_assert_eq!(view.latitudes(), trace.latitudes());
            prop_assert_eq!(view.longitudes(), trace.longitudes());
        }

        // The per-user index agrees with a naive scan over all traces.
        for user in dataset.users() {
            let indexed: Vec<Trace> =
                dataset.traces_of(user).into_iter().map(|v| v.to_trace()).collect();
            let naive: Vec<Trace> = dataset
                .iter()
                .filter(|v| v.user() == user)
                .map(|v| v.to_trace())
                .collect();
            prop_assert_eq!(indexed, naive);
        }
    }

    #[test]
    fn dataset_properties_are_finite_and_consistent(
        drivers in 2usize..5,
        hours in 1.0f64..4.0,
        cell in 100.0f64..500.0,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dataset = TaxiFleetBuilder::new()
            .drivers(drivers)
            .duration_hours(hours)
            .sampling_interval_s(60.0)
            .build(&mut rng)
            .unwrap();
        let properties = DatasetProperties::compute(&dataset, Meters::new(cell)).unwrap();
        prop_assert_eq!(properties.rows().len(), dataset.len());
        for row in properties.rows() {
            for value in row.as_vector() {
                prop_assert!(value.is_finite() && value >= 0.0);
            }
            prop_assert!(row.visited_cells >= 1.0);
            prop_assert!(row.visit_entropy_bits <= (row.record_count).log2() + 1e-9);
        }
    }
}
