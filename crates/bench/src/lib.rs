//! # geopriv-bench
//!
//! Reproduction harness for the evaluation artifacts of Cerf et al.,
//! *Toward an Easy Configuration of Location Privacy Protection Mechanisms*
//! (Middleware 2016).
//!
//! Each binary regenerates one artifact:
//!
//! | Binary | Artifact |
//! |---|---|
//! | `fig1` | Figure 1a (privacy vs ε) and Figure 1b (utility vs ε) |
//! | `equation2` | the log-linear fit of Equation 2 (a, b, α, β) |
//! | `operating_point` | the ε = 0.01 operating point (≤ 10 % privacy, ≈ 80 % utility) |
//! | `pca_properties` | the PCA-based dataset-property selection of §3 step 1 |
//! | `ablations` | sensitivity of the curves to metric/dataset parameters and other LPPMs |
//! | `sweep` | single-sweep throughput baseline (`BENCH_sweep.json`) |
//! | `grid` | 2-D grid-study throughput baseline (`BENCH_grid.json`) |
//! | `campaign` | campaign-vs-independent-sweeps baseline (`BENCH_campaign.json`) |
//! | `serve` | serving-path loopback throughput baseline (`BENCH_serve.json`) |
//!
//! The Criterion benches (`benches/`) measure the throughput of the
//! components the figures depend on (protection, POI extraction, metric
//! evaluation, end-to-end sweep points).
//!
//! This library exposes the shared scenario: a deterministic synthetic
//! taxi-fleet dataset standing in for cabspotting, plus helpers to run the
//! paper's sweep at several fidelity levels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use geopriv_core::prelude::*;
use geopriv_metrics::{AreaCoverage, PoiRetrieval};
use geopriv_mobility::generator::TaxiFleetBuilder;
use geopriv_mobility::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed used by every reproduction binary so that figures are identical
/// across runs and machines.
pub const REPRODUCTION_SEED: u64 = 20161212; // Middleware 2016 started on Dec 12.

/// Fidelity level of a reproduction run: how much synthetic data and how many
/// sweep points to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// A few drivers and sweep points — seconds of runtime, used by CI and
    /// the Criterion benches.
    Smoke,
    /// The default: enough data for the curve shapes and the Equation 2 fit
    /// to be stable (tens of seconds).
    Standard,
    /// Closer to the paper's dataset scale (minutes).
    Full,
}

impl Fidelity {
    /// Parses a fidelity level from a command-line argument.
    pub fn from_arg(arg: &str) -> Option<Self> {
        match arg {
            "smoke" => Some(Self::Smoke),
            "standard" => Some(Self::Standard),
            "full" => Some(Self::Full),
            _ => None,
        }
    }

    /// Number of simulated taxi drivers.
    pub fn drivers(self) -> usize {
        match self {
            Self::Smoke => 4,
            Self::Standard => 20,
            Self::Full => 50,
        }
    }

    /// Observation duration per driver, in hours.
    pub fn duration_hours(self) -> f64 {
        match self {
            Self::Smoke => 6.0,
            Self::Standard => 12.0,
            Self::Full => 24.0,
        }
    }

    /// Number of ε sweep points.
    pub fn sweep_points(self) -> usize {
        match self {
            Self::Smoke => 9,
            Self::Standard => 25,
            Self::Full => 33,
        }
    }

    /// Number of protection repetitions per sweep point.
    pub fn repetitions(self) -> usize {
        match self {
            Self::Smoke => 1,
            Self::Standard => 1,
            Self::Full => 3,
        }
    }
}

/// Builds the deterministic synthetic San-Francisco taxi dataset used by all
/// reproduction binaries (the cabspotting stand-in).
///
/// # Panics
///
/// Panics only if the static generator configuration is invalid, which the
/// test suite rules out.
pub fn reproduction_dataset(fidelity: Fidelity) -> Dataset {
    let mut rng = StdRng::seed_from_u64(REPRODUCTION_SEED);
    TaxiFleetBuilder::new()
        .drivers(fidelity.drivers())
        .duration_hours(fidelity.duration_hours())
        .sampling_interval_s(30.0)
        .build(&mut rng)
        .expect("static reproduction configuration is valid")
}

/// Runs the paper's ε sweep (Figure 1) for the given fidelity.
///
/// # Errors
///
/// Propagates framework errors (none are expected for the built-in scenario).
pub fn run_paper_sweep(dataset: &Dataset, fidelity: Fidelity) -> Result<SweepResult, CoreError> {
    let system = SystemDefinition::paper_geoi();
    ExperimentRunner::new(campaign_config(fidelity)).run(&system, dataset)
}

/// The three systems of the campaign workloads: the paper's GEO-I system plus
/// grid-cloaking and Gaussian-perturbation variants sharing the same
/// privacy/utility metric pair — the "multiple LPPMs, same objectives" study
/// the framework was built for.
pub fn campaign_systems() -> Vec<SystemDefinition> {
    vec![
        SystemDefinition::paper_geoi(),
        SystemDefinition::with_pair(
            Box::new(GridCloakingFactory::new()),
            Box::new(PoiRetrieval::default()),
            Box::new(AreaCoverage::default()),
        )
        .expect("distinct metric names"),
        SystemDefinition::with_pair(
            Box::new(GaussianPerturbationFactory::new()),
            Box::new(PoiRetrieval::default()),
            Box::new(AreaCoverage::default()),
        )
        .expect("distinct metric names"),
    ]
}

/// Builder for the `BENCH_*.json` baseline files the bench binaries emit, so
/// every baseline shares one diff-friendly format (two-space indent, one key
/// per line, insertion order preserved).
#[derive(Debug, Clone, Default)]
pub struct BenchJson {
    entries: Vec<(String, String)>,
}

impl BenchJson {
    /// Starts a baseline for the named bench (the `"bench"` key).
    pub fn new(bench: &str) -> Self {
        Self::default().string("bench", bench)
    }

    /// Escapes a string for embedding inside a JSON string literal.
    fn escape(raw: &str) -> String {
        let mut out = String::with_capacity(raw.len());
        for c in raw.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Adds a string field (the value is JSON-escaped).
    #[must_use]
    pub fn string(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.entries.push((Self::escape(key), format!("\"{}\"", Self::escape(&value.to_string()))));
        self
    }

    /// Adds an integer field.
    #[must_use]
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.entries.push((Self::escape(key), value.to_string()));
        self
    }

    /// Adds a float field rendered with `decimals` fractional digits.
    /// Non-finite values render as `null` (JSON has no inf/NaN tokens).
    #[must_use]
    pub fn float(mut self, key: &str, value: f64, decimals: usize) -> Self {
        let rendered =
            if value.is_finite() { format!("{value:.decimals$}") } else { "null".to_string() };
        self.entries.push((Self::escape(key), rendered));
        self
    }

    /// Renders the JSON object.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.entries.iter().enumerate() {
            out.push_str(&format!("  \"{key}\": {value}"));
            out.push_str(if i + 1 < self.entries.len() { ",\n" } else { "\n" });
        }
        out.push('}');
        out
    }

    /// Writes the rendered object (plus a trailing newline) to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, format!("{}\n", self.render()))
    }
}

/// Points per configuration axis of the 2-D grid study at a given
/// fidelity — kept below the 1-D sweep counts because the grid squares them.
pub fn grid_points_per_axis(fidelity: Fidelity) -> usize {
    match fidelity {
        Fidelity::Smoke => 5,
        Fidelity::Standard => 9,
        Fidelity::Full => 13,
    }
}

/// The 2-D study system of the `grid` bench: GEO-I ε × grid-cloaking cell
/// size composed as one pipeline, with the paper's metric pair.
///
/// # Panics
///
/// Panics only if the static configuration is invalid, which the test suite
/// rules out.
pub fn grid_study_system() -> SystemDefinition {
    SystemDefinition::with_pair(
        Box::new(
            PipelineFactory::new().then(GeoIndistinguishabilityFactory::new()).then(
                GridCloakingFactory::with_range(100.0, 2000.0).expect("static range is valid"),
            ),
        ),
        Box::new(PoiRetrieval::default()),
        Box::new(AreaCoverage::default()),
    )
    .expect("distinct metric names")
}

/// Runs the 2-D grid study (full factorial, `grid_points_per_axis` values
/// per axis) for the given fidelity.
///
/// # Errors
///
/// Propagates framework errors (none are expected for the built-in scenario).
pub fn run_grid_study(dataset: &Dataset, fidelity: Fidelity) -> Result<SweepResult, CoreError> {
    let config =
        SweepConfig { points: grid_points_per_axis(fidelity), ..campaign_config(fidelity) };
    ExperimentRunner::with_plan(SweepPlan::grid(config)).run(&grid_study_system(), dataset)
}

/// Coarse-pass points per axis of the adaptive study — below
/// [`grid_points_per_axis`] on purpose: the whole point of
/// [`SweepMode::Adaptive`] is to start coarse and let model-guided
/// refinement spend the rest of the budget.
pub fn adaptive_coarse_points_per_axis(fidelity: Fidelity) -> usize {
    match fidelity {
        Fidelity::Smoke => 3,
        Fidelity::Standard => 5,
        Fidelity::Full => 7,
    }
}

/// Total evaluation budget (coarse pass + refinement) of the adaptive study,
/// kept at or below 40 % of the full grid's evaluation count at the same
/// fidelity — the headline saving `BENCH_adaptive.json` tracks.
pub fn adaptive_budget(fidelity: Fidelity) -> usize {
    match fidelity {
        Fidelity::Smoke => 10,    // vs 5² = 25 grid evaluations
        Fidelity::Standard => 32, // vs 9² = 81
        Fidelity::Full => 67,     // vs 13² = 169
    }
}

/// Runs the adaptive counterpart of [`run_grid_study`]: same 2-D system,
/// coarse `adaptive_coarse_points_per_axis` grid, then model-guided
/// refinement up to `adaptive_budget` total evaluations.
///
/// # Errors
///
/// Propagates framework errors (none are expected for the built-in scenario).
pub fn run_adaptive_study(dataset: &Dataset, fidelity: Fidelity) -> Result<SweepResult, CoreError> {
    let config = SweepConfig {
        points: adaptive_coarse_points_per_axis(fidelity),
        ..campaign_config(fidelity)
    };
    ExperimentRunner::with_plan(SweepPlan::adaptive(config, adaptive_budget(fidelity)))
        .run(&grid_study_system(), dataset)
}

/// Number of users of the per-user throughput bench's scaled fleet —
/// unlike [`reproduction_dataset`] (whose record-heavy traces exist for the
/// figure reproductions), the per-user bench wants *many cheap users*, since
/// per-user fit+recommend cost scales with the user count.
pub fn per_user_bench_users(fidelity: Fidelity) -> usize {
    match fidelity {
        Fidelity::Smoke => 500,
        Fidelity::Standard => 10_000,
        Fidelity::Full => 50_000,
    }
}

/// Builds the compact scaled fleet ([`geopriv_mobility::generator::scaled`],
/// ~16 records per user) the per-user throughput bench runs on.
///
/// # Panics
///
/// Panics only if the static generator configuration is invalid, which the
/// test suite rules out.
pub fn per_user_bench_dataset(fidelity: Fidelity) -> Dataset {
    geopriv_mobility::generator::scaled(per_user_bench_users(fidelity), REPRODUCTION_SEED)
        .expect("static scaled-fleet configuration is valid")
}

/// Parses `--out <path>` from the command line, defaulting to `default`.
pub fn out_path_from_args(default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| default.to_string())
}

/// Reads one kB-valued field of `/proc/self/status` (Linux only — `None`
/// elsewhere or when the field is absent).
fn proc_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Current resident set size in kB (`VmRSS`), when the platform exposes it.
pub fn current_rss_kb() -> Option<u64> {
    proc_status_kb("VmRSS:")
}

/// Peak resident set size in kB (`VmHWM`), when the platform exposes it.
pub fn peak_rss_kb() -> Option<u64> {
    proc_status_kb("VmHWM:")
}

/// Resets the process's peak-RSS high-water mark (`VmHWM`) to the current
/// RSS, so a following [`peak_rss_kb`] reading measures only the work in
/// between. Best-effort: silently does nothing where the kernel interface
/// (`/proc/self/clear_refs`) is unavailable.
pub fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Median of a list of timings (sorts in place).
///
/// # Panics
///
/// Panics on an empty list or non-finite timings (never produced by the
/// bench binaries).
pub fn median_seconds(times: &mut [f64]) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    times[times.len() / 2]
}

/// The sweep configuration the campaign workloads use at a given fidelity —
/// the same configuration [`run_paper_sweep`] applies per system.
pub fn campaign_config(fidelity: Fidelity) -> SweepConfig {
    SweepConfig {
        points: fidelity.sweep_points(),
        repetitions: fidelity.repetitions(),
        seed: REPRODUCTION_SEED,
        parallel: true,
    }
}

/// Parses `--fidelity <level>` from command-line arguments, defaulting to
/// [`Fidelity::Standard`]; unknown levels fall back to the default.
pub fn fidelity_from_args() -> Fidelity {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--fidelity")
        .and_then(|w| Fidelity::from_arg(&w[1]))
        .unwrap_or(Fidelity::Standard)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_parsing_and_scaling() {
        assert_eq!(Fidelity::from_arg("smoke"), Some(Fidelity::Smoke));
        assert_eq!(Fidelity::from_arg("standard"), Some(Fidelity::Standard));
        assert_eq!(Fidelity::from_arg("full"), Some(Fidelity::Full));
        assert_eq!(Fidelity::from_arg("huge"), None);
        assert!(Fidelity::Full.drivers() > Fidelity::Smoke.drivers());
        assert!(Fidelity::Full.sweep_points() > Fidelity::Smoke.sweep_points());
        assert!(Fidelity::Full.duration_hours() > Fidelity::Smoke.duration_hours());
        assert!(Fidelity::Full.repetitions() >= Fidelity::Smoke.repetitions());
    }

    #[test]
    fn reproduction_dataset_is_deterministic() {
        let a = reproduction_dataset(Fidelity::Smoke);
        let b = reproduction_dataset(Fidelity::Smoke);
        assert_eq!(a, b);
        assert_eq!(a.user_count(), Fidelity::Smoke.drivers());
    }

    #[test]
    fn campaign_workload_is_well_formed() {
        let systems = campaign_systems();
        assert_eq!(systems.len(), 3);
        // Three distinct mechanisms sharing one metric pair.
        let keys: std::collections::BTreeSet<String> =
            systems.iter().map(|s| s.cache_key()).collect();
        assert_eq!(keys.len(), 3);
        for system in &systems {
            assert_eq!(
                system.suite().ids(),
                vec![MetricId::new("poi-retrieval"), MetricId::new("area-coverage")]
            );
        }
        let config = campaign_config(Fidelity::Smoke);
        assert_eq!(config.points, Fidelity::Smoke.sweep_points());
        assert_eq!(config.seed, REPRODUCTION_SEED);
        assert!(config.parallel);
    }

    #[test]
    fn smoke_sweep_produces_figure_shaped_curves() {
        let dataset = reproduction_dataset(Fidelity::Smoke);
        let sweep = run_paper_sweep(&dataset, Fidelity::Smoke).unwrap();
        assert_eq!(sweep.len(), Fidelity::Smoke.sweep_points());
        // Figure 1 shape: both metrics higher at epsilon = 1 than at 1e-4.
        for column in &sweep.columns {
            assert!(column.means.last().unwrap() > column.means.first().unwrap());
        }
    }

    #[test]
    fn adaptive_budget_stays_under_forty_percent_of_the_grid() {
        for fidelity in [Fidelity::Smoke, Fidelity::Standard, Fidelity::Full] {
            let grid = grid_points_per_axis(fidelity) * grid_points_per_axis(fidelity);
            let budget = adaptive_budget(fidelity);
            // budget <= 0.40 * grid, in integers.
            assert!(budget * 5 <= grid * 2, "{fidelity:?}: budget {budget} vs grid {grid}");
            // The coarse pass fits inside the budget, leaving room to refine.
            let coarse = adaptive_coarse_points_per_axis(fidelity);
            assert!(coarse * coarse < budget, "{fidelity:?}: no refinement headroom");
        }
    }

    #[test]
    fn per_user_bench_fleet_is_deterministic_and_compact() {
        let a = per_user_bench_dataset(Fidelity::Smoke);
        assert_eq!(a.user_count(), per_user_bench_users(Fidelity::Smoke));
        assert_eq!(a, per_user_bench_dataset(Fidelity::Smoke));
        // The scaled profile keeps traces cheap: the bench measures per-user
        // modeling throughput, not raw record crunching.
        assert!(a.record_count() / a.user_count() <= 20);
    }

    #[test]
    fn bench_json_renders_stable_baselines() {
        let json = BenchJson::new("sweep")
            .string("fidelity", "Smoke")
            .int("points", 9)
            .float("seconds", 1.25, 3);
        assert_eq!(
            json.render(),
            "{\n  \"bench\": \"sweep\",\n  \"fidelity\": \"Smoke\",\n  \"points\": 9,\n  \
             \"seconds\": 1.250\n}"
        );
        let mut times = vec![3.0, 1.0, 2.0];
        assert_eq!(median_seconds(&mut times), 2.0);
    }

    #[test]
    fn bench_json_escapes_quotes_and_control_characters() {
        let json = BenchJson::new("x").string("note", "a \"quoted\\\" name\nnext");
        assert_eq!(
            json.render(),
            "{\n  \"bench\": \"x\",\n  \"note\": \"a \\\"quoted\\\\\\\" name\\nnext\"\n}"
        );
        // Non-finite floats degrade to null, never to invalid JSON tokens.
        let json = BenchJson::new("x").float("speedup", f64::INFINITY, 3);
        assert!(json.render().contains("\"speedup\": null"));
    }
}
