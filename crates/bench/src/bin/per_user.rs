//! Per-user fit+recommend throughput baseline: runs the paper's GEO-I sweep
//! once at per-user grain (untimed — the sweep cost is the `sweep` bench's
//! business), then times the per-user half of the pipeline — fitting one
//! model per (user, metric) from the shared sweep and recommending a
//! configuration point per user — and emits a `BENCH_peruser.json` baseline
//! reporting users/s.
//!
//! The dataset is the *scaled fleet* (thousands of users, ~16 records each),
//! not the record-heavy figure-reproduction fleet: per-user fit+recommend
//! cost scales with the user count, so a 20-user run would extrapolate a
//! meaningless users/s figure from fractions of a millisecond.
//!
//! ```text
//! cargo run -p geopriv-bench --release --bin per_user \
//!     [-- --fidelity smoke|standard|full] [--out BENCH_peruser.json]
//! ```

use geopriv_bench::{
    campaign_config, fidelity_from_args, median_seconds, out_path_from_args,
    per_user_bench_dataset, BenchJson,
};
use geopriv_core::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = fidelity_from_args();
    let out_path = out_path_from_args("BENCH_peruser.json");

    eprintln!("building the scaled taxi fleet ({fidelity:?})…");
    let dataset = per_user_bench_dataset(fidelity);
    let config = campaign_config(fidelity);
    let system = SystemDefinition::paper_geoi();

    eprintln!(
        "shared sweep: {} points at per-user grain over {} users…",
        config.points,
        dataset.user_count()
    );
    let plan = SweepPlan::grid(config).per_user();
    let sweep = ExperimentRunner::with_plan(plan).run(&system, &dataset)?;

    // The grain contract, asserted on every bench run: recording user curves
    // never changes the aggregate columns.
    let dataset_grain = ExperimentRunner::new(config).run(&system, &dataset)?;
    assert_eq!(sweep.columns, dataset_grain.columns, "per-user grain changed the aggregates");

    // Bounds chosen to be feasible on the scaled fleet's short traces (the
    // figure-reproduction bounds 0.25/0.60 have disjoint ε intervals there).
    let users = sweep.users().len();
    let objectives = Objectives::new()
        .require("poi-retrieval", at_most(0.45))?
        .require("area-coverage", at_least(0.45))?;

    // Warm-up (also the determinism reference for the timed rounds).
    eprintln!("warming up…");
    let fitted = Modeler::new().fit(&sweep)?;
    let reference_fits = Modeler::new().fit_per_user(&sweep)?;
    let reference =
        Configurator::new(fitted.clone()).recommend_per_user(&reference_fits, &objectives)?;

    const ROUNDS: usize = 5;
    let mut times = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        eprintln!("round {}/{ROUNDS}…", round + 1);
        let started = Instant::now();
        let fits = std::hint::black_box(Modeler::new().fit_per_user(&sweep)?);
        let recommendation = std::hint::black_box(
            Configurator::new(fitted.clone()).recommend_per_user(&fits, &objectives)?,
        );
        times.push(started.elapsed().as_secs_f64());
        assert_eq!(recommendation, reference, "per-user pipeline is not deterministic");
    }
    let seconds_fit_recommend = median_seconds(&mut times);

    let json = BenchJson::new("per_user")
        .string("fidelity", format!("{fidelity:?}"))
        .string("lppm", &sweep.lppm_name)
        .int("metrics", sweep.columns.len() as u64)
        .int("points", config.points as u64)
        .int("users", users as u64)
        .int("modeled_users", reference_fits.fitted_count() as u64)
        .int("feasible_users", reference.feasible_count() as u64)
        .int("fallback_users", reference.fallback_count() as u64)
        .int("records", dataset.record_count() as u64)
        .float("seconds_fit_recommend", seconds_fit_recommend, 6)
        .float("users_per_second", users as f64 / seconds_fit_recommend, 3);
    println!("{}", json.render());
    json.write(&out_path)?;
    eprintln!("baseline written to {out_path}");
    eprintln!(
        "fit+recommend off one shared sweep: {seconds_fit_recommend:.4}s for {users} users \
         ({:.1} users/s)",
        users as f64 / seconds_fit_recommend
    );
    Ok(())
}
