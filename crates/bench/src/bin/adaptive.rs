//! Adaptive-vs-grid study baseline: runs the 2-D configuration study (GEO-I
//! ε × grid-cloaking cell size) twice — once as the full factorial, once
//! through the staged adaptive planner (`SweepMode::Adaptive`, coarse pass +
//! model-guided refinement) — and emits a `BENCH_adaptive.json` baseline
//! recording the evaluation savings, wall-time of both paths and how far the
//! adaptive recommendation lands from the full-grid one.
//!
//! Contract asserted on every run: the adaptive study spends at most 40 % of
//! the grid's evaluations, and its recommended operating point predicts every
//! metric within 0.08 (absolute, on [0, 1]-valued metrics) of the full-grid
//! recommendation. (Measured drift: ~0.056 at Standard — the tolerance
//! leaves headroom, not slack for regressions of 2x.)
//!
//! ```text
//! cargo run -p geopriv-bench --release --bin adaptive \
//!     [-- --fidelity smoke|standard|full] [--out BENCH_adaptive.json]
//! ```

use geopriv_bench::{
    adaptive_budget, adaptive_coarse_points_per_axis, fidelity_from_args, grid_points_per_axis,
    median_seconds, out_path_from_args, reproduction_dataset, run_adaptive_study, run_grid_study,
    BenchJson,
};
use geopriv_core::prelude::*;
use std::time::Instant;

/// The tolerance (absolute, in metric units) within which the adaptive
/// recommendation must track the full-grid one.
const PREDICTION_TOLERANCE: f64 = 0.08;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = fidelity_from_args();
    let out_path = out_path_from_args("BENCH_adaptive.json");

    eprintln!("building the synthetic SF taxi dataset ({fidelity:?})…");
    let dataset = reproduction_dataset(fidelity);
    let per_axis = grid_points_per_axis(fidelity);
    let coarse = adaptive_coarse_points_per_axis(fidelity);
    let budget = adaptive_budget(fidelity);
    eprintln!(
        "grid {per_axis} x {per_axis} vs adaptive {coarse} x {coarse} + refinement \
         (budget {budget})"
    );

    // Untimed warm-ups that double as determinism references.
    eprintln!("warming up…");
    let grid_reference = run_grid_study(&dataset, fidelity)?;
    let adaptive_reference = run_adaptive_study(&dataset, fidelity)?;
    assert_eq!(grid_reference.len(), per_axis * per_axis);
    assert!(
        adaptive_reference.len() > coarse * coarse,
        "refinement never spent its budget ({} points)",
        adaptive_reference.len()
    );
    assert!(adaptive_reference.len() <= budget);
    // The headline contract: at most 40 % of the grid's evaluations.
    assert!(
        adaptive_reference.len() * 5 <= grid_reference.len() * 2,
        "adaptive spent {} of {} grid evaluations (> 40 %)",
        adaptive_reference.len(),
        grid_reference.len()
    );

    const ROUNDS: usize = 3;
    let mut grid_times = Vec::with_capacity(ROUNDS);
    let mut adaptive_times = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        eprintln!("round {}/{ROUNDS}…", round + 1);
        let started = Instant::now();
        let study = std::hint::black_box(run_grid_study(&dataset, fidelity)?);
        grid_times.push(started.elapsed().as_secs_f64());
        assert_eq!(study, grid_reference, "grid study is not deterministic across rounds");

        let started = Instant::now();
        let study = std::hint::black_box(run_adaptive_study(&dataset, fidelity)?);
        adaptive_times.push(started.elapsed().as_secs_f64());
        assert_eq!(study, adaptive_reference, "adaptive study is not deterministic across rounds");
    }
    let seconds_grid = median_seconds(&mut grid_times);
    let seconds_adaptive = median_seconds(&mut adaptive_times);

    // Both designs feed the same downstream pipeline: fit, then recommend
    // under objectives both studies can satisfy.
    let objectives = Objectives::new()
        .require("poi-retrieval", at_most(0.60))?
        .require("area-coverage", at_least(0.30))?;
    let grid_fit = Modeler::new().fit(&grid_reference)?;
    let adaptive_fit = Modeler::new().fit(&adaptive_reference)?;
    let grid_rec = Configurator::new(grid_fit).recommend(&objectives)?;
    let adaptive_rec = Configurator::new(adaptive_fit).recommend(&objectives)?;

    // Distance between the two operating points, measured where it matters:
    // in metric space, as the worst per-metric prediction delta.
    let prediction_delta = grid_rec
        .predictions
        .iter()
        .filter_map(|(id, grid_value)| {
            adaptive_rec.predicted(id).map(|adaptive_value| (adaptive_value - grid_value).abs())
        })
        .fold(0.0, f64::max);
    assert!(
        prediction_delta <= PREDICTION_TOLERANCE,
        "adaptive recommendation drifted {prediction_delta:.4} (> {PREDICTION_TOLERANCE}) \
         from the full-grid operating point"
    );

    let evaluations_saved =
        100.0 * (1.0 - adaptive_reference.len() as f64 / grid_reference.len() as f64);
    let mut json = BenchJson::new("adaptive")
        .string("fidelity", format!("{fidelity:?}"))
        .string("lppm", &grid_reference.lppm_name)
        .string("axes", grid_reference.space.names().join(" x "))
        .int("grid_evaluations", grid_reference.len() as u64)
        .int("coarse_points_per_axis", coarse as u64)
        .int("adaptive_budget", budget as u64)
        .int("adaptive_evaluations", adaptive_reference.len() as u64)
        .float("evaluations_saved_percent", evaluations_saved, 1)
        .float("seconds_grid", seconds_grid, 6)
        .float("seconds_adaptive", seconds_adaptive, 6)
        .float("adaptive_speedup", seconds_grid / seconds_adaptive, 3)
        .float("recommendation_prediction_delta", prediction_delta, 4)
        .float("prediction_tolerance", PREDICTION_TOLERANCE, 2);
    for (axis, value) in grid_rec.point.values() {
        json = json.float(&format!("grid_recommended_{axis}"), *value, 6);
    }
    for (axis, value) in adaptive_rec.point.values() {
        json = json.float(&format!("adaptive_recommended_{axis}"), *value, 6);
    }
    println!("{}", json.render());
    json.write(&out_path)?;
    eprintln!("baseline written to {out_path}");
    eprintln!(
        "adaptive: {} of {} evaluations ({evaluations_saved:.0}% saved), \
         {seconds_adaptive:.3}s vs {seconds_grid:.3}s, prediction delta {prediction_delta:.4}",
        adaptive_reference.len(),
        grid_reference.len()
    );
    Ok(())
}
