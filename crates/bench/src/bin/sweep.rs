//! Single-sweep throughput baseline: times the standard paper workload (one
//! GEO-I ε sweep of the reproduction dataset through `ExperimentRunner`) and
//! emits a `BENCH_sweep.json` baseline alongside `BENCH_campaign.json`, so
//! single-sweep regressions are visible independently of the campaign
//! engine's scheduling.
//!
//! ```text
//! cargo run -p geopriv-bench --release --bin sweep \
//!     [-- --fidelity smoke|standard|full] [--out BENCH_sweep.json]
//! ```

use geopriv_bench::{
    campaign_config, fidelity_from_args, median_seconds, out_path_from_args, reproduction_dataset,
    run_paper_sweep, BenchJson,
};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = fidelity_from_args();
    let out_path = out_path_from_args("BENCH_sweep.json");

    eprintln!("building the synthetic SF taxi dataset ({fidelity:?})…");
    let dataset = reproduction_dataset(fidelity);
    let config = campaign_config(fidelity);
    eprintln!(
        "sweep: {} points x {} repetitions over {} records",
        config.points,
        config.repetitions,
        dataset.record_count()
    );

    // Untimed warm-up (first-touch page faults, allocator) that doubles as a
    // determinism cross-check for the timed rounds.
    eprintln!("warming up…");
    let reference = run_paper_sweep(&dataset, fidelity)?;

    const ROUNDS: usize = 5;
    let mut times = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        eprintln!("round {}/{ROUNDS}…", round + 1);
        let started = Instant::now();
        let sweep = std::hint::black_box(run_paper_sweep(&dataset, fidelity)?);
        times.push(started.elapsed().as_secs_f64());
        assert_eq!(sweep, reference, "sweep is not deterministic across rounds");
    }
    let seconds_sweep = median_seconds(&mut times);
    let samples = config.points * config.repetitions;

    let json = BenchJson::new("sweep")
        .string("fidelity", format!("{fidelity:?}"))
        .string("lppm", &reference.lppm_name)
        .int("metrics", reference.columns.len() as u64)
        .int("points", config.points as u64)
        .int("repetitions", config.repetitions as u64)
        .int("drivers", dataset.user_count() as u64)
        .int("records", dataset.record_count() as u64)
        .float("seconds_sweep", seconds_sweep, 6)
        .float("samples_per_second", samples as f64 / seconds_sweep, 3);
    println!("{}", json.render());
    json.write(&out_path)?;
    eprintln!("baseline written to {out_path}");
    eprintln!("sweep: {seconds_sweep:.3}s ({samples} samples)");
    Ok(())
}
