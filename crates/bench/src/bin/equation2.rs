//! Reproduces **Equation 2** of the paper: the log-linear relationship
//! between ε and the two metrics, fitted on the non-saturated zone of the
//! Figure 1 sweep.
//!
//! ```text
//! ln ε = (Pr − a)/b = (Ut − α)/β
//! paper fit: a = 0.84, b = 0.17, α = 1.21, β = 0.09
//! ```
//!
//! ```text
//! cargo run -p geopriv-bench --release --bin equation2 [-- --fidelity smoke|standard|full]
//! ```

use geopriv_bench::{fidelity_from_args, reproduction_dataset, run_paper_sweep};
use geopriv_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = fidelity_from_args();
    eprintln!("building the synthetic SF taxi dataset ({fidelity:?})…");
    let dataset = reproduction_dataset(fidelity);
    eprintln!("sweeping epsilon and fitting Equation 2…");
    let sweep = run_paper_sweep(&dataset, fidelity)?;
    let fitted = Modeler::new().fit(&sweep)?;
    let privacy = &fitted
        .model(&MetricId::new("poi-retrieval"))
        .expect("privacy model")
        .axis()
        .expect("1-D")
        .model;
    let utility = &fitted
        .model(&MetricId::new("area-coverage"))
        .expect("utility model")
        .axis()
        .expect("1-D")
        .model;

    println!("== Equation 2: fitted coefficients ==");
    println!("{}", report::suite_report(&fitted));

    println!("== Side-by-side with the paper ==");
    println!("{:<12} {:>12} {:>12}", "coefficient", "paper", "measured");
    println!("{:<12} {:>12.2} {:>12.3}", "a (privacy)", 0.84, privacy.intercept());
    println!("{:<12} {:>12.2} {:>12.3}", "b (privacy)", 0.17, privacy.slope());
    println!("{:<12} {:>12.2} {:>12.3}", "α (utility)", 1.21, utility.intercept());
    println!("{:<12} {:>12.2} {:>12.3}", "β (utility)", 0.09, utility.slope());
    println!();
    println!(
        "fit quality: R²(privacy) = {:.3}, R²(utility) = {:.3}",
        privacy.r_squared(),
        utility.r_squared()
    );
    println!();
    println!("shape checks:");
    println!(
        "  both slopes positive (metrics increase with epsilon): privacy {} utility {}",
        privacy.slope() > 0.0,
        utility.slope() > 0.0
    );
    println!(
        "  privacy responds more steeply than utility (b > β): {}",
        privacy.slope() > utility.slope()
    );
    Ok(())
}
