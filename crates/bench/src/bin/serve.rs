//! Serving-path throughput baseline: starts a real [`geopriv_serve`]
//! server on a loopback port, loads a synthetic many-user per-user
//! recommendation, then drives `(user, record)` updates through the full
//! HTTP request path — middleware stack, JSON protocol and streaming
//! protection included — and emits a `BENCH_serve.json` baseline reporting
//! updates/s plus p50/p99 request latency.
//!
//! Every update is a `POST /protect` over a keep-alive connection, cycling
//! round-robin through the user population so the session map stays hot and
//! every user's stream advances. The final round re-checks the determinism
//! contract: a second server under the same master seed must release
//! byte-identical bodies for the first updates of the cycle.
//!
//! ```text
//! cargo run -p geopriv-bench --release --bin serve \
//!     [-- --fidelity smoke|standard|full] [--out BENCH_serve.json]
//! ```

use geopriv_bench::{
    fidelity_from_args, median_seconds, out_path_from_args, BenchJson, Fidelity, REPRODUCTION_SEED,
};
use geopriv_core::{
    GeoIndistinguishabilityFactory, MetricId, PerUserRecommendation, Recommendation,
    UserRecommendation, UserVerdict,
};
use geopriv_lppm::ConfigPoint;
use geopriv_mobility::UserId;
use geopriv_serve::{AssignmentRegistry, GeoPrivServer, HttpClient, ServeConfig};
use std::time::Instant;

/// Size of the simulated population behind the server.
fn bench_users(fidelity: Fidelity) -> usize {
    match fidelity {
        Fidelity::Smoke => 20,
        Fidelity::Standard => 200,
        Fidelity::Full => 1000,
    }
}

/// Updates pushed per timed round (spread round-robin over the users).
fn bench_updates(fidelity: Fidelity) -> usize {
    match fidelity {
        Fidelity::Smoke => 1_000,
        Fidelity::Standard => 10_000,
        Fidelity::Full => 50_000,
    }
}

fn epsilon_point(epsilon: f64) -> ConfigPoint {
    ConfigPoint::from_named(vec![("epsilon".to_string(), epsilon)])
}

/// A synthetic deployment artifact: `users` feasible users whose recommended
/// ε spreads log-evenly over [0.005, 0.05], over a dataset-level fallback at
/// the paper's ε = 0.01 operating point.
fn synthetic_recommendation(users: usize) -> PerUserRecommendation {
    let metric = MetricId::new("poi-retrieval");
    let (lo, hi) = (0.005_f64, 0.05_f64);
    let user_rows = (0..users)
        .map(|i| {
            let fraction = if users > 1 { i as f64 / (users - 1) as f64 } else { 0.0 };
            let epsilon = lo * (hi / lo).powf(fraction);
            UserRecommendation {
                user: UserId::new(i as u64 + 1),
                verdict: UserVerdict::Feasible,
                point: epsilon_point(epsilon),
                predictions: vec![(metric.clone(), 0.1)],
            }
        })
        .collect();
    PerUserRecommendation {
        dataset: Recommendation {
            point: epsilon_point(0.01),
            feasible: vec![("epsilon".to_string(), (lo, hi))],
            predictions: vec![(metric, 0.1)],
        },
        users: user_rows,
    }
}

fn start_server(users: usize) -> Result<GeoPrivServer, Box<dyn std::error::Error>> {
    let registry = AssignmentRegistry::load(
        Box::new(GeoIndistinguishabilityFactory::new()),
        &synthetic_recommendation(users),
        REPRODUCTION_SEED,
    )?;
    // The bench measures the protection path, not the limiter: leave the
    // rate limit off so no synthetic client is ever throttled.
    let config = ServeConfig { rate_limit: None, ..ServeConfig::default() };
    Ok(GeoPrivServer::start(registry, &config)?)
}

/// The i-th update body for a user: a slow drift through central Rennes at
/// one fix per 30 s, same shape as the loopback tests.
fn protect_body(user: u64, sequence: usize) -> String {
    format!(
        "{{\"user\": {user}, \"t\": {}, \"lat\": {}, \"lon\": -1.6778}}",
        sequence as f64 * 30.0,
        48.1173 + sequence as f64 * 1e-4
    )
}

fn percentile(sorted_seconds: &[f64], fraction: f64) -> f64 {
    let index = ((sorted_seconds.len() - 1) as f64 * fraction).round() as usize;
    sorted_seconds[index]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = fidelity_from_args();
    let out_path = out_path_from_args("BENCH_serve.json");
    let users = bench_users(fidelity);
    let updates = bench_updates(fidelity);

    eprintln!("starting server with {users} per-user assignments ({fidelity:?})…");
    let server = start_server(users)?;
    let mut client = HttpClient::connect(server.local_addr())?;

    // Warm-up: one cycle over every user creates all sessions up front so
    // the timed rounds measure steady-state protection, not session churn.
    eprintln!("warming up {users} sessions…");
    let mut sequences = vec![0_usize; users];
    for (user, sequence) in sequences.iter_mut().enumerate() {
        let (status, body) = client.post("/protect", &protect_body(user as u64 + 1, 0))?;
        assert_eq!(status, 200, "warm-up update rejected: {body}");
        *sequence = 1;
    }

    const ROUNDS: usize = 5;
    let mut round_seconds = Vec::with_capacity(ROUNDS);
    let mut latencies = Vec::with_capacity(ROUNDS * updates);
    for round in 0..ROUNDS {
        eprintln!("round {}/{ROUNDS}: {updates} updates over {users} users…", round + 1);
        let round_started = Instant::now();
        for i in 0..updates {
            let user = i % users;
            let body = protect_body(user as u64 + 1, sequences[user]);
            sequences[user] += 1;
            let started = Instant::now();
            let (status, response) = client.post("/protect", &body)?;
            latencies.push(started.elapsed().as_secs_f64());
            assert_eq!(status, 200, "update rejected: {response}");
        }
        round_seconds.push(round_started.elapsed().as_secs_f64());
    }
    let seconds_per_round = median_seconds(&mut round_seconds);
    latencies.sort_by(f64::total_cmp);
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    // Determinism re-check: a fresh server under the same master seed must
    // release byte-identical bodies for the first update of each user.
    eprintln!("re-checking the determinism contract on a fresh instance…");
    let twin = start_server(users)?;
    let mut twin_client = HttpClient::connect(twin.local_addr())?;
    let reference_server = start_server(users)?;
    let mut reference_client = HttpClient::connect(reference_server.local_addr())?;
    for user in 0..users.min(32) {
        let body = protect_body(user as u64 + 1, 0);
        let (_, released_a) = twin_client.post("/protect", &body)?;
        let (_, released_b) = reference_client.post("/protect", &body)?;
        assert_eq!(released_a, released_b, "protected streams diverged across instances");
    }
    twin.shutdown();
    reference_server.shutdown();

    let metrics = server.metrics().render();
    let ok_line = metrics
        .lines()
        .find(|line| line.contains("route=\"/protect\",status=\"200\""))
        .map(str::to_string)
        .unwrap_or_default();
    server.shutdown();

    let total_updates = (ROUNDS * updates + users) as u64;
    let json = BenchJson::new("serve")
        .string("fidelity", format!("{fidelity:?}"))
        .string("lppm", "geo-indistinguishability")
        .int("users", users as u64)
        .int("updates_per_round", updates as u64)
        .int("rounds", ROUNDS as u64)
        .int("total_updates", total_updates)
        .float("seconds_per_round", seconds_per_round, 6)
        .float("updates_per_second", updates as f64 / seconds_per_round, 1)
        .float("latency_p50_us", p50 * 1e6, 2)
        .float("latency_p99_us", p99 * 1e6, 2);
    println!("{}", json.render());
    json.write(&out_path)?;
    eprintln!("baseline written to {out_path}");
    eprintln!("server-side view: {ok_line}");
    eprintln!(
        "{:.0} updates/s over the wire (p50 {:.1} µs, p99 {:.1} µs per request)",
        updates as f64 / seconds_per_round,
        p50 * 1e6,
        p99 * 1e6
    );
    Ok(())
}
