//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. sensitivity of the Figure 1 shapes to the *city-block cell size* of the
//!    utility metric;
//! 2. sensitivity of the privacy curve to the *POI matching radius*;
//! 3. sensitivity to the *fleet size* (dataset scale);
//! 4. comparison of GEO-I against the grid-cloaking and Gaussian baselines at
//!    matched median displacement.
//!
//! ```text
//! cargo run -p geopriv-bench --release --bin ablations [-- --fidelity smoke|standard|full]
//! ```

use geopriv_bench::{fidelity_from_args, reproduction_dataset, Fidelity, REPRODUCTION_SEED};
use geopriv_core::prelude::*;
use geopriv_geo::Meters;
use geopriv_lppm::{Epsilon, GaussianPerturbation, GeoIndistinguishability, GridCloaking, Lppm};
use geopriv_metrics::{AreaCoverage, PoiExtractor, PoiRetrieval, PrivacyMetric, UtilityMetric};
use geopriv_mobility::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = fidelity_from_args();
    eprintln!("building the synthetic SF taxi dataset ({fidelity:?})…");
    let dataset = reproduction_dataset(fidelity);

    cell_size_ablation(&dataset)?;
    match_radius_ablation(&dataset)?;
    fleet_size_ablation(fidelity)?;
    lppm_comparison(&dataset)?;
    Ok(())
}

/// Utility at ε = 0.01 for several city-block cell sizes.
fn cell_size_ablation(dataset: &Dataset) -> Result<(), Box<dyn std::error::Error>> {
    println!("== Ablation 1: utility metric vs city-block cell size (epsilon = 0.01) ==");
    println!("{:>14} {:>10}", "cell size (m)", "utility");
    let protected = protect_with_geoi(dataset, 0.01, 1)?;
    for cell in [100.0, 200.0, 400.0, 800.0] {
        let utility = AreaCoverage::new(Meters::new(cell))?.evaluate(dataset, &protected)?;
        println!("{cell:>14.0} {:>10.3}", utility.value());
    }
    println!(
        "expected shape: utility grows with the cell size (coarser blocks are more forgiving)"
    );
    println!();
    Ok(())
}

/// Privacy at ε = 0.01 for several POI matching radii.
fn match_radius_ablation(dataset: &Dataset) -> Result<(), Box<dyn std::error::Error>> {
    println!("== Ablation 2: privacy metric vs POI matching radius (epsilon = 0.01) ==");
    println!("{:>16} {:>10}", "match radius (m)", "privacy");
    let protected = protect_with_geoi(dataset, 0.01, 2)?;
    for radius in [100.0, 200.0, 400.0, 800.0] {
        let metric = PoiRetrieval::new(PoiExtractor::default(), Meters::new(radius))?;
        let privacy = metric.evaluate(dataset, &protected)?;
        println!("{radius:>16.0} {:>10.3}", privacy.value());
    }
    println!("expected shape: privacy (POI retrieval) grows with the matching radius");
    println!();
    Ok(())
}

/// Equation 2 coefficients for increasing fleet sizes.
fn fleet_size_ablation(fidelity: Fidelity) -> Result<(), Box<dyn std::error::Error>> {
    println!("== Ablation 3: Equation 2 coefficients vs fleet size ==");
    println!("{:>8} {:>10} {:>10} {:>10} {:>10}", "drivers", "a", "b", "alpha", "beta");
    let sizes: &[usize] = match fidelity {
        Fidelity::Smoke => &[2, 4],
        Fidelity::Standard => &[5, 10, 20],
        Fidelity::Full => &[10, 25, 50],
    };
    for &drivers in sizes {
        let mut rng = StdRng::seed_from_u64(REPRODUCTION_SEED + drivers as u64);
        let dataset = geopriv_mobility::generator::TaxiFleetBuilder::new()
            .drivers(drivers)
            .duration_hours(fidelity.duration_hours())
            .sampling_interval_s(60.0)
            .build(&mut rng)?;
        let system = SystemDefinition::paper_geoi();
        let sweep = ExperimentRunner::new(SweepConfig {
            points: fidelity.sweep_points().min(15),
            repetitions: 1,
            seed: REPRODUCTION_SEED,
            parallel: true,
        })
        .run(&system, &dataset)?;
        let fitted = Modeler::new().fit(&sweep)?;
        let privacy = &fitted
            .model(&MetricId::new("poi-retrieval"))
            .expect("privacy model")
            .axis()
            .expect("1-D")
            .model;
        let utility = &fitted
            .model(&MetricId::new("area-coverage"))
            .expect("utility model")
            .axis()
            .expect("1-D")
            .model;
        println!(
            "{drivers:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            privacy.intercept(),
            privacy.slope(),
            utility.intercept(),
            utility.slope()
        );
    }
    println!("expected shape: coefficients stay in the same ballpark as the fleet grows");
    println!();
    Ok(())
}

/// GEO-I vs grid cloaking vs Gaussian noise at matched displacement scale.
fn lppm_comparison(dataset: &Dataset) -> Result<(), Box<dyn std::error::Error>> {
    println!("== Ablation 4: LPPM comparison at ~200 m displacement scale ==");
    println!("{:>28} {:>10} {:>10}", "mechanism", "privacy", "utility");
    // epsilon = 0.01 -> mean displacement 200 m; sigma = 160 m gives a
    // comparable Rayleigh mean; a 400 m cell gives a comparable max shift.
    let mechanisms: Vec<Box<dyn Lppm>> = vec![
        Box::new(GeoIndistinguishability::new(Epsilon::new(0.01)?)),
        Box::new(GaussianPerturbation::new(Meters::new(160.0))?),
        Box::new(GridCloaking::new(Meters::new(400.0))?),
    ];
    let privacy_metric = PoiRetrieval::default();
    let utility_metric = AreaCoverage::default();
    for mechanism in &mechanisms {
        let mut rng = StdRng::seed_from_u64(REPRODUCTION_SEED ^ 0xBEEF);
        let protected = mechanism.protect_dataset(dataset, &mut rng)?;
        let privacy = privacy_metric.evaluate(dataset, &protected)?;
        let utility = utility_metric.evaluate(dataset, &protected)?;
        println!("{:>28} {:>10.3} {:>10.3}", mechanism.name(), privacy.value(), utility.value());
    }
    println!(
        "expected shape: at matched displacement, deterministic cloaking keeps higher POI \
         retrieval (snapped stops stay findable) than the randomized mechanisms"
    );
    println!();
    Ok(())
}

fn protect_with_geoi(
    dataset: &Dataset,
    epsilon: f64,
    salt: u64,
) -> Result<Dataset, Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(REPRODUCTION_SEED ^ salt);
    let geoi = GeoIndistinguishability::new(Epsilon::new(epsilon)?);
    Ok(geoi.protect_dataset(dataset, &mut rng)?)
}
