//! Incremental-recomputation benchmark: cold full study vs warm cached
//! refresh on the scaled taxi fleet with 1 % of the users perturbed.
//!
//! The warm path is the tentpole claim of the measurement cache: after a
//! baseline run primes the on-disk cache, a refresh against a drifted fleet
//! re-measures *only* the drifted users, refits only their models, and must
//! still reproduce — **bit for bit** — what a cold full study of the
//! drifted fleet computes. That equivalence (sweep columns, per-user fits,
//! every recommendation) is asserted here on every run, at every fidelity,
//! for every timed round; the timing numbers are only reported if it holds.
//!
//! Honest accounting: every run is single-core (`parallel = false`), so the
//! speedup is algorithmic — cached users genuinely not re-measured — not a
//! thread-count artifact, and the remaining warm time is broken down into
//! its three phases (cached sweep: load + re-measure + merge + store;
//! incremental refit; re-recommendation).
//!
//! ```text
//! cargo run -p geopriv-bench --release --bin incremental_refresh \
//!     [-- --fidelity smoke|standard|full] [--out BENCH_incremental.json]
//! ```

use geopriv_bench::{
    campaign_config, fidelity_from_args, median_seconds, out_path_from_args,
    per_user_bench_dataset, BenchJson, Fidelity, REPRODUCTION_SEED,
};
use geopriv_core::prelude::*;
use geopriv_mobility::generator::perturb_users;
use geopriv_mobility::UserId;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Wipes and re-creates one bench-owned cache directory under `target/`.
fn fresh_dir(name: &str) -> std::io::Result<PathBuf> {
    let dir = Path::new("target").join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir)?;
    }
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Snapshots every cache file in `dir` (path, bytes).
fn snapshot(dir: &Path) -> std::io::Result<Vec<(PathBuf, Vec<u8>)>> {
    let mut files = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_file() {
            let bytes = std::fs::read(&path)?;
            files.push((path, bytes));
        }
    }
    files.sort();
    Ok(files)
}

/// Restores a snapshot taken by [`snapshot`] (the warm rounds must each
/// start from the *baseline* cache, not from the previous round's merge).
fn restore(files: &[(PathBuf, Vec<u8>)]) -> std::io::Result<()> {
    for (path, bytes) in files {
        std::fs::write(path, bytes)?;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = fidelity_from_args();
    let out_path = out_path_from_args("BENCH_incremental.json");

    eprintln!("building the scaled taxi fleet ({fidelity:?})…");
    let dataset = per_user_bench_dataset(fidelity);
    let users = dataset.users();

    // 1 % of the fleet drifts (every 100th user — at least one).
    let drifting: Vec<UserId> = users.iter().copied().step_by(100).collect();
    let drifted = perturb_users(&dataset, &drifting, REPRODUCTION_SEED)?;

    // Single-core on purpose: the reported speedup must be algorithmic.
    let mut config = campaign_config(fidelity);
    config.parallel = false;
    let system = SystemDefinition::paper_geoi();
    let objectives = Objectives::new()
        .require("poi-retrieval", at_most(0.45))?
        .require("area-coverage", at_least(0.45))?;

    let warm_dir = fresh_dir("incremental-bench-warm")?;
    let cold_dir = fresh_dir("incremental-bench-cold")?;
    let warm_runner =
        ExperimentRunner::with_plan(SweepPlan::grid(config).per_user().cached(&warm_dir));
    let cold_runner =
        ExperimentRunner::with_plan(SweepPlan::grid(config).per_user().cached(&cold_dir));

    // Prime the warm cache with the baseline fleet (untimed) and fit it —
    // the state an operator would hold before the fleet drifts.
    eprintln!(
        "priming the cache: {} users, {} points, {} repetition(s)…",
        users.len(),
        config.points,
        config.repetitions
    );
    let baseline = warm_runner.run_cached(&system, &dataset)?;
    assert_eq!(baseline.stats.misses, users.len(), "fresh cache must be fully cold");
    assert!(baseline.stats.warnings.is_empty(), "{:?}", baseline.stats.warnings);
    let baseline_fits = Modeler::new().fit_per_user(&baseline.result)?;
    let primed = snapshot(&warm_dir)?;
    assert!(!primed.is_empty(), "priming must write a cache file");

    // Cold reference: a full study of the drifted fleet from an empty cache.
    const ROUNDS: usize = 5;
    eprintln!("cold rounds ({ROUNDS})…");
    let mut cold_times = Vec::with_capacity(ROUNDS);
    let mut cold_reference = None;
    for round in 0..ROUNDS {
        let _ = fresh_dir("incremental-bench-cold")?;
        let started = Instant::now();
        let cold = cold_runner.run_cached(&system, &drifted)?;
        let fitted = Modeler::new().fit(&cold.result)?;
        let fits = Modeler::new().fit_per_user(&cold.result)?;
        let recommendation = Configurator::new(fitted).recommend_per_user(&fits, &objectives)?;
        cold_times.push(started.elapsed().as_secs_f64());
        eprintln!("  cold round {}/{ROUNDS}: {:.3}s", round + 1, cold_times[round]);
        assert_eq!(cold.stats.misses, users.len(), "cold rounds must measure everyone");
        match &cold_reference {
            None => cold_reference = Some((cold.result, fits, recommendation)),
            Some((sweep, reference_fits, reference)) => {
                assert_eq!(&cold.result, sweep, "cold runs are not deterministic");
                assert_eq!(&fits, reference_fits);
                assert_eq!(&recommendation, reference);
            }
        }
    }
    let seconds_cold = median_seconds(&mut cold_times);
    let (cold_sweep, cold_fits, cold_recommendation) =
        cold_reference.expect("at least one cold round");

    // Warm rounds: restore the baseline cache, then refresh against the
    // drifted fleet. Phases timed separately for the honest breakdown.
    eprintln!("warm rounds ({ROUNDS})…");
    let (mut warm_times, mut sweep_times, mut refit_times, mut recommend_times) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let mut hits = 0;
    for round in 0..ROUNDS {
        restore(&primed)?;
        let started = Instant::now();
        let warm = warm_runner.run_cached(&system, &drifted)?;
        sweep_times.push(started.elapsed().as_secs_f64());

        let refit_started = Instant::now();
        let fits = Modeler::new().refit_per_user(&warm.result, &baseline_fits, &drifting)?;
        refit_times.push(refit_started.elapsed().as_secs_f64());

        let recommend_started = Instant::now();
        let fitted = Modeler::new().fit(&warm.result)?;
        let recommendation = Configurator::new(fitted).recommend_per_user(&fits, &objectives)?;
        recommend_times.push(recommend_started.elapsed().as_secs_f64());
        warm_times.push(started.elapsed().as_secs_f64());
        eprintln!("  warm round {}/{ROUNDS}: {:.3}s", round + 1, warm_times[round]);

        // The cache served exactly the undrifted users…
        assert_eq!(warm.stats.misses, drifting.len(), "must re-measure exactly the drifted users");
        assert_eq!(warm.stats.hits, users.len() - drifting.len());
        assert!(warm.stats.warnings.is_empty(), "{:?}", warm.stats.warnings);
        // …and the warm ≡ cold contract holds bit for bit, every round.
        assert_eq!(warm.result, cold_sweep, "warm sweep differs from cold");
        assert_eq!(fits, cold_fits, "incremental refit differs from cold fit");
        assert_eq!(recommendation, cold_recommendation, "warm recommendations differ from cold");
        hits = warm.stats.hits;
    }
    let seconds_warm = median_seconds(&mut warm_times);
    let seconds_warm_sweep = median_seconds(&mut sweep_times);
    let seconds_warm_refit = median_seconds(&mut refit_times);
    let seconds_warm_recommend = median_seconds(&mut recommend_times);
    let speedup = seconds_cold / seconds_warm;

    // The acceptance floor for the committed baseline. Smoke (CI) still
    // asserts the full bit-identity above but skips the timing floor —
    // 500-user runs on shared runners are too noisy to gate on.
    if fidelity != Fidelity::Smoke {
        assert!(
            speedup >= 5.0,
            "warm refresh must be at least 5x faster than cold ({speedup:.1}x measured)"
        );
    }

    let json = BenchJson::new("incremental")
        .string("fidelity", format!("{fidelity:?}"))
        .string("lppm", &cold_sweep.lppm_name)
        .string("parallel", "false (single-core: speedup is algorithmic, not thread-count)")
        .int("users", users.len() as u64)
        .int("perturbed_users", drifting.len() as u64)
        .int("cache_hits", hits as u64)
        .int("points", config.points as u64)
        .int("repetitions", config.repetitions as u64)
        .int("records", dataset.record_count() as u64)
        .float("seconds_cold", seconds_cold, 6)
        .float("seconds_warm", seconds_warm, 6)
        .float("seconds_warm_sweep", seconds_warm_sweep, 6)
        .float("seconds_warm_refit", seconds_warm_refit, 6)
        .float("seconds_warm_recommend", seconds_warm_recommend, 6)
        .float("speedup", speedup, 2);
    println!("{}", json.render());
    json.write(&out_path)?;
    eprintln!("baseline written to {out_path}");
    eprintln!(
        "cold {seconds_cold:.3}s vs warm {seconds_warm:.3}s ({speedup:.1}x) — warm time: \
         {seconds_warm_sweep:.3}s cached sweep + {seconds_warm_refit:.3}s refit + \
         {seconds_warm_recommend:.3}s recommend"
    );
    Ok(())
}
