//! Million-user scale baseline for the sharded per-user sweep path.
//!
//! Two measurements, one committed `BENCH_scale.json`:
//!
//! 1. **Throughput** — the paper's GEO-I system swept at per-user grain over
//!    a 10,000-user [`generator::scaled`] dataset in 1,000-user shards,
//!    median of 5 timed runs, reported as users/s.
//! 2. **Memory bound** — a 100,000-user (1,000,000 at `--fidelity full`)
//!    dataset through the same sharded sweep, with the peak-RSS high-water
//!    mark reset before the sweep so the reading isolates the sweep's own
//!    working set: with O(shard) execution the overhead beyond the resident
//!    input dataset stays shard-sized, not dataset-sized.
//!
//! ```text
//! cargo run -p geopriv-bench --release --bin scale \
//!     [-- --fidelity smoke|standard|full] [--out BENCH_scale.json]
//! ```

use geopriv_bench::{
    current_rss_kb, fidelity_from_args, median_seconds, out_path_from_args, peak_rss_kb,
    reset_peak_rss, BenchJson, Fidelity, REPRODUCTION_SEED,
};
use geopriv_core::prelude::*;
use geopriv_mobility::generator;
use std::time::Instant;

/// Users in the timed-throughput phase.
fn throughput_users(fidelity: Fidelity) -> usize {
    match fidelity {
        Fidelity::Smoke => 1_000,
        Fidelity::Standard | Fidelity::Full => 10_000,
    }
}

/// Users in the memory-bound phase.
fn scale_users(fidelity: Fidelity) -> usize {
    match fidelity {
        Fidelity::Smoke => 10_000,
        Fidelity::Standard => 100_000,
        Fidelity::Full => 1_000_000,
    }
}

/// Shard size of both phases: the O(shard) working-set bound being measured.
const SHARD_USERS: usize = 1_000;

/// Sweep shape of both phases: few points, the scale axis is the user count.
const SWEEP_POINTS: usize = 4;

fn sharded_plan() -> SweepPlan {
    let config = SweepConfig {
        points: SWEEP_POINTS,
        repetitions: 1,
        seed: REPRODUCTION_SEED,
        parallel: true,
    };
    SweepPlan::grid(config).per_user().shard_users(SHARD_USERS)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = fidelity_from_args();
    let out_path = out_path_from_args("BENCH_scale.json");
    let system = SystemDefinition::paper_geoi();

    // Phase 1: throughput, median of 5.
    let users = throughput_users(fidelity);
    eprintln!("throughput phase: {users} users in {SHARD_USERS}-user shards ({fidelity:?})…");
    let dataset = generator::scaled(users, REPRODUCTION_SEED)?;
    let runner = ExperimentRunner::with_plan(sharded_plan());

    eprintln!("warming up…");
    let reference = runner.run(&system, &dataset)?;
    assert_eq!(
        reference
            .user_column(&MetricId::new("area-coverage"))
            .expect("per-user grain")
            .user_count(),
        users,
        "sharded sweep dropped users"
    );

    const ROUNDS: usize = 5;
    let mut times = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        eprintln!("round {}/{ROUNDS}…", round + 1);
        let started = Instant::now();
        let sweep = std::hint::black_box(runner.run(&system, &dataset)?);
        times.push(started.elapsed().as_secs_f64());
        assert_eq!(sweep, reference, "sharded sweep is not deterministic");
    }
    let seconds_sweep = median_seconds(&mut times);
    let records = dataset.record_count();
    drop(reference);
    drop(dataset);

    // Phase 2: memory bound at scale.
    let big_users = scale_users(fidelity);
    eprintln!("memory phase: {big_users} users in {SHARD_USERS}-user shards…");
    let big = generator::scaled(big_users, REPRODUCTION_SEED)?;
    let big_records = big.record_count();
    let column_kb = (big_records * 3 * std::mem::size_of::<f64>()) as u64 / 1024;
    reset_peak_rss();
    let rss_before_kb = current_rss_kb();
    let started = Instant::now();
    let sweep = runner.run(&system, &big)?;
    let seconds_scale = started.elapsed().as_secs_f64();
    let peak_kb = peak_rss_kb();
    assert_eq!(
        sweep.user_column(&MetricId::new("area-coverage")).expect("per-user grain").user_count(),
        big_users,
        "sharded sweep dropped users at scale"
    );
    let overhead_kb = match (peak_kb, rss_before_kb) {
        (Some(peak), Some(before)) => Some(peak.saturating_sub(before)),
        _ => None,
    };

    let mut json = BenchJson::new("scale")
        .string("fidelity", format!("{fidelity:?}"))
        .string("lppm", &sweep.lppm_name)
        .int("points", SWEEP_POINTS as u64)
        .int("shard_users", SHARD_USERS as u64)
        .int("users", users as u64)
        .int("records", records as u64)
        .float("seconds_sweep", seconds_sweep, 6)
        .float("users_per_second", users as f64 / seconds_sweep, 3)
        .int("scale_users", big_users as u64)
        .int("scale_records", big_records as u64)
        .int("scale_dataset_columns_kb", column_kb)
        .float("seconds_scale_sweep", seconds_scale, 6);
    if let (Some(before), Some(peak), Some(overhead)) = (rss_before_kb, peak_kb, overhead_kb) {
        json = json
            .int("scale_rss_before_kb", before)
            .int("scale_peak_rss_kb", peak)
            .int("scale_sweep_overhead_kb", overhead);
    }
    println!("{}", json.render());
    json.write(&out_path)?;
    eprintln!("baseline written to {out_path}");
    eprintln!(
        "sharded per-user sweep: {:.1} users/s at {users} users; {big_users} users in \
         {seconds_scale:.1}s{}",
        users as f64 / seconds_sweep,
        overhead_kb
            .map(|kb| format!(", sweep overhead {kb} kB beyond the resident dataset"))
            .unwrap_or_default()
    );
    Ok(())
}
