//! Multi-axis grid-study throughput baseline: times the 2-D configuration
//! study (GEO-I ε × grid-cloaking cell size composed as one pipeline, full
//! factorial through `ExperimentRunner`) and emits a `BENCH_grid.json`
//! baseline alongside the sweep/campaign baselines, so regressions on the
//! multi-axis path are visible independently of the 1-D sweep.
//!
//! ```text
//! cargo run -p geopriv-bench --release --bin grid \
//!     [-- --fidelity smoke|standard|full] [--out BENCH_grid.json]
//! ```

use geopriv_bench::{
    fidelity_from_args, grid_points_per_axis, median_seconds, out_path_from_args,
    reproduction_dataset, run_grid_study, BenchJson,
};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = fidelity_from_args();
    let out_path = out_path_from_args("BENCH_grid.json");

    eprintln!("building the synthetic SF taxi dataset ({fidelity:?})…");
    let dataset = reproduction_dataset(fidelity);
    let per_axis = grid_points_per_axis(fidelity);
    eprintln!(
        "grid study: {per_axis} x {per_axis} design points over {} records",
        dataset.record_count()
    );

    // Untimed warm-up (first-touch page faults, allocator) that doubles as a
    // determinism cross-check for the timed rounds.
    eprintln!("warming up…");
    let reference = run_grid_study(&dataset, fidelity)?;
    assert_eq!(reference.len(), per_axis * per_axis, "full factorial was enumerated");

    const ROUNDS: usize = 5;
    let mut times = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        eprintln!("round {}/{ROUNDS}…", round + 1);
        let started = Instant::now();
        let study = std::hint::black_box(run_grid_study(&dataset, fidelity)?);
        times.push(started.elapsed().as_secs_f64());
        assert_eq!(study, reference, "grid study is not deterministic across rounds");
    }
    let seconds_grid = median_seconds(&mut times);
    let points = reference.len();

    let json = BenchJson::new("grid")
        .string("fidelity", format!("{fidelity:?}"))
        .string("lppm", &reference.lppm_name)
        .string("axes", reference.space.names().join(" x "))
        .int("points_per_axis", per_axis as u64)
        .int("design_points", points as u64)
        .int("metrics", reference.columns.len() as u64)
        .int("drivers", dataset.user_count() as u64)
        .int("records", dataset.record_count() as u64)
        .float("seconds_grid", seconds_grid, 6)
        .float("points_per_second", points as f64 / seconds_grid, 3);
    println!("{}", json.render());
    json.write(&out_path)?;
    eprintln!("baseline written to {out_path}");
    eprintln!("grid: {seconds_grid:.3}s ({points} design points)");
    Ok(())
}
