//! Reproduces the **PCA-based dataset-property selection** of §3 step 1:
//! "the properties of the dataset that are likely to influence privacy and
//! utility metrics … are soundly chosen using a principal component
//! analysis".
//!
//! The paper's GEO-I illustration ends up using no dataset property; this
//! binary shows the machinery on a heterogeneous dataset (taxi drivers mixed
//! with commuters), reporting the ranked importance of each candidate
//! property and which ones the framework would keep.
//!
//! ```text
//! cargo run -p geopriv-bench --release --bin pca_properties [-- --fidelity smoke|standard|full]
//! ```

use geopriv_bench::{fidelity_from_args, REPRODUCTION_SEED};
use geopriv_core::prelude::*;
use geopriv_geo::Meters;
use geopriv_mobility::generator::{CommuterBuilder, TaxiFleetBuilder};
use geopriv_mobility::{Dataset, DatasetProperties};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = fidelity_from_args();
    let mut rng = StdRng::seed_from_u64(REPRODUCTION_SEED);

    eprintln!("building a heterogeneous dataset (taxis + commuters, {fidelity:?})…");
    let taxis = TaxiFleetBuilder::new()
        .drivers(fidelity.drivers())
        .duration_hours(fidelity.duration_hours())
        .sampling_interval_s(60.0)
        .build(&mut rng)?;
    let commuters = CommuterBuilder::new()
        .users(fidelity.drivers())
        .days(1)
        .sampling_interval_s(120.0)
        .first_user_id(1_000)
        .build(&mut rng)?;
    let mut traces = taxis.to_traces();
    traces.extend(commuters.to_traces());
    let dataset = Dataset::new(traces)?;
    println!(
        "dataset: {} users ({} taxi drivers + {} commuters), {} records",
        dataset.user_count(),
        fidelity.drivers(),
        fidelity.drivers(),
        dataset.record_count()
    );

    let properties = DatasetProperties::compute(&dataset, Meters::new(200.0))?;
    let selection = PropertySelector::default().select(&properties)?;

    println!();
    println!("== PCA-based property selection ==");
    println!("{selection}");
    println!(
        "first principal component explains {:.1}% of the variance",
        selection.first_component_variance * 100.0
    );
    println!("selected properties: {:?}", selection.selected_names());
    println!();
    println!(
        "note: the paper's GEO-I illustration uses no dataset property (\"no dataset properties is \
         considered\"); this report demonstrates the selection step the framework applies when \
         extending Equation 1 with d_j terms."
    );
    Ok(())
}
