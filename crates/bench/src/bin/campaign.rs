//! Campaign-engine throughput baseline: times a 3-system campaign against the
//! same three sweeps run back-to-back through independent `ExperimentRunner`s,
//! verifies the results are bit-identical, and emits a `BENCH_campaign.json`
//! baseline so future PRs have a perf trajectory to compare against.
//!
//! ```text
//! cargo run -p geopriv-bench --release --bin campaign \
//!     [-- --fidelity smoke|standard|full] [--out BENCH_campaign.json]
//! ```

use geopriv_bench::{
    campaign_config, campaign_systems, fidelity_from_args, median_seconds, out_path_from_args,
    reproduction_dataset, BenchJson,
};
use geopriv_core::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = fidelity_from_args();
    let out_path = out_path_from_args("BENCH_campaign.json");

    eprintln!("building the synthetic SF taxi dataset ({fidelity:?})…");
    let dataset = reproduction_dataset(fidelity);
    let systems = campaign_systems();
    let config = campaign_config(fidelity);
    eprintln!(
        "campaign: {} systems x 1 dataset x {} points x {} repetitions",
        systems.len(),
        config.points,
        config.repetitions
    );

    // Untimed warm-up of both paths, so the timed rounds below compare the
    // two engines rather than first-touch page faults and allocator warm-up
    // (whichever path runs first would otherwise pay them). The warm-up
    // results double as the bit-identity cross-check.
    let runner = ExperimentRunner::new(config);
    eprintln!("warming up…");
    let mut independent = Vec::with_capacity(systems.len());
    for system in &systems {
        independent.push(runner.run(system, &dataset)?);
    }
    let campaign = CampaignRunner::new(config).run(&systems, std::slice::from_ref(&dataset))?;

    // The campaign must be a pure optimization: bit-identical measurements.
    for (s, expected) in independent.iter().enumerate() {
        let got = campaign.get(s, 0).expect("campaign covers every system");
        assert_eq!(got, expected, "campaign diverged from the independent sweep of system {s}");
    }
    eprintln!("verified: campaign output is bit-identical to the independent sweeps");

    // Timed rounds, alternating the two paths so drift (CPU frequency,
    // memory layout) hits both equally; the medians are compared.
    const ROUNDS: usize = 5;
    let mut back_to_back_times = Vec::with_capacity(ROUNDS);
    let mut campaign_times = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        eprintln!("round {}/{ROUNDS}…", round + 1);
        let started = Instant::now();
        for system in &systems {
            std::hint::black_box(runner.run(system, &dataset)?);
        }
        back_to_back_times.push(started.elapsed().as_secs_f64());

        let started = Instant::now();
        std::hint::black_box(
            CampaignRunner::new(config).run(&systems, std::slice::from_ref(&dataset))?,
        );
        campaign_times.push(started.elapsed().as_secs_f64());
    }
    let seconds_back_to_back = median_seconds(&mut back_to_back_times);
    let seconds_campaign = median_seconds(&mut campaign_times);

    let speedup = seconds_back_to_back / seconds_campaign;
    let sweep_points = systems.len() * config.points * config.repetitions;
    let json = BenchJson::new("campaign")
        .string("fidelity", format!("{fidelity:?}"))
        .int("systems", systems.len() as u64)
        .int("datasets", 1)
        .int("points", config.points as u64)
        .int("repetitions", config.repetitions as u64)
        .int("drivers", dataset.user_count() as u64)
        .int("records", dataset.record_count() as u64)
        .int("sweep_samples_total", sweep_points as u64)
        .float("seconds_back_to_back", seconds_back_to_back, 6)
        .float("seconds_campaign", seconds_campaign, 6)
        .float("speedup", speedup, 3)
        .float("samples_per_second_campaign", sweep_points as f64 / seconds_campaign, 3);
    println!("{}", json.render());
    json.write(&out_path)?;
    eprintln!("baseline written to {out_path}");
    eprintln!(
        "back-to-back: {seconds_back_to_back:.3}s  campaign: {seconds_campaign:.3}s  \
         speedup: {speedup:.2}x"
    );
    Ok(())
}
