//! Reproduces the paper's **operating point**: inverting the fitted models
//! for the objectives "at most 10 % POI retrieval, at least 80 % utility"
//! should recommend ε ≈ 0.01 m⁻¹, and re-measuring at the recommended ε
//! should confirm that both objectives hold.
//!
//! ```text
//! cargo run -p geopriv-bench --release --bin operating_point [-- --fidelity smoke|standard|full]
//! ```

use geopriv_bench::{fidelity_from_args, reproduction_dataset, run_paper_sweep, REPRODUCTION_SEED};
use geopriv_core::prelude::*;
use geopriv_metrics::{AreaCoverage, PoiRetrieval, PrivacyMetric, UtilityMetric};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = fidelity_from_args();
    eprintln!("building the synthetic SF taxi dataset ({fidelity:?})…");
    let dataset = reproduction_dataset(fidelity);

    // Steps 1–2: define the system, sweep, model.
    let system = SystemDefinition::paper_geoi();
    eprintln!("sweeping epsilon and fitting the invertible model…");
    let sweep = run_paper_sweep(&dataset, fidelity)?;
    let fitted = Modeler::new().fit(&sweep)?;

    // Step 3: invert for the paper's objectives.
    let objectives = Objectives::paper_example();
    let configurator = Configurator::new(fitted);
    let recommendation = configurator.recommend(&objectives)?;

    println!("== Objectives ==");
    println!("{objectives}");
    println!();
    println!("== Recommendation (paper: epsilon = 0.01 m^-1) ==");
    println!("{}", report::recommendation_report(&recommendation));

    // Verification: protect the dataset at the recommended epsilon and
    // re-measure both metrics.
    eprintln!("re-measuring at the recommended epsilon…");
    let lppm = system.factory().instantiate_at(&recommendation.point)?;
    let mut rng = StdRng::seed_from_u64(REPRODUCTION_SEED ^ 0xA5A5);
    let protected = lppm.protect_dataset(&dataset, &mut rng)?;
    let measured_privacy = PoiRetrieval::default().evaluate(&dataset, &protected)?;
    let measured_utility = AreaCoverage::default().evaluate(&dataset, &protected)?;
    let measured = [
        (MetricId::new("poi-retrieval"), measured_privacy.value()),
        (MetricId::new("area-coverage"), measured_utility.value()),
    ];

    println!("== Verification at the recommended epsilon ==");
    for (id, constraint) in objectives.constraints() {
        let (_, value) =
            measured.iter().find(|(m, _)| m == id).expect("paper objectives cover both metrics");
        println!(
            "measured {id} = {value:.3}  (objective {id} {constraint}, satisfied: {})",
            constraint.is_satisfied_by(*value)
        );
    }
    println!();
    println!(
        "paper claim: \"with epsilon = 0.01 we ensure that no more than 10% of her POIs can be \
         retrieved while ensuring that 80% of her requests will concern the city block where she is\""
    );
    Ok(())
}
