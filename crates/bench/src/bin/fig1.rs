//! Reproduces **Figure 1** of the paper: the GEO-I privacy metric (1a) and
//! utility metric (1b) as a function of ε on a log-scale sweep from 10⁻⁴ to
//! 1 m⁻¹.
//!
//! ```text
//! cargo run -p geopriv-bench --release --bin fig1 [-- --fidelity smoke|standard|full]
//! ```
//!
//! The output contains one aligned table (both series) plus a CSV block that
//! can be plotted directly; the vertical-line zone boundaries reported by the
//! modeler correspond to the non-saturated zones marked in the paper's figure.

use geopriv_bench::{fidelity_from_args, reproduction_dataset, run_paper_sweep};
use geopriv_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = fidelity_from_args();
    eprintln!("building the synthetic SF taxi dataset ({fidelity:?})…");
    let dataset = reproduction_dataset(fidelity);
    eprintln!("dataset: {} drivers, {} records", dataset.user_count(), dataset.record_count());

    eprintln!("sweeping epsilon (Figure 1)…");
    let sweep = run_paper_sweep(&dataset, fidelity)?;

    println!("== Figure 1a (privacy metric vs epsilon) and 1b (utility metric vs epsilon) ==");
    println!("{}", report::sweep_to_table(&sweep));

    println!("== CSV ==");
    println!("{}", report::sweep_to_csv(&sweep));

    // The non-saturated zones (the vertical lines of Figure 1).
    let fitted = Modeler::new().fit(&sweep)?;
    let privacy =
        fitted.model(&MetricId::new("poi-retrieval")).expect("privacy model").axis().expect("1-D");
    let utility =
        fitted.model(&MetricId::new("area-coverage")).expect("utility model").axis().expect("1-D");
    println!("== Non-saturated zones (the vertical lines of Figure 1) ==");
    println!(
        "privacy (poi-retrieval):  epsilon in [{:.5}, {:.5}]   (paper: ~0.007 to ~0.08)",
        privacy.active_zone.0, privacy.active_zone.1
    );
    println!(
        "utility (area-coverage):  epsilon in [{:.5}, {:.5}]   (paper: wider than the privacy zone)",
        utility.active_zone.0, utility.active_zone.1
    );

    // Shape checks mirrored in EXPERIMENTS.md.
    let privacy_means = sweep.values(&MetricId::new("poi-retrieval")).expect("privacy column");
    let utility_means = sweep.values(&MetricId::new("area-coverage")).expect("utility column");
    println!();
    println!(
        "shape check: privacy rises from {:.3} to {:.3} (paper: ~0 to ~0.4)",
        privacy_means.first().expect("sweep is non-empty"),
        privacy_means.last().expect("sweep is non-empty")
    );
    println!(
        "shape check: utility rises from {:.3} to {:.3} (paper: ~0.2 to ~1.0)",
        utility_means.first().expect("sweep is non-empty"),
        utility_means.last().expect("sweep is non-empty")
    );
    Ok(())
}
