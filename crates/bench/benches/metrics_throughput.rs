//! Criterion bench for the evaluation metrics: POI extraction, POI-retrieval
//! privacy, area-coverage utility, and the end-to-end modeling step
//! (saturation detection + Equation 2 fit) on a precomputed sweep.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use geopriv_bench::{reproduction_dataset, run_paper_sweep, Fidelity, REPRODUCTION_SEED};
use geopriv_core::Modeler;
use geopriv_lppm::{Epsilon, GeoIndistinguishability, Lppm};
use geopriv_metrics::{AreaCoverage, PoiExtractor, PoiRetrieval, PrivacyMetric, UtilityMetric};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn metric_throughput(c: &mut Criterion) {
    let dataset = reproduction_dataset(Fidelity::Smoke);
    let mut rng = StdRng::seed_from_u64(REPRODUCTION_SEED);
    let protected = GeoIndistinguishability::new(Epsilon::new(0.01).expect("valid"))
        .protect_dataset(&dataset, &mut rng)
        .expect("protection succeeds");
    let records = dataset.record_count() as u64;

    let mut group = c.benchmark_group("metrics");
    group.throughput(Throughput::Elements(records));
    group.sample_size(10);

    group.bench_function("poi_extraction", |b| {
        let extractor = PoiExtractor::default();
        b.iter(|| {
            let total: usize = dataset.iter().map(|t| extractor.extract_distinct(t).len()).sum();
            black_box(total)
        });
    });

    group.bench_function("poi_retrieval_privacy", |b| {
        let metric = PoiRetrieval::default();
        b.iter(|| {
            black_box(metric.evaluate(&dataset, &protected).expect("evaluation succeeds").value())
        });
    });

    group.bench_function("area_coverage_utility", |b| {
        let metric = AreaCoverage::default();
        b.iter(|| {
            black_box(metric.evaluate(&dataset, &protected).expect("evaluation succeeds").value())
        });
    });
    group.finish();

    // Modeling cost on a precomputed sweep (pure numerics, no simulation).
    let sweep = run_paper_sweep(&dataset, Fidelity::Smoke).expect("sweep succeeds");
    let mut modeling_group = c.benchmark_group("modeling");
    modeling_group.bench_function("fit_equation_2", |b| {
        b.iter(|| black_box(Modeler::new().fit(&sweep).expect("fit succeeds")));
    });
    modeling_group.finish();
}

criterion_group!(benches, metric_throughput);
criterion_main!(benches);
