//! Criterion bench comparing the record-protection throughput of the LPPMs
//! (GEO-I at the paper's operating point, Gaussian perturbation, grid
//! cloaking, temporal down-sampling), plus the raw planar-Laplace sampler.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use geopriv_bench::{reproduction_dataset, Fidelity, REPRODUCTION_SEED};
use geopriv_geo::Meters;
use geopriv_lppm::{
    Epsilon, GaussianPerturbation, GeoIndistinguishability, GridCloaking, Lppm, PlanarLaplace,
    TemporalDownsampling,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn protection_throughput(c: &mut Criterion) {
    let dataset = reproduction_dataset(Fidelity::Smoke);
    let records = dataset.record_count() as u64;

    let mechanisms: Vec<(&str, Box<dyn Lppm>)> = vec![
        (
            "geo-indistinguishability(eps=0.01)",
            Box::new(GeoIndistinguishability::new(Epsilon::new(0.01).expect("valid"))),
        ),
        (
            "gaussian-perturbation(sigma=160m)",
            Box::new(GaussianPerturbation::new(Meters::new(160.0)).expect("valid")),
        ),
        ("grid-cloaking(400m)", Box::new(GridCloaking::new(Meters::new(400.0)).expect("valid"))),
        ("temporal-downsampling(4)", Box::new(TemporalDownsampling::new(4).expect("valid"))),
    ];

    let mut group = c.benchmark_group("lppm_protect_dataset");
    group.throughput(Throughput::Elements(records));
    group.sample_size(10);
    for (name, mechanism) in &mechanisms {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(REPRODUCTION_SEED);
                black_box(
                    mechanism.protect_dataset(&dataset, &mut rng).expect("protection succeeds"),
                )
            });
        });
    }
    group.finish();

    let mut sampler_group = c.benchmark_group("planar_laplace_sampler");
    sampler_group.throughput(Throughput::Elements(10_000));
    sampler_group.bench_function("sample_10k", |b| {
        let noise = PlanarLaplace::new(Epsilon::new(0.01).expect("valid"));
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(REPRODUCTION_SEED);
            let mut acc = 0.0;
            for _ in 0..10_000 {
                let (dx, dy) = noise.sample(&mut rng);
                acc += dx + dy;
            }
            black_box(acc)
        });
    });
    sampler_group.finish();
}

criterion_group!(benches, protection_throughput);
criterion_main!(benches);
