//! Criterion bench for the campaign engine: a 3-system sweep study run as one
//! campaign (shared work pool + prepared actual-side metric state) versus the
//! same study run as three back-to-back `ExperimentRunner` sweeps.
//!
//! The first BENCH trajectory of the repo: the `campaign` binary
//! (`cargo run -p geopriv-bench --release --bin campaign`) emits the
//! machine-readable `BENCH_campaign.json` counterpart of this measurement.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use geopriv_bench::campaign_systems;
use geopriv_core::prelude::*;
use geopriv_mobility::generator::TaxiFleetBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn campaign_vs_back_to_back(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(20161212);
    let dataset = TaxiFleetBuilder::new()
        .drivers(3)
        .duration_hours(4.0)
        .sampling_interval_s(60.0)
        .build(&mut rng)
        .expect("static generator configuration is valid");
    let systems = campaign_systems();
    let config = SweepConfig { points: 6, repetitions: 1, seed: 20161212, parallel: true };

    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements((systems.len() * config.points) as u64));

    group.bench_function("back_to_back_3_systems", |b| {
        let runner = ExperimentRunner::new(config);
        b.iter(|| {
            let results: Vec<SweepResult> =
                systems.iter().map(|s| runner.run(s, &dataset).expect("sweep succeeds")).collect();
            black_box(results.len())
        });
    });

    group.bench_function("campaign_3_systems", |b| {
        let runner = CampaignRunner::new(config);
        b.iter(|| {
            let campaign =
                runner.run(&systems, std::slice::from_ref(&dataset)).expect("campaign succeeds");
            black_box(campaign.len())
        });
    });

    group.finish();
}

criterion_group!(benches, campaign_vs_back_to_back);
criterion_main!(benches);
