//! Hold-out validation of the fitted relationship.
//!
//! The paper fits Equation 2 on one dataset and trusts it to configure the
//! LPPM for that dataset. A natural robustness question (and a prerequisite
//! for the paper's future work on "other datasets") is whether a model fitted
//! on *some users* predicts the metrics measured on *other users*.
//! [`HoldOutValidator`] splits a dataset into a training and a validation
//! population, fits the relationship on the training sweep, and reports the
//! prediction errors on the validation sweep.

use crate::error::CoreError;
use crate::experiment::{ExperimentRunner, SweepConfig};
use crate::modeling::{FittedRelationship, Modeler};
use crate::system::SystemDefinition;
use geopriv_mobility::Dataset;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Prediction-error summary of one metric on the validation population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictionError {
    /// Mean absolute error between predicted and measured metric values.
    pub mean_absolute_error: f64,
    /// Largest absolute error over the validation sweep points.
    pub max_absolute_error: f64,
    /// Number of sweep points the errors were computed on.
    pub points: usize,
}

/// The outcome of a hold-out validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Relationship fitted on the training population.
    pub fitted: FittedRelationship,
    /// Prediction error of the privacy model on the held-out population.
    pub privacy_error: PredictionError,
    /// Prediction error of the utility model on the held-out population.
    pub utility_error: PredictionError,
    /// Number of training traces.
    pub training_traces: usize,
    /// Number of validation traces.
    pub validation_traces: usize,
}

impl ValidationReport {
    /// Returns `true` if both mean absolute errors are at or below `tolerance`
    /// (in metric units, e.g. 0.1 = ten percentage points).
    pub fn is_acceptable(&self, tolerance: f64) -> bool {
        self.privacy_error.mean_absolute_error <= tolerance
            && self.utility_error.mean_absolute_error <= tolerance
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hold-out validation ({} training traces, {} validation traces):",
            self.training_traces, self.validation_traces
        )?;
        writeln!(
            f,
            "  privacy: MAE {:.3}, max {:.3} over {} points",
            self.privacy_error.mean_absolute_error,
            self.privacy_error.max_absolute_error,
            self.privacy_error.points
        )?;
        write!(
            f,
            "  utility: MAE {:.3}, max {:.3} over {} points",
            self.utility_error.mean_absolute_error,
            self.utility_error.max_absolute_error,
            self.utility_error.points
        )
    }
}

/// Splits a dataset, fits on one half, and validates on the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HoldOutValidator {
    config: SweepConfig,
}

impl HoldOutValidator {
    /// Creates a validator using the given sweep configuration for both the
    /// training and the validation sweeps.
    pub fn new(config: SweepConfig) -> Self {
        Self { config }
    }

    /// Splits `dataset` by alternating traces (even-indexed traces train,
    /// odd-indexed traces validate), fits the relationship on the training
    /// population and measures prediction errors on the validation population.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfiguration`] if the dataset has fewer than two traces.
    /// * Any experiment or modeling error from the underlying pipeline.
    pub fn validate(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
    ) -> Result<ValidationReport, CoreError> {
        if dataset.len() < 2 {
            return Err(CoreError::InvalidConfiguration {
                reason: "hold-out validation needs at least two traces".to_string(),
            });
        }
        let mut training = Vec::new();
        let mut validation = Vec::new();
        for (i, trace) in dataset.iter().enumerate() {
            if i % 2 == 0 {
                training.push(trace.clone());
            } else {
                validation.push(trace.clone());
            }
        }
        let training = Dataset::new(training)?;
        let validation = Dataset::new(validation)?;

        let runner = ExperimentRunner::new(self.config);
        let training_sweep = runner.run(system, &training)?;
        let fitted = Modeler::new().fit(&training_sweep)?;
        let validation_sweep = runner.run(system, &validation)?;

        let privacy_error = Self::prediction_error(
            &validation_sweep.parameters(),
            &validation_sweep.privacy_values(),
            |x| fitted.privacy.model.predict(x),
            fitted.privacy.active_zone,
        );
        let utility_error = Self::prediction_error(
            &validation_sweep.parameters(),
            &validation_sweep.utility_values(),
            |x| fitted.utility.model.predict(x),
            fitted.utility.active_zone,
        );

        Ok(ValidationReport {
            fitted,
            privacy_error,
            utility_error,
            training_traces: training.len(),
            validation_traces: validation.len(),
        })
    }

    fn prediction_error<F: Fn(f64) -> f64>(
        parameters: &[f64],
        measured: &[f64],
        predict: F,
        zone: (f64, f64),
    ) -> PredictionError {
        // The model only claims validity inside its non-saturated zone, so the
        // comparison is restricted to it (mirroring the paper's Equation 2).
        let errors: Vec<f64> = parameters
            .iter()
            .zip(measured)
            .filter(|(p, _)| **p >= zone.0 && **p <= zone.1)
            .map(|(p, m)| (predict(*p).clamp(0.0, 1.0) - m).abs())
            .collect();
        if errors.is_empty() {
            return PredictionError {
                mean_absolute_error: 0.0,
                max_absolute_error: 0.0,
                points: 0,
            };
        }
        PredictionError {
            mean_absolute_error: errors.iter().sum::<f64>() / errors.len() as f64,
            max_absolute_error: errors.iter().copied().fold(0.0, f64::max),
            points: errors.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_mobility::generator::TaxiFleetBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(drivers: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(17);
        TaxiFleetBuilder::new()
            .drivers(drivers)
            .duration_hours(5.0)
            .sampling_interval_s(60.0)
            .build(&mut rng)
            .unwrap()
    }

    fn config() -> SweepConfig {
        SweepConfig { points: 9, repetitions: 1, seed: 13, parallel: true }
    }

    #[test]
    fn rejects_datasets_that_cannot_be_split() {
        let validator = HoldOutValidator::new(config());
        let system = SystemDefinition::paper_geoi();
        let single = dataset(1);
        assert!(validator.validate(&system, &single).is_err());
    }

    #[test]
    fn model_fitted_on_half_the_fleet_predicts_the_other_half() {
        let validator = HoldOutValidator::new(config());
        let system = SystemDefinition::paper_geoi();
        let report = validator.validate(&system, &dataset(8)).unwrap();

        assert_eq!(report.training_traces, 4);
        assert_eq!(report.validation_traces, 4);
        assert!(report.privacy_error.points > 0);
        assert!(report.utility_error.points > 0);
        // Errors are valid magnitudes…
        assert!(report.privacy_error.mean_absolute_error >= 0.0);
        assert!(
            report.privacy_error.max_absolute_error >= report.privacy_error.mean_absolute_error
        );
        assert!(report.utility_error.max_absolute_error <= 1.0);
        // …and the utility model (a smooth, slowly varying response) transfers
        // across synthetic fleets with a small error.
        assert!(
            report.utility_error.mean_absolute_error < 0.15,
            "utility MAE {}",
            report.utility_error.mean_absolute_error
        );
        assert!(report.is_acceptable(1.0));
        let text = report.to_string();
        assert!(text.contains("privacy") && text.contains("utility"));
    }
}
