//! Hold-out validation of the fitted suite.
//!
//! The paper fits Equation 2 on one dataset and trusts it to configure the
//! LPPM for that dataset. A natural robustness question (and a prerequisite
//! for the paper's future work on "other datasets") is whether a model fitted
//! on *some users* predicts the metrics measured on *other users*.
//! [`HoldOutValidator`] splits a dataset into a training and a validation
//! population, fits every suite metric's model on the training sweep, and
//! reports the per-metric prediction errors on the validation sweep.

use crate::error::CoreError;
use crate::experiment::{ExperimentRunner, SweepConfig, SweepPlan, SweepResult};
use crate::modeling::{FittedSuite, MetricModel, Modeler};
use crate::system::SystemDefinition;
use geopriv_metrics::MetricId;
use geopriv_mobility::Dataset;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Prediction-error summary of one metric on the validation population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictionError {
    /// Mean absolute error between predicted and measured metric values.
    pub mean_absolute_error: f64,
    /// Largest absolute error over the validation sweep points.
    pub max_absolute_error: f64,
    /// Number of sweep points the errors were computed on.
    pub points: usize,
}

/// The outcome of a hold-out validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Suite fitted on the training population.
    pub fitted: FittedSuite,
    /// Per-metric prediction error on the held-out population, in suite order.
    pub errors: Vec<(MetricId, PredictionError)>,
    /// Number of training traces.
    pub training_traces: usize,
    /// Number of validation traces.
    pub validation_traces: usize,
}

impl ValidationReport {
    /// The prediction error of one metric.
    pub fn error(&self, id: &MetricId) -> Option<&PredictionError> {
        self.errors.iter().find(|(m, _)| m == id).map(|(_, e)| e)
    }

    /// Returns `true` if every metric's mean absolute error is at or below
    /// `tolerance` (in metric units, e.g. 0.1 = ten percentage points).
    pub fn is_acceptable(&self, tolerance: f64) -> bool {
        self.errors.iter().all(|(_, e)| e.mean_absolute_error <= tolerance)
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hold-out validation ({} training traces, {} validation traces):",
            self.training_traces, self.validation_traces
        )?;
        for (id, error) in &self.errors {
            write!(
                f,
                "\n  {id}: MAE {:.3}, max {:.3} over {} points",
                error.mean_absolute_error, error.max_absolute_error, error.points
            )?;
        }
        Ok(())
    }
}

/// Splits a dataset, fits on one half, and validates on the other.
#[derive(Debug, Clone, PartialEq)]
pub struct HoldOutValidator {
    plan: SweepPlan,
}

impl HoldOutValidator {
    /// Creates a validator using the given sweep configuration (grid mode)
    /// for both the training and the validation sweeps.
    pub fn new(config: SweepConfig) -> Self {
        Self { plan: SweepPlan::grid(config) }
    }

    /// Creates a validator with an explicit sweep plan (mode and per-axis
    /// point counts).
    pub fn with_plan(plan: SweepPlan) -> Self {
        Self { plan }
    }

    /// Splits `dataset` by alternating traces (even-indexed traces train,
    /// odd-indexed traces validate), fits the suite on the training
    /// population and measures per-metric prediction errors on the validation
    /// population.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfiguration`] if the dataset has fewer than two traces.
    /// * Any experiment or modeling error from the underlying pipeline.
    pub fn validate(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
    ) -> Result<ValidationReport, CoreError> {
        if dataset.len() < 2 {
            return Err(CoreError::InvalidConfiguration {
                reason: "hold-out validation needs at least two traces".to_string(),
            });
        }
        let mut training = Vec::new();
        let mut validation = Vec::new();
        for (i, trace) in dataset.iter().enumerate() {
            if i % 2 == 0 {
                training.push(trace.to_trace());
            } else {
                validation.push(trace.to_trace());
            }
        }
        let training = Dataset::new(training)?;
        let validation = Dataset::new(validation)?;

        let runner = ExperimentRunner::with_plan(self.plan.clone());
        let training_sweep = runner.run(system, &training)?;
        let fitted = Modeler::new().fit(&training_sweep)?;
        let validation_sweep = runner.run(system, &validation)?;

        let errors = fitted
            .models
            .iter()
            .map(|model| {
                let measured = validation_sweep
                    .values(&model.id)
                    .expect("validation sweep covers the same suite");
                let error = Self::prediction_error(model, &validation_sweep, measured);
                (model.id.clone(), error)
            })
            .collect();

        Ok(ValidationReport {
            fitted,
            errors,
            training_traces: training.len(),
            validation_traces: validation.len(),
        })
    }

    fn prediction_error(
        model: &MetricModel,
        validation: &SweepResult,
        measured: &[f64],
    ) -> PredictionError {
        // The model only claims validity where it was fitted — inside the
        // non-saturated zone of each 1-D fit, inside the swept domain of a
        // surface (mirroring the paper's Equation 2).
        let errors: Vec<f64> = validation
            .points
            .iter()
            .zip(measured)
            .filter(|(point, _)| model.in_zone(point))
            .map(|(point, m)| {
                let predicted = model
                    .predict(point)
                    .expect("validation points share the fitted space")
                    .clamp(0.0, 1.0);
                (predicted - m).abs()
            })
            .collect();
        if errors.is_empty() {
            return PredictionError {
                mean_absolute_error: 0.0,
                max_absolute_error: 0.0,
                points: 0,
            };
        }
        PredictionError {
            mean_absolute_error: errors.iter().sum::<f64>() / errors.len() as f64,
            max_absolute_error: errors.iter().copied().fold(0.0, f64::max),
            points: errors.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_mobility::generator::TaxiFleetBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(drivers: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(17);
        TaxiFleetBuilder::new()
            .drivers(drivers)
            .duration_hours(5.0)
            .sampling_interval_s(60.0)
            .build(&mut rng)
            .unwrap()
    }

    fn config() -> SweepConfig {
        SweepConfig { points: 9, repetitions: 1, seed: 13, parallel: true }
    }

    #[test]
    fn rejects_datasets_that_cannot_be_split() {
        let validator = HoldOutValidator::new(config());
        let system = SystemDefinition::paper_geoi();
        let single = dataset(1);
        assert!(validator.validate(&system, &single).is_err());
    }

    #[test]
    fn model_fitted_on_half_the_fleet_predicts_the_other_half() {
        let validator = HoldOutValidator::new(config());
        let system = SystemDefinition::paper_geoi();
        let report = validator.validate(&system, &dataset(8)).unwrap();

        assert_eq!(report.training_traces, 4);
        assert_eq!(report.validation_traces, 4);
        let privacy = report.error(&"poi-retrieval".into()).unwrap();
        let utility = report.error(&"area-coverage".into()).unwrap();
        assert!(report.error(&"unknown".into()).is_none());
        assert!(privacy.points > 0);
        assert!(utility.points > 0);
        // Errors are valid magnitudes…
        assert!(privacy.mean_absolute_error >= 0.0);
        assert!(privacy.max_absolute_error >= privacy.mean_absolute_error);
        assert!(utility.max_absolute_error <= 1.0);
        // …and the utility model (a smooth, slowly varying response) transfers
        // across synthetic fleets with a small error.
        assert!(utility.mean_absolute_error < 0.15, "utility MAE {}", utility.mean_absolute_error);
        assert!(report.is_acceptable(1.0));
        let text = report.to_string();
        assert!(text.contains("poi-retrieval") && text.contains("area-coverage"));
    }
}
