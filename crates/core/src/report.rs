//! Reporting helpers used by the reproduction harness.
//!
//! The bench binaries regenerate the paper's figures as plain-text tables and
//! CSV series; these helpers render [`SweepResult`]s, [`FittedSuite`]s and
//! [`Recommendation`]s in a stable, diff-friendly format — one column per
//! configuration axis, one column or line per suite metric. A one-axis sweep
//! renders byte-identically to the historical single-scalar output.

use crate::configurator::{PerUserRecommendation, Recommendation, UserRecommendation, UserVerdict};
use crate::error::CoreError;
use crate::experiment::SweepResult;
use crate::json::JsonValue;
use crate::modeling::{FittedSuite, MetricResponse};
use geopriv_lppm::ConfigPoint;
use geopriv_metrics::MetricId;
use geopriv_mobility::UserId;
use std::fmt::Write as _;

/// Renders a sweep as CSV: one column per configuration axis (design-matrix
/// order), one mean column per metric (suite order), then one `_std` column
/// per metric.
pub fn sweep_to_csv(sweep: &SweepResult) -> String {
    let mut out = String::new();
    let mut header = sweep.space.names().join(",");
    for column in &sweep.columns {
        let _ = write!(header, ",{}", column.id);
    }
    for column in &sweep.columns {
        let _ = write!(header, ",{}_std", column.id);
    }
    let _ = writeln!(out, "{header}");
    for (index, point) in sweep.points.iter().enumerate() {
        for (i, (_, value)) in point.values().iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ",");
            }
            let _ = write!(out, "{value:.6e}");
        }
        for column in &sweep.columns {
            let _ = write!(out, ",{:.4}", column.means[index]);
        }
        for column in &sweep.columns {
            let _ = write!(out, ",{:.4}", column.std(index));
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a sweep as an aligned plain-text table (one row per design point,
/// one column per axis and per metric).
pub fn sweep_to_table(sweep: &SweepResult) -> String {
    let mut out = String::new();
    let width = |id: &geopriv_metrics::MetricId| id.as_str().len().max(10);
    for (i, name) in sweep.space.names().iter().enumerate() {
        if i > 0 {
            let _ = write!(out, "  ");
        }
        let _ = write!(out, "{name:>12}");
    }
    for column in &sweep.columns {
        let _ = write!(out, "  {:>w$}", column.id.as_str(), w = width(&column.id));
    }
    let _ = writeln!(out);
    for (index, point) in sweep.points.iter().enumerate() {
        for (i, (_, value)) in point.values().iter().enumerate() {
            if i > 0 {
                let _ = write!(out, "  ");
            }
            let _ = write!(out, "{value:>12.6}");
        }
        for column in &sweep.columns {
            let _ = write!(out, "  {:>w$.4}", column.means[index], w = width(&column.id));
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the fitted Equation-2-style models, one line per metric (one
/// line per axis for one-at-a-time fits).
pub fn suite_report(fitted: &FittedSuite) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fitted suite ({}):", fitted.axis_label());
    for model in &fitted.models {
        match &model.response {
            MetricResponse::Axis(fit) => {
                let _ = writeln!(
                    out,
                    "  {:<20} = {:+.4} {:+.4}·ln({})   R² = {:.3}   active zone [{:.5}, {:.5}]",
                    model.id.as_str(),
                    fit.model.intercept(),
                    fit.model.slope(),
                    fit.axis,
                    fit.model.r_squared(),
                    fit.active_zone.0,
                    fit.active_zone.1
                );
            }
            MetricResponse::PerAxis(fits) => {
                let _ = writeln!(out, "  {:<20} (one axis at a time)", model.id.as_str());
                for fit in fits.iter() {
                    let _ = writeln!(
                        out,
                        "    {:<18} = {:+.4} {:+.4}·ln({})   R² = {:.3}   active zone \
                         [{:.5}, {:.5}]",
                        fit.axis,
                        fit.model.intercept(),
                        fit.model.slope(),
                        fit.axis,
                        fit.model.r_squared(),
                        fit.active_zone.0,
                        fit.active_zone.1
                    );
                }
            }
            MetricResponse::Surface(surface) => {
                let mut terms = format!("{:+.4}", surface.regression.intercept());
                for (axis, coefficient) in
                    surface.axes.iter().zip(&surface.regression.coefficients()[1..])
                {
                    let scaled = match surface.scales
                        [surface.axes.iter().position(|a| a == axis).expect("aligned")]
                    {
                        geopriv_lppm::ParameterScale::Logarithmic => format!("ln({axis})"),
                        geopriv_lppm::ParameterScale::Linear => axis.clone(),
                    };
                    let _ = write!(terms, " {coefficient:+.4}·{scaled}");
                }
                let _ = writeln!(
                    out,
                    "  {:<20} = {}   R² = {:.3}",
                    model.id.as_str(),
                    terms,
                    surface.r_squared()
                );
            }
        }
    }
    out
}

/// Renders a configuration recommendation: one line per configuration axis,
/// then one prediction line per metric.
pub fn recommendation_report(recommendation: &Recommendation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Recommended configuration:");
    for ((name, value), (_, range)) in
        recommendation.point.values().iter().zip(&recommendation.feasible)
    {
        let _ = writeln!(
            out,
            "  {} = {:.5}  (feasible range [{:.5}, {:.5}])",
            name, value, range.0, range.1
        );
    }
    for (id, value) in &recommendation.predictions {
        let _ = writeln!(out, "  predicted {id} = {value:.3}");
    }
    out
}

/// Renders one metric's per-user response curves as CSV: one column per
/// configuration axis, then one column per user (`user-<id>`), one row per
/// design point. Returns `None` when the sweep recorded no user column for
/// the metric (dataset grain, or unknown id).
pub fn user_curves_csv(sweep: &SweepResult, id: &MetricId) -> Option<String> {
    let column = sweep.user_column(id)?;
    let mut out = String::new();
    let mut header = sweep.space.names().join(",");
    for user in &column.users {
        let _ = write!(header, ",{user}");
    }
    let _ = writeln!(out, "{header}");
    for (index, point) in sweep.points.iter().enumerate() {
        for (i, (_, value)) in point.values().iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ",");
            }
            let _ = write!(out, "{value:.6e}");
        }
        for curve in &column.curves {
            let _ = write!(out, ",{:.4}", curve[index]);
        }
        let _ = writeln!(out);
    }
    Some(out)
}

/// Renders a per-user recommendation as an aligned plain-text table: the
/// dataset-level anchor, one row per user (verdict, configuration point,
/// per-metric predictions under the user's own models), and the reason each
/// fallback user was assigned the dataset-level point.
pub fn per_user_table(recommendation: &PerUserRecommendation) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Per-user recommendations ({} users, {} feasible, {} on the dataset-level fallback):",
        recommendation.users.len(),
        recommendation.feasible_count(),
        recommendation.fallback_count()
    );
    let _ = writeln!(out, "  dataset-level anchor: {}", recommendation.dataset);

    let axes: Vec<String> =
        recommendation.dataset.point.values().iter().map(|(name, _)| name.clone()).collect();
    let metrics: Vec<MetricId> =
        recommendation.dataset.predictions.iter().map(|(id, _)| id.clone()).collect();
    let metric_width = |id: &MetricId| id.as_str().len().max(10);
    let _ = write!(out, "  {:>12}  {:>10}", "user", "verdict");
    for axis in &axes {
        let _ = write!(out, "  {axis:>12}");
    }
    for id in &metrics {
        let _ = write!(out, "  {:>w$}", id.as_str(), w = metric_width(id));
    }
    let _ = writeln!(out);
    for user in &recommendation.users {
        let _ = write!(out, "  {:>12}  {:>10}", user.user.to_string(), user.verdict.label());
        for (_, value) in user.point.values() {
            let _ = write!(out, "  {value:>12.6}");
        }
        for id in &metrics {
            match user.predicted(id) {
                Some(value) => {
                    let _ = write!(out, "  {:>w$.4}", value, w = metric_width(id));
                }
                None => {
                    let _ = write!(out, "  {:>w$}", "-", w = metric_width(id));
                }
            }
        }
        let _ = writeln!(out);
    }
    let fallbacks: Vec<_> = recommendation.users.iter().filter(|u| u.used_fallback()).collect();
    if !fallbacks.is_empty() {
        let _ = writeln!(out, "  fallback policy: dataset-level point applied to:");
        for user in fallbacks {
            let _ = writeln!(out, "    {}: {}", user.user, user.verdict);
        }
    }
    out
}

/// Renders a per-user recommendation as CSV:
/// `user,verdict,fallback,<axes…>,<metric ids…>,reason` — predictions of
/// unmodeled users are empty cells, reasons are double-quoted.
pub fn per_user_csv(recommendation: &PerUserRecommendation) -> String {
    let mut out = String::new();
    let axes: Vec<String> =
        recommendation.dataset.point.values().iter().map(|(name, _)| name.clone()).collect();
    let metrics: Vec<MetricId> =
        recommendation.dataset.predictions.iter().map(|(id, _)| id.clone()).collect();
    let mut header = String::from("user,verdict,fallback");
    for axis in &axes {
        let _ = write!(header, ",{axis}");
    }
    for id in &metrics {
        let _ = write!(header, ",{id}");
    }
    let _ = writeln!(out, "{header},reason");
    for user in &recommendation.users {
        let _ =
            write!(out, "{},{},{}", user.user.value(), user.verdict.label(), user.used_fallback());
        for (_, value) in user.point.values() {
            let _ = write!(out, ",{value:.6e}");
        }
        for id in &metrics {
            match user.predicted(id) {
                Some(value) => {
                    let _ = write!(out, ",{value:.4}");
                }
                None => {
                    let _ = write!(out, ",");
                }
            }
        }
        let reason = match &user.verdict {
            UserVerdict::Feasible => String::new(),
            UserVerdict::Infeasible { reason } | UserVerdict::Unmodeled { reason } => {
                reason.clone()
            }
        };
        let _ = writeln!(out, ",\"{}\"", reason.replace('"', "\"\""));
    }
    out
}

// --- JSON export -----------------------------------------------------------
//
// The vendored `serde` is a marker-trait shim (see `vendor/README.md`), so
// machine-consumable output is rendered by hand, exactly like the bench
// harness's `BenchJson`. Floats use Rust's shortest round-trip `Display`
// (valid JSON numbers, bit-faithful on re-parse); non-finite values become
// `null`.

fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

fn json_point(point: &geopriv_lppm::ConfigPoint, indent: &str) -> String {
    let entries: Vec<String> = point
        .values()
        .iter()
        .map(|(name, value)| format!("{indent}  {}: {}", json_string(name), json_number(*value)))
        .collect();
    format!("{{\n{}\n{indent}}}", entries.join(",\n"))
}

fn json_predictions(predictions: &[(MetricId, f64)], indent: &str) -> String {
    if predictions.is_empty() {
        return "{}".to_string();
    }
    let entries: Vec<String> = predictions
        .iter()
        .map(|(id, value)| {
            format!("{indent}  {}: {}", json_string(id.as_str()), json_number(*value))
        })
        .collect();
    format!("{{\n{}\n{indent}}}", entries.join(",\n"))
}

fn json_recommendation(recommendation: &Recommendation, indent: &str) -> String {
    let feasible: Vec<String> = recommendation
        .feasible
        .iter()
        .map(|(name, (lo, hi))| {
            format!(
                "{indent}    {}: {{\"min\": {}, \"max\": {}}}",
                json_string(name),
                json_number(*lo),
                json_number(*hi)
            )
        })
        .collect();
    format!(
        "{{\n{indent}  \"point\": {},\n{indent}  \"feasible\": {{\n{}\n{indent}  }},\n{indent}  \
         \"predictions\": {}\n{indent}}}",
        json_point(&recommendation.point, &format!("{indent}  ")),
        feasible.join(",\n"),
        json_predictions(&recommendation.predictions, &format!("{indent}  ")),
    )
}

/// Renders a [`Recommendation`] as a deterministic, pretty-printed JSON
/// object: the configuration point (axis order), per-axis feasible intervals
/// and per-metric predictions (suite order).
pub fn recommendation_to_json(recommendation: &Recommendation) -> String {
    format!("{}\n", json_recommendation(recommendation, ""))
}

/// Renders a [`PerUserRecommendation`] as deterministic JSON: the documented
/// fallback policy, the dataset-level anchor and one object per user with
/// its verdict, fallback flag, point and predictions.
pub fn per_user_recommendation_to_json(recommendation: &PerUserRecommendation) -> String {
    let mut users = Vec::with_capacity(recommendation.users.len());
    for user in &recommendation.users {
        let reason = match &user.verdict {
            UserVerdict::Feasible => String::new(),
            UserVerdict::Infeasible { reason } | UserVerdict::Unmodeled { reason } => {
                reason.clone()
            }
        };
        let mut entry = format!(
            "    {{\n      \"user\": {},\n      \"verdict\": {},\n      \"fallback\": {}",
            user.user.value(),
            json_string(user.verdict.label()),
            user.used_fallback()
        );
        if !reason.is_empty() {
            let _ = write!(entry, ",\n      \"reason\": {}", json_string(&reason));
        }
        let _ = write!(
            entry,
            ",\n      \"point\": {},\n      \"predictions\": {}\n    }}",
            json_point(&user.point, "      "),
            json_predictions(&user.predictions, "      ")
        );
        users.push(entry);
    }
    format!(
        "{{\n  \"fallback_policy\": {},\n  \"feasible_users\": {},\n  \"fallback_users\": {},\n  \
         \"dataset\": {},\n  \"users\": [\n{}\n  ]\n}}\n",
        json_string("infeasible and unmodeled users are assigned the dataset-level point"),
        recommendation.feasible_count(),
        recommendation.fallback_count(),
        json_recommendation(&recommendation.dataset, "  "),
        users.join(",\n")
    )
}

// --- JSON import -----------------------------------------------------------
//
// The exact inverse of the exporters above, built on the framework's own
// [`crate::json`] parser. This is the wire format the serving layer loads at
// startup: a `PerUserRecommendation` exported by the offline pipeline is the
// deployment artifact, so parsing is strict — unknown verdict labels,
// inconsistent fallback flags and miscounted summaries are typed errors, not
// silent repairs.

fn shape_error(path: &str, reason: &str) -> CoreError {
    CoreError::Parse { reason: format!("{path}: {reason}") }
}

fn required<'a>(value: &'a JsonValue, path: &str, key: &str) -> Result<&'a JsonValue, CoreError> {
    value.get(key).ok_or_else(|| shape_error(path, &format!("missing member \"{key}\"")))
}

fn number_at(value: &JsonValue, path: &str) -> Result<f64, CoreError> {
    value.as_f64().ok_or_else(|| shape_error(path, &format!("expected a number, found {value}")))
}

fn point_at(value: &JsonValue, path: &str) -> Result<ConfigPoint, CoreError> {
    let members = value
        .members()
        .ok_or_else(|| shape_error(path, &format!("expected an object, found {value}")))?;
    if members.is_empty() {
        return Err(shape_error(path, "a configuration point needs at least one axis"));
    }
    let mut named = Vec::with_capacity(members.len());
    for (axis, coordinate) in members {
        named.push((axis.clone(), number_at(coordinate, &format!("{path}.{axis}"))?));
    }
    Ok(ConfigPoint::from_named(named))
}

fn predictions_at(value: &JsonValue, path: &str) -> Result<Vec<(MetricId, f64)>, CoreError> {
    let members = value
        .members()
        .ok_or_else(|| shape_error(path, &format!("expected an object, found {value}")))?;
    let mut predictions = Vec::with_capacity(members.len());
    for (id, prediction) in members {
        predictions.push((MetricId::new(id), number_at(prediction, &format!("{path}.{id}"))?));
    }
    Ok(predictions)
}

fn recommendation_at(value: &JsonValue, path: &str) -> Result<Recommendation, CoreError> {
    let point = point_at(required(value, path, "point")?, &format!("{path}.point"))?;
    let feasible_value = required(value, path, "feasible")?;
    let members = feasible_value.members().ok_or_else(|| {
        shape_error(
            &format!("{path}.feasible"),
            &format!("expected an object, found {feasible_value}"),
        )
    })?;
    let mut feasible = Vec::with_capacity(members.len());
    for (axis, interval) in members {
        let interval_path = format!("{path}.feasible.{axis}");
        let min = number_at(required(interval, &interval_path, "min")?, &interval_path)?;
        let max = number_at(required(interval, &interval_path, "max")?, &interval_path)?;
        feasible.push((axis.clone(), (min, max)));
    }
    let predictions =
        predictions_at(required(value, path, "predictions")?, &format!("{path}.predictions"))?;
    Ok(Recommendation { point, feasible, predictions })
}

fn user_at(value: &JsonValue, path: &str) -> Result<UserRecommendation, CoreError> {
    let id = required(value, path, "user")?
        .as_u64()
        .ok_or_else(|| shape_error(path, "\"user\" must be an unsigned integer"))?;
    let label = required(value, path, "verdict")?
        .as_str()
        .ok_or_else(|| shape_error(path, "\"verdict\" must be a string"))?;
    let reason = match value.get("reason") {
        Some(reason) => reason
            .as_str()
            .ok_or_else(|| shape_error(path, "\"reason\" must be a string"))?
            .to_string(),
        None => String::new(),
    };
    let verdict = match label {
        "feasible" => UserVerdict::Feasible,
        "infeasible" => UserVerdict::Infeasible { reason },
        "unmodeled" => UserVerdict::Unmodeled { reason },
        other => {
            return Err(shape_error(path, &format!("unknown verdict label \"{other}\"")));
        }
    };
    let fallback = required(value, path, "fallback")?
        .as_bool()
        .ok_or_else(|| shape_error(path, "\"fallback\" must be a boolean"))?;
    if fallback == verdict.is_feasible() {
        return Err(shape_error(
            path,
            &format!("fallback flag {fallback} contradicts verdict \"{}\"", verdict.label()),
        ));
    }
    let point = point_at(required(value, path, "point")?, &format!("{path}.point"))?;
    let predictions =
        predictions_at(required(value, path, "predictions")?, &format!("{path}.predictions"))?;
    Ok(UserRecommendation { user: UserId::new(id), verdict, point, predictions })
}

/// Parses the JSON produced by [`recommendation_to_json`] back into a
/// [`Recommendation`]. Exact inverse: re-rendering the parsed value yields
/// the input byte for byte (floats use the shortest round-trip form).
///
/// # Errors
///
/// Returns [`CoreError::Parse`] on malformed JSON or a document without the
/// expected members, naming the offending field path.
pub fn recommendation_from_json(json: &str) -> Result<Recommendation, CoreError> {
    recommendation_at(&JsonValue::parse(json)?, "$")
}

/// Parses the JSON produced by [`per_user_recommendation_to_json`] back into
/// a [`PerUserRecommendation`] — the serving layer's startup artifact.
///
/// Parsing is strict: verdict labels must be known, each user's `fallback`
/// flag must agree with her verdict, and the `feasible_users` /
/// `fallback_users` summaries must match the user rows (a mismatch means the
/// document was hand-edited or truncated).
///
/// # Errors
///
/// Returns [`CoreError::Parse`] on malformed JSON or any of the consistency
/// violations above, naming the offending field path.
pub fn per_user_recommendation_from_json(json: &str) -> Result<PerUserRecommendation, CoreError> {
    let value = JsonValue::parse(json)?;
    let dataset = recommendation_at(required(&value, "$", "dataset")?, "$.dataset")?;
    let rows = required(&value, "$", "users")?
        .elements()
        .ok_or_else(|| shape_error("$.users", "expected an array"))?;
    let mut users = Vec::with_capacity(rows.len());
    for (index, row) in rows.iter().enumerate() {
        users.push(user_at(row, &format!("$.users[{index}]"))?);
    }
    let recommendation = PerUserRecommendation { dataset, users };
    let feasible = required(&value, "$", "feasible_users")?
        .as_u64()
        .ok_or_else(|| shape_error("$.feasible_users", "expected an unsigned integer"))?;
    let fallback = required(&value, "$", "fallback_users")?
        .as_u64()
        .ok_or_else(|| shape_error("$.fallback_users", "expected an unsigned integer"))?;
    if feasible as usize != recommendation.feasible_count()
        || fallback as usize != recommendation.fallback_count()
    {
        return Err(shape_error(
            "$",
            &format!(
                "summary counts ({feasible} feasible, {fallback} fallback) do not match the \
                 user rows ({} feasible, {} fallback)",
                recommendation.feasible_count(),
                recommendation.fallback_count()
            ),
        ));
    }
    Ok(recommendation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{MetricColumn, SweepMode};
    use crate::modeling::Modeler;
    use crate::objectives::{at_least, at_most, Objectives};
    use geopriv_lppm::{ConfigSpace, ParameterDescriptor, ParameterScale};
    use geopriv_metrics::{Direction, MetricId};

    fn sweep() -> SweepResult {
        let parameters: Vec<f64> =
            (0..30).map(|i| 1e-4 * (1.0f64 / 1e-4).powf(i as f64 / 29.0)).collect();
        let privacy: Vec<f64> =
            parameters.iter().map(|e| (0.84 + 0.17 * e.ln()).clamp(0.0, 0.45)).collect();
        let utility: Vec<f64> =
            parameters.iter().map(|e| (1.21 + 0.09 * e.ln()).clamp(0.2, 1.0)).collect();
        SweepResult::from_axis(
            "geo-indistinguishability",
            ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap(),
            &parameters,
            vec![
                MetricColumn {
                    id: MetricId::new("poi-retrieval"),
                    direction: Direction::LowerIsBetter,
                    runs: privacy.iter().map(|&v| vec![v, v]).collect(),
                    means: privacy,
                },
                MetricColumn {
                    id: MetricId::new("area-coverage"),
                    direction: Direction::HigherIsBetter,
                    runs: utility.iter().map(|&v| vec![v, v]).collect(),
                    means: utility,
                },
            ],
        )
        .unwrap()
    }

    fn grid_sweep() -> SweepResult {
        let space = ConfigSpace::new(vec![
            ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap(),
            ParameterDescriptor::new("cell_size", 50.0, 5000.0, ParameterScale::Logarithmic)
                .unwrap(),
        ])
        .unwrap();
        let points = space.grid(&[5, 5]).unwrap();
        let response: Vec<f64> = points
            .iter()
            .map(|p| {
                0.9 + 0.05 * p.get("epsilon").unwrap().ln()
                    - 0.04 * p.get("cell_size").unwrap().ln()
            })
            .collect();
        SweepResult::new(
            "pipeline[geo-indistinguishability, grid-cloaking]",
            space,
            SweepMode::Grid,
            points,
            vec![MetricColumn {
                id: MetricId::new("poi-retrieval"),
                direction: Direction::LowerIsBetter,
                runs: vec![],
                means: response,
            }],
        )
        .unwrap()
    }

    #[test]
    fn csv_has_header_and_one_row_per_sample() {
        let s = sweep();
        let csv = sweep_to_csv(&s);
        assert_eq!(csv.lines().count(), 31);
        assert!(csv.starts_with("epsilon,poi-retrieval,area-coverage"));
        assert!(csv.lines().next().unwrap().contains("poi-retrieval_std"));
        assert!(csv.lines().nth(1).unwrap().split(',').count() == 5);
    }

    #[test]
    fn multi_axis_csv_has_one_column_per_axis() {
        let csv = sweep_to_csv(&grid_sweep());
        assert!(csv.starts_with("epsilon,cell_size,poi-retrieval"));
        assert_eq!(csv.lines().count(), 26);
        assert_eq!(csv.lines().nth(1).unwrap().split(',').count(), 4);
    }

    #[test]
    fn irregular_adaptive_designs_render_row_per_point() {
        // An adaptive sweep is not a full factorial: drop interior points
        // and relabel the mode. Rendering is per design point, so the row
        // count tracks the irregular design exactly.
        let grid = grid_sweep();
        let keep: Vec<usize> = (0..grid.points.len()).filter(|i| i % 4 != 2).collect();
        let irregular = SweepResult::new(
            grid.lppm_name.clone(),
            grid.space.clone(),
            SweepMode::Adaptive,
            keep.iter().map(|&i| grid.points[i].clone()).collect(),
            grid.columns
                .iter()
                .map(|c| MetricColumn {
                    id: c.id.clone(),
                    direction: c.direction,
                    runs: vec![],
                    means: keep.iter().map(|&i| c.means[i]).collect(),
                })
                .collect(),
        )
        .unwrap();
        let csv = sweep_to_csv(&irregular);
        assert!(csv.starts_with("epsilon,cell_size,poi-retrieval"));
        assert_eq!(csv.lines().count(), 1 + keep.len());
        let table = sweep_to_table(&irregular);
        assert_eq!(table.lines().count(), 1 + keep.len());
        assert!(table.contains("cell_size"));
    }

    #[test]
    fn table_is_aligned_and_complete() {
        let s = sweep();
        let table = sweep_to_table(&s);
        assert_eq!(table.lines().count(), 31);
        assert!(table.contains("poi-retrieval"));
        assert!(table.contains("area-coverage"));

        let grid_table = sweep_to_table(&grid_sweep());
        assert_eq!(grid_table.lines().count(), 26);
        assert!(grid_table.contains("cell_size"));
    }

    #[test]
    fn suite_and_recommendation_reports_mention_key_numbers() {
        let s = sweep();
        let fitted = Modeler::new().fit(&s).unwrap();
        let report = suite_report(&fitted);
        assert!(report.contains("poi-retrieval"));
        assert!(report.contains("area-coverage"));
        assert!(report.contains("R²"));

        let configurator = crate::configurator::Configurator::new(fitted);
        let recommendation = configurator.recommend(&Objectives::paper_example()).unwrap();
        let report = recommendation_report(&recommendation);
        assert!(report.contains("epsilon"));
        assert!(report.contains("predicted poi-retrieval"));
        assert!(report.contains("predicted area-coverage"));
    }

    fn per_user_recommendation() -> PerUserRecommendation {
        let sweep = crate::modeling::fixtures::per_user_sweep();
        let fitted = Modeler::new().fit(&sweep).unwrap();
        let per_user = Modeler::new().fit_per_user(&sweep).unwrap();
        crate::configurator::Configurator::new(fitted)
            .recommend_per_user(
                &per_user,
                &Objectives::new()
                    .require("poi-retrieval", at_most(0.15))
                    .unwrap()
                    .require("area-coverage", at_least(0.80))
                    .unwrap(),
            )
            .unwrap()
    }

    #[test]
    fn user_curves_render_one_column_per_user() {
        let per_user = crate::modeling::fixtures::per_user_sweep();
        let csv = user_curves_csv(&per_user, &MetricId::new("area-coverage")).unwrap();
        assert!(csv.starts_with("epsilon,user-1,user-2,user-3,user-4"));
        assert_eq!(csv.lines().count(), per_user.len() + 1);
        assert_eq!(csv.lines().nth(1).unwrap().split(',').count(), 5);
        // Unknown metrics and dataset-grain sweeps have no user curves.
        assert!(user_curves_csv(&per_user, &MetricId::new("nope")).is_none());
        assert!(user_curves_csv(&sweep(), &MetricId::new("poi-retrieval")).is_none());
    }

    #[test]
    fn per_user_table_and_csv_cover_every_user_and_fallback() {
        let recommendation = per_user_recommendation();
        let table = per_user_table(&recommendation);
        assert!(table.contains("4 users, 1 feasible, 3 on the dataset-level fallback"));
        assert!(table.contains("dataset-level anchor"));
        for user in ["user-1", "user-2", "user-3", "user-4"] {
            assert!(table.contains(user), "missing {user} in:\n{table}");
        }
        assert!(table.contains("feasible"));
        assert!(table.contains("unmodeled"));
        assert!(table.contains("fallback policy: dataset-level point applied to:"));

        let csv = per_user_csv(&recommendation);
        assert!(csv.starts_with("user,verdict,fallback,epsilon,poi-retrieval,area-coverage,reason"));
        assert_eq!(csv.lines().count(), 5);
        let feasible_row = csv.lines().nth(1).unwrap();
        assert!(feasible_row.starts_with("1,feasible,false,"));
        // Unmodeled users have empty prediction cells and a quoted reason.
        // (User order is first-appearance across the user columns: 1, 2, 4
        // from the privacy column, then 3 from the utility column.)
        let unmodeled_row = csv.lines().nth(3).unwrap();
        assert!(unmodeled_row.starts_with("4,unmodeled,true,"), "row: {unmodeled_row}");
        assert!(unmodeled_row.contains(",,"));
        assert!(unmodeled_row.ends_with('"'));
    }

    #[test]
    fn json_exports_are_valid_and_deterministic() {
        let s = sweep();
        let fitted = Modeler::new().fit(&s).unwrap();
        let recommendation = crate::configurator::Configurator::new(fitted)
            .recommend(&Objectives::paper_example())
            .unwrap();
        let json = recommendation_to_json(&recommendation);
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"point\""));
        assert!(json.contains("\"epsilon\""));
        assert!(json.contains("\"feasible\""));
        assert!(json.contains("\"min\""));
        assert!(json.contains("\"predictions\""));
        assert!(json.contains("\"poi-retrieval\""));
        assert_eq!(json, recommendation_to_json(&recommendation));
        // Balanced braces/brackets — a cheap structural sanity check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let per_user = per_user_recommendation();
        let json = per_user_recommendation_to_json(&per_user);
        assert!(json.contains("\"fallback_policy\""));
        assert!(json.contains("\"dataset\""));
        assert!(json.contains("\"users\""));
        assert!(json.contains("\"verdict\": \"feasible\""));
        assert!(json.contains("\"verdict\": \"unmodeled\""));
        assert!(json.contains("\"reason\""));
        assert!(json.contains("\"feasible_users\": 1"));
        assert!(json.contains("\"fallback_users\": 3"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn recommendation_json_round_trips() {
        let s = sweep();
        let fitted = Modeler::new().fit(&s).unwrap();
        let recommendation = crate::configurator::Configurator::new(fitted)
            .recommend(&Objectives::paper_example())
            .unwrap();
        let json = recommendation_to_json(&recommendation);
        let parsed = recommendation_from_json(&json).unwrap();
        // Struct equality AND byte equality of the re-render: the parser is
        // the exact inverse of the exporter.
        assert_eq!(parsed, recommendation);
        assert_eq!(recommendation_to_json(&parsed), json);
    }

    #[test]
    fn per_user_json_round_trips() {
        let recommendation = per_user_recommendation();
        let json = per_user_recommendation_to_json(&recommendation);
        let parsed = per_user_recommendation_from_json(&json).unwrap();
        assert_eq!(parsed, recommendation);
        assert_eq!(per_user_recommendation_to_json(&parsed), json);
    }

    #[test]
    fn tampered_per_user_documents_are_rejected() {
        let json = per_user_recommendation_to_json(&per_user_recommendation());

        // Summary counts must match the user rows.
        let miscounted = json.replacen("\"feasible_users\": 1", "\"feasible_users\": 2", 1);
        let err = per_user_recommendation_from_json(&miscounted).unwrap_err();
        assert!(err.to_string().contains("do not match the user rows"), "{err}");

        // The fallback flag must agree with the verdict.
        let contradicted = json.replacen(
            "\"verdict\": \"feasible\",\n      \"fallback\": false",
            "\"verdict\": \"feasible\",\n      \"fallback\": true",
            1,
        );
        let err = per_user_recommendation_from_json(&contradicted).unwrap_err();
        assert!(err.to_string().contains("contradicts verdict"), "{err}");

        // Unknown verdict labels are not repaired.
        let unknown = json.replacen("\"verdict\": \"unmodeled\"", "\"verdict\": \"undecided\"", 1);
        let err = per_user_recommendation_from_json(&unknown).unwrap_err();
        assert!(err.to_string().contains("unknown verdict label"), "{err}");

        // Missing members name the field path.
        let err = per_user_recommendation_from_json("{}").unwrap_err();
        assert!(err.to_string().contains("missing member \"dataset\""), "{err}");
        let err = recommendation_from_json("{\"point\": {}}").unwrap_err();
        assert!(err.to_string().contains("at least one axis"), "{err}");
        let err = recommendation_from_json("[1, 2]").unwrap_err();
        assert!(err.to_string().contains("missing member \"point\""), "{err}");
        let err = recommendation_from_json("not json").unwrap_err();
        assert!(matches!(err, CoreError::Parse { .. }), "{err}");
    }

    #[test]
    fn json_strings_and_numbers_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak\tand\u{1}"), "\"line\\nbreak\\tand\\u0001\"");
        assert_eq!(json_number(0.5), "0.5");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    #[test]
    fn surface_reports_render_every_axis() {
        let fitted = Modeler::new().fit(&grid_sweep()).unwrap();
        let report = suite_report(&fitted);
        assert!(report.starts_with("Fitted suite (epsilon × cell_size):"));
        assert!(report.contains("ln(epsilon)"));
        assert!(report.contains("ln(cell_size)"));

        let recommendation = crate::configurator::Configurator::new(fitted)
            .recommend(
                &Objectives::new()
                    .require("poi-retrieval", at_most(0.4))
                    .unwrap()
                    .require("poi-retrieval", at_least(0.0))
                    .unwrap(),
            )
            .unwrap();
        let report = recommendation_report(&recommendation);
        assert!(report.contains("epsilon ="));
        assert!(report.contains("cell_size ="));
    }
}
