//! Reporting helpers used by the reproduction harness.
//!
//! The bench binaries regenerate the paper's figures as plain-text tables and
//! CSV series; these helpers render [`SweepResult`]s, [`FittedSuite`]s and
//! [`Recommendation`]s in a stable, diff-friendly format, one column or line
//! per suite metric.

use crate::configurator::Recommendation;
use crate::experiment::SweepResult;
use crate::modeling::FittedSuite;
use std::fmt::Write as _;

/// Renders a sweep as CSV: the parameter column, one mean column per metric
/// (suite order), then one `_std` column per metric.
pub fn sweep_to_csv(sweep: &SweepResult) -> String {
    let mut out = String::new();
    let mut header = sweep.parameter_name.clone();
    for column in &sweep.columns {
        let _ = write!(header, ",{}", column.id);
    }
    for column in &sweep.columns {
        let _ = write!(header, ",{}_std", column.id);
    }
    let _ = writeln!(out, "{header}");
    for (point, parameter) in sweep.parameters.iter().enumerate() {
        let _ = write!(out, "{parameter:.6e}");
        for column in &sweep.columns {
            let _ = write!(out, ",{:.4}", column.means[point]);
        }
        for column in &sweep.columns {
            let _ = write!(out, ",{:.4}", column.std(point));
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a sweep as an aligned plain-text table (one row per sweep point,
/// one column per metric).
pub fn sweep_to_table(sweep: &SweepResult) -> String {
    let mut out = String::new();
    let width = |id: &geopriv_metrics::MetricId| id.as_str().len().max(10);
    let _ = write!(out, "{:>12}", sweep.parameter_name);
    for column in &sweep.columns {
        let _ = write!(out, "  {:>w$}", column.id.as_str(), w = width(&column.id));
    }
    let _ = writeln!(out);
    for (point, parameter) in sweep.parameters.iter().enumerate() {
        let _ = write!(out, "{parameter:>12.6}");
        for column in &sweep.columns {
            let _ = write!(out, "  {:>w$.4}", column.means[point], w = width(&column.id));
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the fitted Equation-2-style models, one line per metric.
pub fn suite_report(fitted: &FittedSuite) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fitted suite ({}):", fitted.parameter_name);
    for model in &fitted.models {
        let _ = writeln!(
            out,
            "  {:<20} = {:+.4} {:+.4}·ln({})   R² = {:.3}   active zone [{:.5}, {:.5}]",
            model.id.as_str(),
            model.model.intercept(),
            model.model.slope(),
            fitted.parameter_name,
            model.model.r_squared(),
            model.active_zone.0,
            model.active_zone.1
        );
    }
    out
}

/// Renders a configuration recommendation, one prediction line per metric.
pub fn recommendation_report(recommendation: &Recommendation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Recommended configuration:");
    let _ = writeln!(
        out,
        "  {} = {:.5}  (feasible range [{:.5}, {:.5}])",
        recommendation.parameter_name,
        recommendation.parameter,
        recommendation.feasible_range.0,
        recommendation.feasible_range.1
    );
    for (id, value) in &recommendation.predictions {
        let _ = writeln!(out, "  predicted {id} = {value:.3}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::MetricColumn;
    use crate::modeling::Modeler;
    use crate::objectives::Objectives;
    use geopriv_lppm::ParameterScale;
    use geopriv_metrics::{Direction, MetricId};

    fn sweep() -> SweepResult {
        let parameters: Vec<f64> =
            (0..30).map(|i| 1e-4 * (1.0f64 / 1e-4).powf(i as f64 / 29.0)).collect();
        let privacy: Vec<f64> =
            parameters.iter().map(|e| (0.84 + 0.17 * e.ln()).clamp(0.0, 0.45)).collect();
        let utility: Vec<f64> =
            parameters.iter().map(|e| (1.21 + 0.09 * e.ln()).clamp(0.2, 1.0)).collect();
        SweepResult {
            lppm_name: "geo-indistinguishability".to_string(),
            parameter_name: "epsilon".to_string(),
            parameter_scale: ParameterScale::Logarithmic,
            parameters,
            columns: vec![
                MetricColumn {
                    id: MetricId::new("poi-retrieval"),
                    direction: Direction::LowerIsBetter,
                    runs: privacy.iter().map(|&v| vec![v, v]).collect(),
                    means: privacy,
                },
                MetricColumn {
                    id: MetricId::new("area-coverage"),
                    direction: Direction::HigherIsBetter,
                    runs: utility.iter().map(|&v| vec![v, v]).collect(),
                    means: utility,
                },
            ],
        }
    }

    #[test]
    fn csv_has_header_and_one_row_per_sample() {
        let s = sweep();
        let csv = sweep_to_csv(&s);
        assert_eq!(csv.lines().count(), 31);
        assert!(csv.starts_with("epsilon,poi-retrieval,area-coverage"));
        assert!(csv.lines().next().unwrap().contains("poi-retrieval_std"));
        assert!(csv.lines().nth(1).unwrap().split(',').count() == 5);
    }

    #[test]
    fn table_is_aligned_and_complete() {
        let s = sweep();
        let table = sweep_to_table(&s);
        assert_eq!(table.lines().count(), 31);
        assert!(table.contains("poi-retrieval"));
        assert!(table.contains("area-coverage"));
    }

    #[test]
    fn suite_and_recommendation_reports_mention_key_numbers() {
        let s = sweep();
        let fitted = Modeler::new().fit(&s).unwrap();
        let report = suite_report(&fitted);
        assert!(report.contains("poi-retrieval"));
        assert!(report.contains("area-coverage"));
        assert!(report.contains("R²"));

        let configurator =
            crate::configurator::Configurator::new(fitted, ParameterScale::Logarithmic);
        let recommendation = configurator.recommend(&Objectives::paper_example()).unwrap();
        let report = recommendation_report(&recommendation);
        assert!(report.contains("epsilon"));
        assert!(report.contains("predicted poi-retrieval"));
        assert!(report.contains("predicted area-coverage"));
    }
}
