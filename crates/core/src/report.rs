//! Reporting helpers used by the reproduction harness.
//!
//! The bench binaries regenerate the paper's figures as plain-text tables and
//! CSV series; these helpers render [`SweepResult`]s, [`FittedRelationship`]s
//! and [`Recommendation`]s in a stable, diff-friendly format.

use crate::configurator::Recommendation;
use crate::experiment::SweepResult;
use crate::modeling::FittedRelationship;
use std::fmt::Write as _;

/// Renders a sweep as CSV: `parameter,privacy,utility,privacy_std,utility_std`.
pub fn sweep_to_csv(sweep: &SweepResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{},{},{},{}_std,{}_std",
        sweep.parameter_name,
        sweep.privacy_metric_name,
        sweep.utility_metric_name,
        sweep.privacy_metric_name,
        sweep.utility_metric_name
    );
    for s in &sweep.samples {
        let _ = writeln!(
            out,
            "{:.6e},{:.4},{:.4},{:.4},{:.4}",
            s.parameter,
            s.privacy,
            s.utility,
            s.privacy_std(),
            s.utility_std()
        );
    }
    out
}

/// Renders a sweep as an aligned plain-text table (one row per sweep point).
pub fn sweep_to_table(sweep: &SweepResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>12}  {:>10}  {:>10}", sweep.parameter_name, "privacy", "utility");
    for s in &sweep.samples {
        let _ = writeln!(out, "{:>12.6}  {:>10.4}  {:>10.4}", s.parameter, s.privacy, s.utility);
    }
    out
}

/// Renders the fitted Equation-2-style models, paper coefficients alongside.
pub fn relationship_report(fitted: &FittedRelationship) -> String {
    let mut out = String::new();
    let p = &fitted.privacy.model;
    let u = &fitted.utility.model;
    let _ = writeln!(out, "Fitted relationship ({}):", fitted.parameter_name);
    let _ = writeln!(
        out,
        "  {:<16} = {:+.4} {:+.4}·ln({})   R² = {:.3}   active zone [{:.5}, {:.5}]",
        fitted.privacy.metric_name,
        p.intercept(),
        p.slope(),
        fitted.parameter_name,
        p.r_squared(),
        fitted.privacy.active_zone.0,
        fitted.privacy.active_zone.1
    );
    let _ = writeln!(
        out,
        "  {:<16} = {:+.4} {:+.4}·ln({})   R² = {:.3}   active zone [{:.5}, {:.5}]",
        fitted.utility.metric_name,
        u.intercept(),
        u.slope(),
        fitted.parameter_name,
        u.r_squared(),
        fitted.utility.active_zone.0,
        fitted.utility.active_zone.1
    );
    let _ = writeln!(out, "  paper Equation 2: a = 0.84, b = 0.17, α = 1.21, β = 0.09");
    out
}

/// Renders a configuration recommendation.
pub fn recommendation_report(recommendation: &Recommendation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Recommended configuration:");
    let _ = writeln!(
        out,
        "  {} = {:.5}  (feasible range [{:.5}, {:.5}])",
        recommendation.parameter_name,
        recommendation.parameter,
        recommendation.feasible_range.0,
        recommendation.feasible_range.1
    );
    let _ = writeln!(
        out,
        "  predicted privacy = {:.3}, predicted utility = {:.3}",
        recommendation.predicted_privacy, recommendation.predicted_utility
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SweepSample;
    use crate::modeling::Modeler;
    use geopriv_lppm::ParameterScale;

    fn sweep() -> SweepResult {
        let samples: Vec<SweepSample> = (0..30)
            .map(|i| {
                let epsilon = 1e-4 * (1.0f64 / 1e-4).powf(i as f64 / 29.0);
                let privacy = (0.84 + 0.17 * epsilon.ln()).clamp(0.0, 0.45);
                let utility = (1.21 + 0.09 * epsilon.ln()).clamp(0.2, 1.0);
                SweepSample {
                    parameter: epsilon,
                    privacy,
                    utility,
                    privacy_runs: vec![privacy, privacy],
                    utility_runs: vec![utility, utility],
                }
            })
            .collect();
        SweepResult {
            lppm_name: "geo-indistinguishability".to_string(),
            parameter_name: "epsilon".to_string(),
            parameter_scale: ParameterScale::Logarithmic,
            privacy_metric_name: "poi-retrieval".to_string(),
            utility_metric_name: "area-coverage".to_string(),
            samples,
        }
    }

    #[test]
    fn csv_has_header_and_one_row_per_sample() {
        let s = sweep();
        let csv = sweep_to_csv(&s);
        assert_eq!(csv.lines().count(), 31);
        assert!(csv.starts_with("epsilon,poi-retrieval,area-coverage"));
        assert!(csv.lines().nth(1).unwrap().split(',').count() == 5);
    }

    #[test]
    fn table_is_aligned_and_complete() {
        let s = sweep();
        let table = sweep_to_table(&s);
        assert_eq!(table.lines().count(), 31);
        assert!(table.contains("privacy"));
        assert!(table.contains("utility"));
    }

    #[test]
    fn relationship_and_recommendation_reports_mention_key_numbers() {
        let s = sweep();
        let fitted = Modeler::new().fit(&s).unwrap();
        let report = relationship_report(&fitted);
        assert!(report.contains("poi-retrieval"));
        assert!(report.contains("area-coverage"));
        assert!(report.contains("R²"));
        assert!(report.contains("0.84")); // the paper coefficients footer

        let configurator =
            crate::configurator::Configurator::new(fitted, ParameterScale::Logarithmic);
        let recommendation =
            configurator.recommend(crate::objectives::Objectives::paper_example()).unwrap();
        let report = recommendation_report(&recommendation);
        assert!(report.contains("epsilon"));
        assert!(report.contains("predicted privacy"));
    }
}
