//! Reporting helpers used by the reproduction harness.
//!
//! The bench binaries regenerate the paper's figures as plain-text tables and
//! CSV series; these helpers render [`SweepResult`]s, [`FittedSuite`]s and
//! [`Recommendation`]s in a stable, diff-friendly format — one column per
//! configuration axis, one column or line per suite metric. A one-axis sweep
//! renders byte-identically to the historical single-scalar output.

use crate::configurator::Recommendation;
use crate::experiment::SweepResult;
use crate::modeling::{FittedSuite, MetricResponse};
use std::fmt::Write as _;

/// Renders a sweep as CSV: one column per configuration axis (design-matrix
/// order), one mean column per metric (suite order), then one `_std` column
/// per metric.
pub fn sweep_to_csv(sweep: &SweepResult) -> String {
    let mut out = String::new();
    let mut header = sweep.space.names().join(",");
    for column in &sweep.columns {
        let _ = write!(header, ",{}", column.id);
    }
    for column in &sweep.columns {
        let _ = write!(header, ",{}_std", column.id);
    }
    let _ = writeln!(out, "{header}");
    for (index, point) in sweep.points.iter().enumerate() {
        for (i, (_, value)) in point.values().iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ",");
            }
            let _ = write!(out, "{value:.6e}");
        }
        for column in &sweep.columns {
            let _ = write!(out, ",{:.4}", column.means[index]);
        }
        for column in &sweep.columns {
            let _ = write!(out, ",{:.4}", column.std(index));
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a sweep as an aligned plain-text table (one row per design point,
/// one column per axis and per metric).
pub fn sweep_to_table(sweep: &SweepResult) -> String {
    let mut out = String::new();
    let width = |id: &geopriv_metrics::MetricId| id.as_str().len().max(10);
    for (i, name) in sweep.space.names().iter().enumerate() {
        if i > 0 {
            let _ = write!(out, "  ");
        }
        let _ = write!(out, "{name:>12}");
    }
    for column in &sweep.columns {
        let _ = write!(out, "  {:>w$}", column.id.as_str(), w = width(&column.id));
    }
    let _ = writeln!(out);
    for (index, point) in sweep.points.iter().enumerate() {
        for (i, (_, value)) in point.values().iter().enumerate() {
            if i > 0 {
                let _ = write!(out, "  ");
            }
            let _ = write!(out, "{value:>12.6}");
        }
        for column in &sweep.columns {
            let _ = write!(out, "  {:>w$.4}", column.means[index], w = width(&column.id));
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the fitted Equation-2-style models, one line per metric (one
/// line per axis for one-at-a-time fits).
pub fn suite_report(fitted: &FittedSuite) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fitted suite ({}):", fitted.axis_label());
    for model in &fitted.models {
        match &model.response {
            MetricResponse::Axis(fit) => {
                let _ = writeln!(
                    out,
                    "  {:<20} = {:+.4} {:+.4}·ln({})   R² = {:.3}   active zone [{:.5}, {:.5}]",
                    model.id.as_str(),
                    fit.model.intercept(),
                    fit.model.slope(),
                    fit.axis,
                    fit.model.r_squared(),
                    fit.active_zone.0,
                    fit.active_zone.1
                );
            }
            MetricResponse::PerAxis(fits) => {
                let _ = writeln!(out, "  {:<20} (one axis at a time)", model.id.as_str());
                for fit in fits.iter() {
                    let _ = writeln!(
                        out,
                        "    {:<18} = {:+.4} {:+.4}·ln({})   R² = {:.3}   active zone \
                         [{:.5}, {:.5}]",
                        fit.axis,
                        fit.model.intercept(),
                        fit.model.slope(),
                        fit.axis,
                        fit.model.r_squared(),
                        fit.active_zone.0,
                        fit.active_zone.1
                    );
                }
            }
            MetricResponse::Surface(surface) => {
                let mut terms = format!("{:+.4}", surface.regression.intercept());
                for (axis, coefficient) in
                    surface.axes.iter().zip(&surface.regression.coefficients()[1..])
                {
                    let scaled = match surface.scales
                        [surface.axes.iter().position(|a| a == axis).expect("aligned")]
                    {
                        geopriv_lppm::ParameterScale::Logarithmic => format!("ln({axis})"),
                        geopriv_lppm::ParameterScale::Linear => axis.clone(),
                    };
                    let _ = write!(terms, " {coefficient:+.4}·{scaled}");
                }
                let _ = writeln!(
                    out,
                    "  {:<20} = {}   R² = {:.3}",
                    model.id.as_str(),
                    terms,
                    surface.r_squared()
                );
            }
        }
    }
    out
}

/// Renders a configuration recommendation: one line per configuration axis,
/// then one prediction line per metric.
pub fn recommendation_report(recommendation: &Recommendation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Recommended configuration:");
    for ((name, value), (_, range)) in
        recommendation.point.values().iter().zip(&recommendation.feasible)
    {
        let _ = writeln!(
            out,
            "  {} = {:.5}  (feasible range [{:.5}, {:.5}])",
            name, value, range.0, range.1
        );
    }
    for (id, value) in &recommendation.predictions {
        let _ = writeln!(out, "  predicted {id} = {value:.3}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{MetricColumn, SweepMode};
    use crate::modeling::Modeler;
    use crate::objectives::{at_least, at_most, Objectives};
    use geopriv_lppm::{ConfigSpace, ParameterDescriptor, ParameterScale};
    use geopriv_metrics::{Direction, MetricId};

    fn sweep() -> SweepResult {
        let parameters: Vec<f64> =
            (0..30).map(|i| 1e-4 * (1.0f64 / 1e-4).powf(i as f64 / 29.0)).collect();
        let privacy: Vec<f64> =
            parameters.iter().map(|e| (0.84 + 0.17 * e.ln()).clamp(0.0, 0.45)).collect();
        let utility: Vec<f64> =
            parameters.iter().map(|e| (1.21 + 0.09 * e.ln()).clamp(0.2, 1.0)).collect();
        SweepResult::from_axis(
            "geo-indistinguishability",
            ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap(),
            &parameters,
            vec![
                MetricColumn {
                    id: MetricId::new("poi-retrieval"),
                    direction: Direction::LowerIsBetter,
                    runs: privacy.iter().map(|&v| vec![v, v]).collect(),
                    means: privacy,
                },
                MetricColumn {
                    id: MetricId::new("area-coverage"),
                    direction: Direction::HigherIsBetter,
                    runs: utility.iter().map(|&v| vec![v, v]).collect(),
                    means: utility,
                },
            ],
        )
        .unwrap()
    }

    fn grid_sweep() -> SweepResult {
        let space = ConfigSpace::new(vec![
            ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap(),
            ParameterDescriptor::new("cell_size", 50.0, 5000.0, ParameterScale::Logarithmic)
                .unwrap(),
        ])
        .unwrap();
        let points = space.grid(&[5, 5]).unwrap();
        let response: Vec<f64> = points
            .iter()
            .map(|p| {
                0.9 + 0.05 * p.get("epsilon").unwrap().ln()
                    - 0.04 * p.get("cell_size").unwrap().ln()
            })
            .collect();
        SweepResult::new(
            "pipeline[geo-indistinguishability, grid-cloaking]",
            space,
            SweepMode::Grid,
            points,
            vec![MetricColumn {
                id: MetricId::new("poi-retrieval"),
                direction: Direction::LowerIsBetter,
                runs: vec![],
                means: response,
            }],
        )
        .unwrap()
    }

    #[test]
    fn csv_has_header_and_one_row_per_sample() {
        let s = sweep();
        let csv = sweep_to_csv(&s);
        assert_eq!(csv.lines().count(), 31);
        assert!(csv.starts_with("epsilon,poi-retrieval,area-coverage"));
        assert!(csv.lines().next().unwrap().contains("poi-retrieval_std"));
        assert!(csv.lines().nth(1).unwrap().split(',').count() == 5);
    }

    #[test]
    fn multi_axis_csv_has_one_column_per_axis() {
        let csv = sweep_to_csv(&grid_sweep());
        assert!(csv.starts_with("epsilon,cell_size,poi-retrieval"));
        assert_eq!(csv.lines().count(), 26);
        assert_eq!(csv.lines().nth(1).unwrap().split(',').count(), 4);
    }

    #[test]
    fn table_is_aligned_and_complete() {
        let s = sweep();
        let table = sweep_to_table(&s);
        assert_eq!(table.lines().count(), 31);
        assert!(table.contains("poi-retrieval"));
        assert!(table.contains("area-coverage"));

        let grid_table = sweep_to_table(&grid_sweep());
        assert_eq!(grid_table.lines().count(), 26);
        assert!(grid_table.contains("cell_size"));
    }

    #[test]
    fn suite_and_recommendation_reports_mention_key_numbers() {
        let s = sweep();
        let fitted = Modeler::new().fit(&s).unwrap();
        let report = suite_report(&fitted);
        assert!(report.contains("poi-retrieval"));
        assert!(report.contains("area-coverage"));
        assert!(report.contains("R²"));

        let configurator = crate::configurator::Configurator::new(fitted);
        let recommendation = configurator.recommend(&Objectives::paper_example()).unwrap();
        let report = recommendation_report(&recommendation);
        assert!(report.contains("epsilon"));
        assert!(report.contains("predicted poi-retrieval"));
        assert!(report.contains("predicted area-coverage"));
    }

    #[test]
    fn surface_reports_render_every_axis() {
        let fitted = Modeler::new().fit(&grid_sweep()).unwrap();
        let report = suite_report(&fitted);
        assert!(report.starts_with("Fitted suite (epsilon × cell_size):"));
        assert!(report.contains("ln(epsilon)"));
        assert!(report.contains("ln(cell_size)"));

        let recommendation = crate::configurator::Configurator::new(fitted)
            .recommend(
                &Objectives::new()
                    .require("poi-retrieval", at_most(0.4))
                    .unwrap()
                    .require("poi-retrieval", at_least(0.0))
                    .unwrap(),
            )
            .unwrap();
        let report = recommendation_report(&recommendation);
        assert!(report.contains("epsilon ="));
        assert!(report.contains("cell_size ="));
    }
}
