//! Per-metric objectives.
//!
//! Step 3 of the framework takes "the specified privacy and utility
//! objectives" and inverts the fitted model to find the configuration that
//! satisfies them. The paper's illustration uses *at most 10 % POI retrieval*
//! and *at least 80 % area-coverage utility*; [`Objectives`] generalizes that
//! pair to any set of per-metric [`Constraint`]s — [`at_most`] for metrics
//! that improve downward, [`at_least`] for metrics that improve upward.

use crate::error::CoreError;
use geopriv_metrics::MetricId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which side of the bound a constraint admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintKind {
    /// The metric must stay at or below the bound (privacy-style).
    AtMost,
    /// The metric must stay at or above the bound (utility-style).
    AtLeast,
}

/// A bound on one metric, in metric units (`[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    kind: ConstraintKind,
    bound: f64,
}

/// Requires a metric to stay at or below `bound` — the natural constraint for
/// [`geopriv_metrics::Direction::LowerIsBetter`] metrics.
pub fn at_most(bound: f64) -> Constraint {
    Constraint { kind: ConstraintKind::AtMost, bound }
}

/// Requires a metric to stay at or above `bound` — the natural constraint for
/// [`geopriv_metrics::Direction::HigherIsBetter`] metrics.
pub fn at_least(bound: f64) -> Constraint {
    Constraint { kind: ConstraintKind::AtLeast, bound }
}

impl Constraint {
    /// The constraint side.
    pub fn kind(&self) -> ConstraintKind {
        self.kind
    }

    /// The bound, in metric units.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Validates the bound.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.bound.is_finite() && (0.0..=1.0).contains(&self.bound)) {
            return Err(CoreError::InvalidConfiguration {
                reason: format!("a metric bound must be in [0, 1], got {}", self.bound),
            });
        }
        Ok(())
    }

    /// Returns `true` if a measured metric value satisfies the constraint
    /// (with a small numerical tolerance).
    pub fn is_satisfied_by(&self, value: f64) -> bool {
        match self.kind {
            ConstraintKind::AtMost => value <= self.bound + 1e-9,
            ConstraintKind::AtLeast => value >= self.bound - 1e-9,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ConstraintKind::AtMost => write!(f, "≤ {:.2}", self.bound),
            ConstraintKind::AtLeast => write!(f, "≥ {:.2}", self.bound),
        }
    }
}

/// The set of per-metric constraints the system designer states.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Objectives {
    constraints: Vec<(MetricId, Constraint)>,
}

impl Objectives {
    /// Creates an empty objective set; add constraints with
    /// [`Objectives::require`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a constraint on one metric. A metric may carry several
    /// constraints (e.g. a band: `at_least(0.1)` *and* `at_most(0.3)`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for a bound outside
    /// `[0, 1]`.
    pub fn require(
        mut self,
        metric: impl Into<MetricId>,
        constraint: Constraint,
    ) -> Result<Self, CoreError> {
        constraint.validate()?;
        self.constraints.push((metric.into(), constraint));
        Ok(self)
    }

    /// The paper's illustration: at most 10 % POI retrieval, at least 80 %
    /// area-coverage utility.
    pub fn paper_example() -> Self {
        Self::new()
            .require(geopriv_metrics::PoiRetrieval::ID, at_most(0.10))
            .and_then(|o| o.require(geopriv_metrics::AreaCoverage::ID, at_least(0.80)))
            .expect("static objectives are valid")
    }

    /// The constraints, in insertion order.
    pub fn constraints(&self) -> &[(MetricId, Constraint)] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Returns `true` when no constraint was stated.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The constraints stated for one metric.
    pub fn for_metric<'a>(&'a self, id: &'a MetricId) -> impl Iterator<Item = &'a Constraint> {
        self.constraints.iter().filter(move |(m, _)| m == id).map(|(_, c)| c)
    }
}

impl fmt::Display for Objectives {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.constraints.is_empty() {
            return write!(f, "no objectives");
        }
        for (i, (id, constraint)) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{id} {constraint}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_validation_and_satisfaction() {
        assert!(at_most(0.1).validate().is_ok());
        assert!(at_most(0.0).validate().is_ok());
        assert!(at_most(1.0).validate().is_ok());
        assert!(at_most(-0.1).validate().is_err());
        assert!(at_most(1.5).validate().is_err());
        assert!(at_most(f64::NAN).validate().is_err());
        assert!(at_least(-0.1).validate().is_err());
        assert!(at_least(2.0).validate().is_err());

        let upper = at_most(0.1);
        assert_eq!(upper.kind(), ConstraintKind::AtMost);
        assert_eq!(upper.bound(), 0.1);
        assert!(upper.is_satisfied_by(0.05));
        assert!(upper.is_satisfied_by(0.1));
        assert!(!upper.is_satisfied_by(0.2));
        assert!(upper.to_string().contains("≤"));

        let lower = at_least(0.8);
        assert_eq!(lower.kind(), ConstraintKind::AtLeast);
        assert!(lower.is_satisfied_by(0.9));
        assert!(lower.is_satisfied_by(0.8));
        assert!(!lower.is_satisfied_by(0.5));
        assert!(lower.to_string().contains("≥"));
    }

    #[test]
    fn objectives_collect_per_metric_constraints() {
        let objectives = Objectives::new()
            .require("poi-retrieval", at_most(0.1))
            .unwrap()
            .require("area-coverage", at_least(0.8))
            .unwrap()
            .require("area-coverage", at_most(0.95))
            .unwrap();
        assert_eq!(objectives.len(), 3);
        assert!(!objectives.is_empty());
        assert_eq!(objectives.for_metric(&"area-coverage".into()).count(), 2);
        assert_eq!(objectives.for_metric(&"poi-retrieval".into()).count(), 1);
        assert_eq!(objectives.for_metric(&"unknown".into()).count(), 0);
        let text = objectives.to_string();
        assert!(text.contains("poi-retrieval ≤ 0.10"));
        assert!(text.contains("area-coverage ≥ 0.80"));
        assert!(text.contains(" and "));
    }

    #[test]
    fn invalid_bounds_are_rejected_by_require() {
        assert!(Objectives::new().require("m", at_most(1.5)).is_err());
        assert!(Objectives::new().require("m", at_least(f64::INFINITY)).is_err());
        assert!(Objectives::new().to_string().contains("no objectives"));
    }

    #[test]
    fn paper_example_objectives() {
        let o = Objectives::paper_example();
        assert_eq!(o.len(), 2);
        assert_eq!(o.constraints()[0].0, MetricId::new("poi-retrieval"));
        assert_eq!(o.constraints()[0].1.bound(), 0.10);
        assert_eq!(o.constraints()[1].1.bound(), 0.80);
        assert!(o.to_string().contains("and"));
    }
}
