//! Privacy and utility objectives.
//!
//! Step 3 of the framework takes "the specified privacy and utility
//! objectives" and inverts the fitted model to find the configuration that
//! satisfies them. The paper's illustration uses *at most 10 % POI retrieval*
//! and *at least 80 % area-coverage utility*.

use crate::error::CoreError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A privacy objective: an upper bound on the (lower-is-better) privacy metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyObjective {
    at_most: f64,
}

impl PrivacyObjective {
    /// Requires the privacy metric to stay at or below `value` (in `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] outside `[0, 1]`.
    pub fn at_most(value: f64) -> Result<Self, CoreError> {
        if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
            return Err(CoreError::InvalidConfiguration {
                reason: format!("privacy objective must be in [0, 1], got {value}"),
            });
        }
        Ok(Self { at_most: value })
    }

    /// The upper bound on the privacy metric.
    pub fn bound(&self) -> f64 {
        self.at_most
    }

    /// Returns `true` if a measured privacy value satisfies the objective
    /// (with a small numerical tolerance).
    pub fn is_satisfied_by(&self, value: f64) -> bool {
        value <= self.at_most + 1e-9
    }
}

impl fmt::Display for PrivacyObjective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "privacy ≤ {:.2}", self.at_most)
    }
}

/// A utility objective: a lower bound on the (higher-is-better) utility metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilityObjective {
    at_least: f64,
}

impl UtilityObjective {
    /// Requires the utility metric to stay at or above `value` (in `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] outside `[0, 1]`.
    pub fn at_least(value: f64) -> Result<Self, CoreError> {
        if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
            return Err(CoreError::InvalidConfiguration {
                reason: format!("utility objective must be in [0, 1], got {value}"),
            });
        }
        Ok(Self { at_least: value })
    }

    /// The lower bound on the utility metric.
    pub fn bound(&self) -> f64 {
        self.at_least
    }

    /// Returns `true` if a measured utility value satisfies the objective
    /// (with a small numerical tolerance).
    pub fn is_satisfied_by(&self, value: f64) -> bool {
        value >= self.at_least - 1e-9
    }
}

impl fmt::Display for UtilityObjective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "utility ≥ {:.2}", self.at_least)
    }
}

/// The pair of objectives the system designer states.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Objectives {
    /// The privacy objective (upper bound).
    pub privacy: PrivacyObjective,
    /// The utility objective (lower bound).
    pub utility: UtilityObjective,
}

impl Objectives {
    /// Creates the objective pair.
    pub fn new(privacy: PrivacyObjective, utility: UtilityObjective) -> Self {
        Self { privacy, utility }
    }

    /// The paper's illustration: at most 10 % POI retrieval, at least 80 % utility.
    pub fn paper_example() -> Self {
        Self {
            privacy: PrivacyObjective::at_most(0.10).expect("static objective is valid"),
            utility: UtilityObjective::at_least(0.80).expect("static objective is valid"),
        }
    }
}

impl fmt::Display for Objectives {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} and {}", self.privacy, self.utility)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privacy_objective_validation_and_satisfaction() {
        assert!(PrivacyObjective::at_most(0.1).is_ok());
        assert!(PrivacyObjective::at_most(0.0).is_ok());
        assert!(PrivacyObjective::at_most(1.0).is_ok());
        assert!(PrivacyObjective::at_most(-0.1).is_err());
        assert!(PrivacyObjective::at_most(1.5).is_err());
        assert!(PrivacyObjective::at_most(f64::NAN).is_err());

        let o = PrivacyObjective::at_most(0.1).unwrap();
        assert_eq!(o.bound(), 0.1);
        assert!(o.is_satisfied_by(0.05));
        assert!(o.is_satisfied_by(0.1));
        assert!(!o.is_satisfied_by(0.2));
        assert!(o.to_string().contains("≤"));
    }

    #[test]
    fn utility_objective_validation_and_satisfaction() {
        assert!(UtilityObjective::at_least(0.8).is_ok());
        assert!(UtilityObjective::at_least(-0.1).is_err());
        assert!(UtilityObjective::at_least(2.0).is_err());

        let o = UtilityObjective::at_least(0.8).unwrap();
        assert_eq!(o.bound(), 0.8);
        assert!(o.is_satisfied_by(0.9));
        assert!(o.is_satisfied_by(0.8));
        assert!(!o.is_satisfied_by(0.5));
        assert!(o.to_string().contains("≥"));
    }

    #[test]
    fn paper_example_objectives() {
        let o = Objectives::paper_example();
        assert_eq!(o.privacy.bound(), 0.10);
        assert_eq!(o.utility.bound(), 0.80);
        assert!(o.to_string().contains("and"));
    }
}
