//! PCA-based dataset-property selection (step 1, ingredient 3).
//!
//! "All these properties p_i, d_i are soundly chosen using a principal
//! component analysis." Candidate per-user properties are computed by
//! [`geopriv_mobility::DatasetProperties`]; this module runs a PCA over them
//! and ranks each property by how much of the dataset's variance it carries,
//! so the framework can keep only the influential `d_j` when extending the
//! model of Equation 1 beyond the single-parameter GEO-I illustration.

use crate::error::CoreError;
use geopriv_analysis::Pca;
use geopriv_mobility::{DatasetProperties, TraceProperties};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The ranked importance of one candidate dataset property.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedProperty {
    /// Property name (one of [`TraceProperties::NAMES`]).
    pub name: String,
    /// Importance score: sum over components of |loading| × explained variance.
    pub importance: f64,
    /// Whether the property was selected.
    pub selected: bool,
}

/// The result of the PCA-based property selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropertySelection {
    /// All candidate properties ranked by decreasing importance.
    pub ranked: Vec<RankedProperty>,
    /// Number of principal components needed to explain the variance threshold.
    pub components_needed: usize,
    /// Fraction of variance explained by the first component.
    pub first_component_variance: f64,
}

impl PropertySelection {
    /// Names of the selected properties, in decreasing importance order.
    pub fn selected_names(&self) -> Vec<&str> {
        self.ranked.iter().filter(|p| p.selected).map(|p| p.name.as_str()).collect()
    }
}

impl fmt::Display for PropertySelection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} principal components explain the variance threshold; ranked properties:",
            self.components_needed
        )?;
        for p in &self.ranked {
            writeln!(
                f,
                "  {} {:<22} importance {:.3}",
                if p.selected { "*" } else { " " },
                p.name,
                p.importance
            )?;
        }
        Ok(())
    }
}

/// Selects influential dataset properties with a PCA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropertySelector {
    variance_threshold: f64,
    max_selected: usize,
}

impl Default for PropertySelector {
    fn default() -> Self {
        Self { variance_threshold: 0.9, max_selected: 4 }
    }
}

impl PropertySelector {
    /// Creates a selector.
    ///
    /// `variance_threshold` (in `(0, 1]`) controls how many principal
    /// components are considered "needed"; `max_selected` caps the number of
    /// selected properties.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for an out-of-range
    /// threshold or a zero cap.
    pub fn new(variance_threshold: f64, max_selected: usize) -> Result<Self, CoreError> {
        if !(variance_threshold.is_finite()
            && variance_threshold > 0.0
            && variance_threshold <= 1.0)
        {
            return Err(CoreError::InvalidConfiguration {
                reason: format!("variance threshold must be in (0, 1], got {variance_threshold}"),
            });
        }
        if max_selected == 0 {
            return Err(CoreError::InvalidConfiguration {
                reason: "at least one property must be selectable".to_string(),
            });
        }
        Ok(Self { variance_threshold, max_selected })
    }

    /// Runs the PCA and ranks the candidate properties.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Analysis`] for degenerate property matrices
    /// (fewer than two users).
    pub fn select(&self, properties: &DatasetProperties) -> Result<PropertySelection, CoreError> {
        let matrix = properties.as_matrix();
        let pca = Pca::fit(&matrix)?;
        let importance = pca.variable_importance();

        let mut order: Vec<usize> = (0..importance.len()).collect();
        order.sort_by(|&a, &b| importance[b].partial_cmp(&importance[a]).expect("finite"));

        let selected_count = self.max_selected.min(importance.len());
        let mut ranked: Vec<RankedProperty> = order
            .iter()
            .enumerate()
            .map(|(rank, &idx)| RankedProperty {
                name: TraceProperties::NAMES[idx].to_string(),
                importance: importance[idx],
                selected: rank < selected_count,
            })
            .collect();
        // Properties that carry essentially no variance are never selected,
        // even inside the cap.
        let max_importance = ranked.first().map(|p| p.importance).unwrap_or(0.0);
        for p in &mut ranked {
            if p.importance < 0.05 * max_importance {
                p.selected = false;
            }
        }

        Ok(PropertySelection {
            ranked,
            components_needed: pca.components_for_variance(self.variance_threshold),
            first_component_variance: pca
                .components()
                .first()
                .map(|c| c.explained_variance_ratio)
                .unwrap_or(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_geo::Meters;
    use geopriv_mobility::generator::{CommuterBuilder, TaxiFleetBuilder};
    use geopriv_mobility::Dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mixed_dataset() -> Dataset {
        // Taxi drivers and commuters have very different mobility statistics,
        // giving the PCA real structure to find.
        let mut rng = StdRng::seed_from_u64(3);
        let taxis = TaxiFleetBuilder::new()
            .drivers(6)
            .duration_hours(6.0)
            .sampling_interval_s(60.0)
            .build(&mut rng)
            .unwrap();
        let commuters = CommuterBuilder::new()
            .users(6)
            .days(1)
            .sampling_interval_s(120.0)
            .first_user_id(100)
            .build(&mut rng)
            .unwrap();
        let mut traces = taxis.to_traces();
        traces.extend(commuters.to_traces());
        Dataset::new(traces).unwrap()
    }

    #[test]
    fn selector_validation() {
        assert!(PropertySelector::new(0.9, 3).is_ok());
        assert!(PropertySelector::new(0.0, 3).is_err());
        assert!(PropertySelector::new(1.5, 3).is_err());
        assert!(PropertySelector::new(0.9, 0).is_err());
        assert!(PropertySelector::new(f64::NAN, 3).is_err());
    }

    #[test]
    fn selection_ranks_all_candidate_properties() {
        let dataset = mixed_dataset();
        let properties = DatasetProperties::compute(&dataset, Meters::new(200.0)).unwrap();
        let selection = PropertySelector::default().select(&properties).unwrap();

        assert_eq!(selection.ranked.len(), TraceProperties::NAMES.len());
        // Ranking is by decreasing importance.
        for pair in selection.ranked.windows(2) {
            assert!(pair[0].importance >= pair[1].importance - 1e-12);
        }
        // Something is selected, bounded by the cap.
        let selected = selection.selected_names();
        assert!(!selected.is_empty());
        assert!(selected.len() <= 4);
        // A handful of components explain most of the variance.
        assert!(selection.components_needed >= 1);
        assert!(selection.components_needed <= TraceProperties::NAMES.len());
        assert!(selection.first_component_variance > 0.2);
        // Display lists every property.
        let text = selection.to_string();
        for name in TraceProperties::NAMES {
            assert!(text.contains(name), "missing {name} in report");
        }
    }

    #[test]
    fn cap_limits_the_number_of_selected_properties() {
        let dataset = mixed_dataset();
        let properties = DatasetProperties::compute(&dataset, Meters::new(200.0)).unwrap();
        let selection = PropertySelector::new(0.9, 2).unwrap().select(&properties).unwrap();
        assert!(selection.selected_names().len() <= 2);
    }

    #[test]
    fn degenerate_property_matrices_are_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let single =
            TaxiFleetBuilder::new().drivers(1).duration_hours(1.0).build(&mut rng).unwrap();
        let properties = DatasetProperties::compute(&single, Meters::new(200.0)).unwrap();
        assert!(PropertySelector::default().select(&properties).is_err());
    }
}
