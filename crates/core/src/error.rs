//! Error type for the configuration framework.

use geopriv_analysis::AnalysisError;
use geopriv_lppm::LppmError;
use geopriv_metrics::MetricError;
use geopriv_mobility::MobilityError;
use std::fmt;

/// Errors produced by the `geopriv-core` configuration framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A framework component was configured with an invalid parameter.
    InvalidConfiguration {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A protection mechanism failed.
    Lppm(LppmError),
    /// A metric evaluation failed.
    Metric(MetricError),
    /// A numerical-analysis step (modeling, inversion, PCA) failed.
    Analysis(AnalysisError),
    /// A mobility-data operation failed.
    Mobility(MobilityError),
    /// The requested objectives cannot be satisfied by any parameter value in
    /// the modeled range.
    Infeasible {
        /// Description of the conflicting constraints.
        reason: String,
    },
    /// A constraint or query referenced a metric id that is not part of the
    /// suite under study.
    UnknownMetric {
        /// The unresolved metric id.
        metric: String,
        /// The ids that are available.
        available: Vec<String>,
    },
    /// A wire-format document (JSON export) could not be parsed or did not
    /// have the expected shape.
    Parse {
        /// What was malformed, with a byte offset or field path.
        reason: String,
    },
    /// An internal invariant of the execution engine was violated — a bug in
    /// the framework (never in the caller's configuration), surfaced as a
    /// typed error instead of a worker panic.
    Internal {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfiguration { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            CoreError::Lppm(e) => write!(f, "protection mechanism error: {e}"),
            CoreError::Metric(e) => write!(f, "metric error: {e}"),
            CoreError::Analysis(e) => write!(f, "analysis error: {e}"),
            CoreError::Mobility(e) => write!(f, "mobility error: {e}"),
            CoreError::Infeasible { reason } => write!(f, "objectives are infeasible: {reason}"),
            CoreError::UnknownMetric { metric, available } => {
                write!(f, "unknown metric \"{metric}\" (available: {})", available.join(", "))
            }
            CoreError::Parse { reason } => write!(f, "malformed document: {reason}"),
            CoreError::Internal { reason } => {
                write!(f, "internal framework error (please report): {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Lppm(e) => Some(e),
            CoreError::Metric(e) => Some(e),
            CoreError::Analysis(e) => Some(e),
            CoreError::Mobility(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LppmError> for CoreError {
    fn from(e: LppmError) -> Self {
        CoreError::Lppm(e)
    }
}

impl From<MetricError> for CoreError {
    fn from(e: MetricError) -> Self {
        CoreError::Metric(e)
    }
}

impl From<AnalysisError> for CoreError {
    fn from(e: AnalysisError) -> Self {
        CoreError::Analysis(e)
    }
}

impl From<MobilityError> for CoreError {
    fn from(e: MobilityError) -> Self {
        CoreError::Mobility(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidConfiguration { reason: "no sweep points".into() };
        assert!(e.to_string().contains("no sweep points"));
        assert!(std::error::Error::source(&e).is_none());

        let e = CoreError::from(AnalysisError::NotInvertible);
        assert!(e.to_string().contains("analysis"));
        assert!(std::error::Error::source(&e).is_some());

        let e = CoreError::from(MobilityError::EmptyDataset);
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::from(MetricError::DatasetMismatch { reason: "x".into() });
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::from(LppmError::EmptyProtectedTrace);
        assert!(std::error::Error::source(&e).is_some());

        let e = CoreError::Infeasible { reason: "privacy and utility conflict".into() };
        assert!(e.to_string().contains("infeasible"));

        let e = CoreError::UnknownMetric {
            metric: "typo-metric".into(),
            available: vec!["poi-retrieval".into(), "area-coverage".into()],
        };
        assert!(e.to_string().contains("typo-metric"));
        assert!(e.to_string().contains("poi-retrieval"));
        assert!(std::error::Error::source(&e).is_none());

        let e = CoreError::Parse { reason: "expected ':' (at byte 7)".into() };
        assert!(e.to_string().contains("malformed document"));
        assert!(e.to_string().contains("at byte 7"));
        assert!(std::error::Error::source(&e).is_none());

        let e = CoreError::Internal { reason: "a work slot was never filled".into() };
        assert!(e.to_string().contains("internal framework error"));
        assert!(e.to_string().contains("never filled"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<CoreError>();
    }
}
