//! # geopriv-core
//!
//! The configuration framework of Cerf et al., *Toward an Easy Configuration
//! of Location Privacy Protection Mechanisms* (Middleware 2016): an automated
//! pipeline that turns "I want at most 10 % POI retrieval and at least 80 %
//! utility" into "configure GEO-I with ε = 0.01".
//!
//! The three steps of the paper map onto three modules:
//!
//! 1. **System definition** ([`system`]) — pick the LPPM with its
//!    [`geopriv_lppm::ConfigSpace`] of swept parameters and a
//!    [`geopriv_metrics::MetricSuite`]: an ordered set of
//!    named, direction-tagged metrics generalizing the paper's fixed
//!    privacy/utility pair; [`property_selection`] ranks candidate dataset
//!    properties with a PCA.
//! 2. **Modeling** ([`experiment`] + [`modeling`]) — automatically sweep the
//!    configuration space (full-factorial grid or the paper's one-at-a-time
//!    design), measure every suite metric into a per-metric column store,
//!    and fit the invertible (log-)linear relationship of Equation 2 — per
//!    axis inside its non-saturated zone, or as a multivariate surface on
//!    grids. The [`campaign`] engine scales
//!    this step to many systems × many datasets on one shared work pool with
//!    amortized actual-side metric state.
//! 3. **Configuration** ([`configurator`]) — invert the fitted models under
//!    the designer's per-metric [`objectives`] and recommend a
//!    [`geopriv_lppm::ConfigPoint`] satisfying every constraint.
//!
//! ## End-to-end example
//!
//! ```no_run
//! use geopriv_core::prelude::*;
//! use geopriv_mobility::generator::TaxiFleetBuilder;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A stand-in for the San Francisco taxi dataset.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let dataset = TaxiFleetBuilder::new().drivers(20).duration_hours(12.0).build(&mut rng)?;
//!
//! // Step 1 — define the system (GEO-I, POI retrieval, area coverage).
//! let system = SystemDefinition::paper_geoi();
//!
//! // Step 2 — sweep ε, measure every suite metric, fit the invertible models.
//! let sweep = ExperimentRunner::new(SweepConfig::default()).run(&system, &dataset)?;
//! let fitted = Modeler::new().fit(&sweep)?;
//!
//! // Step 3 — state per-metric objectives and invert.
//! let objectives = Objectives::new()
//!     .require("poi-retrieval", at_most(0.10))?
//!     .require("area-coverage", at_least(0.80))?;
//! let configurator = Configurator::new(fitted);
//! let recommendation = configurator.recommend(&objectives)?;
//! println!("use ε = {:.4}", recommendation.parameter());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod campaign;
pub mod configurator;
pub mod error;
pub mod experiment;
pub mod json;
pub mod modeling;
pub mod objectives;
pub mod pareto;
pub mod property_selection;
pub mod report;
pub mod system;
pub mod validation;

pub use cache::{CacheStats, MeasurementCache};
pub use campaign::{CampaignResult, CampaignRun, CampaignRunner};
pub use configurator::{
    Configurator, PerUserRecommendation, Recommendation, UserRecommendation, UserVerdict,
};
pub use error::CoreError;
pub use experiment::{
    derive_point_seed, derive_unit_seed, derive_user_seed, AxisInterval, CachedSweep,
    ExperimentRunner, Grain, MetricColumn, SweepConfig, SweepMode, SweepPlan, SweepResult,
    UserColumn,
};
pub use json::JsonValue;
pub use modeling::{
    AxisFit, FitDiagnostics, FittedSuite, MetricDiagnostics, MetricModel, MetricResponse, Modeler,
    ParametricModel, PerAxisFit, PerUserFits, SurfaceFit, UserFit, UserFitOutcome,
};
pub use objectives::{at_least, at_most, Constraint, ConstraintKind, Objectives};
pub use pareto::{ParetoFrontier, TradeOffPoint};
pub use property_selection::{PropertySelection, PropertySelector, RankedProperty};
pub use system::{
    GaussianPerturbationFactory, GeoIndistinguishabilityFactory, GridCloakingFactory, LppmFactory,
    PipelineFactory, SystemDefinition,
};
pub use validation::{HoldOutValidator, PredictionError, ValidationReport};

// The metric-suite vocabulary the core API is expressed in, re-exported so
// `geopriv_core` users need not depend on `geopriv_metrics` directly.
pub use geopriv_metrics::{Direction, MetricId, MetricSuite, SuiteMetric};

// The configuration-space vocabulary the factories and sweeps are expressed
// in, re-exported for the same reason.
pub use geopriv_lppm::{ConfigPoint, ConfigSpace};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::cache::{CacheStats, MeasurementCache};
    pub use crate::campaign::{CampaignResult, CampaignRun, CampaignRunner};
    pub use crate::configurator::{
        Configurator, PerUserRecommendation, Recommendation, UserRecommendation, UserVerdict,
    };
    pub use crate::error::CoreError;
    pub use crate::experiment::{
        CachedSweep, ExperimentRunner, Grain, MetricColumn, SweepConfig, SweepMode, SweepPlan,
        SweepResult, UserColumn,
    };
    pub use crate::modeling::{
        AxisFit, FitDiagnostics, FittedSuite, MetricDiagnostics, MetricModel, MetricResponse,
        Modeler, ParametricModel, PerUserFits, SurfaceFit, UserFit, UserFitOutcome,
    };
    pub use crate::objectives::{at_least, at_most, Constraint, ConstraintKind, Objectives};
    pub use crate::pareto::{ParetoFrontier, TradeOffPoint};
    pub use crate::property_selection::{PropertySelection, PropertySelector};
    pub use crate::report;
    pub use crate::system::{
        GaussianPerturbationFactory, GeoIndistinguishabilityFactory, GridCloakingFactory,
        LppmFactory, PipelineFactory, SystemDefinition,
    };
    pub use crate::validation::{HoldOutValidator, PredictionError, ValidationReport};
    pub use geopriv_lppm::{ConfigPoint, ConfigSpace};
    pub use geopriv_metrics::{Direction, MetricId, MetricSuite, SuiteMetric};
}
