//! Model fitting (step 2 of the framework, modeling half).
//!
//! "Based on this data, a mathematical relationship between privacy and
//! utility metrics, configuration parameters, and dataset properties is
//! computed as an invertible function" (Equation 1), which the GEO-I
//! illustration specializes into the log-linear Equation 2:
//!
//! ```text
//! ln ε = (Pr − a)/b = (Ut − α)/β
//! ```
//!
//! [`Modeler::fit`] takes a [`SweepResult`], detects the non-saturated zone
//! of each metric (the vertical lines of Figure 1), and fits an invertible
//! parametric model restricted to that zone — one [`MetricModel`] per column
//! of the sweep, collected into a [`FittedSuite`].

use crate::error::CoreError;
use crate::experiment::SweepResult;
use geopriv_analysis::model::{LinearModel, LogLinearModel, ResponseModel};
use geopriv_analysis::{find_active_zone, ActiveZone, AnalysisError, Curve};
use geopriv_lppm::ParameterScale;
use geopriv_metrics::{Direction, MetricId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An invertible single-parameter model of a metric response, either linear
/// or log-linear in the configuration parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ParametricModel {
    /// `metric = intercept + slope · parameter`
    Linear(LinearModel),
    /// `metric = intercept + slope · ln(parameter)` — the paper's Equation 2.
    LogLinear(LogLinearModel),
}

impl ParametricModel {
    /// Predicted metric value at the given parameter value.
    pub fn predict(&self, parameter: f64) -> f64 {
        match self {
            ParametricModel::Linear(m) => m.predict(parameter),
            ParametricModel::LogLinear(m) => m.predict(parameter),
        }
    }

    /// Parameter value achieving the requested metric value.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NotInvertible`] for flat responses.
    pub fn invert(&self, metric: f64) -> Result<f64, AnalysisError> {
        match self {
            ParametricModel::Linear(m) => m.invert(metric),
            ParametricModel::LogLinear(m) => m.invert(metric),
        }
    }

    /// Coefficient of determination of the fit.
    pub fn r_squared(&self) -> f64 {
        match self {
            ParametricModel::Linear(m) => m.r_squared(),
            ParametricModel::LogLinear(m) => m.r_squared(),
        }
    }

    /// The fitted intercept (the paper's `a` / `α`).
    pub fn intercept(&self) -> f64 {
        match self {
            ParametricModel::Linear(m) => m.intercept(),
            ParametricModel::LogLinear(m) => m.intercept(),
        }
    }

    /// The fitted slope (the paper's `b` / `β`).
    pub fn slope(&self) -> f64 {
        match self {
            ParametricModel::Linear(m) => m.slope(),
            ParametricModel::LogLinear(m) => m.slope(),
        }
    }

    /// Parameter domain on which the model was fitted.
    pub fn domain(&self) -> (f64, f64) {
        match self {
            ParametricModel::Linear(m) => m.domain(),
            ParametricModel::LogLinear(m) => m.domain(),
        }
    }

    /// Whether the metric increases with the parameter.
    pub fn is_increasing(&self) -> bool {
        self.slope() > 0.0
    }
}

impl fmt::Display for ParametricModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParametricModel::Linear(m) => write!(f, "{m}"),
            ParametricModel::LogLinear(m) => write!(f, "{m}"),
        }
    }
}

/// The fitted model of one metric: the empirical response curve, its
/// non-saturated zone, and the parametric model fitted inside that zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricModel {
    /// Id of the metric.
    pub id: MetricId,
    /// Which way the metric improves.
    pub direction: Direction,
    /// The full empirical response (parameter → metric), all sweep points.
    pub curve: Curve,
    /// The detected non-saturated zone, in parameter units.
    pub active_zone: (f64, f64),
    /// The invertible model fitted on the non-saturated zone.
    pub model: ParametricModel,
}

impl MetricModel {
    /// Returns `true` if `parameter` lies inside the non-saturated zone.
    pub fn in_active_zone(&self, parameter: f64) -> bool {
        (self.active_zone.0..=self.active_zone.1).contains(&parameter)
    }
}

/// The complete modeling result: one [`MetricModel`] per metric of the swept
/// suite, in suite order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FittedSuite {
    /// Name of the swept parameter.
    pub parameter_name: String,
    /// The fitted per-metric responses (`Pr = a + b·ln ε` and
    /// `Ut = α + β·ln ε` in the paper).
    pub models: Vec<MetricModel>,
}

impl FittedSuite {
    /// The fitted model of one metric.
    pub fn model(&self, id: &MetricId) -> Option<&MetricModel> {
        self.models.iter().find(|m| &m.id == id)
    }

    /// The metric ids, in suite order.
    pub fn ids(&self) -> Vec<MetricId> {
        self.models.iter().map(|m| m.id.clone()).collect()
    }

    /// The first fitted model improving in `direction`.
    pub fn model_by_direction(&self, direction: Direction) -> Option<&MetricModel> {
        self.models.iter().find(|m| m.direction == direction)
    }
}

impl fmt::Display for FittedSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, m) in self.models.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{} ({}): {}", m.id, self.parameter_name, m.model)?;
        }
        Ok(())
    }
}

/// Fits invertible metric models from sweep measurements.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Modeler {
    _private: (),
}

impl Modeler {
    /// Creates a modeler with the default saturation thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fits every metric's model from a sweep result.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfiguration`] if the sweep has fewer than four points.
    /// * [`CoreError::Analysis`] if a metric never responds to the parameter
    ///   (zero dynamic range) or the fit is degenerate.
    pub fn fit(&self, sweep: &SweepResult) -> Result<FittedSuite, CoreError> {
        if sweep.points() < 4 {
            return Err(CoreError::InvalidConfiguration {
                reason: format!("modeling needs at least 4 sweep points, got {}", sweep.points()),
            });
        }
        let models = sweep
            .columns
            .iter()
            .map(|column| self.fit_metric(sweep, column))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FittedSuite { parameter_name: sweep.parameter_name.clone(), models })
    }

    fn fit_metric(
        &self,
        sweep: &SweepResult,
        column: &crate::experiment::MetricColumn,
    ) -> Result<MetricModel, CoreError> {
        let parameters = &sweep.parameters;
        let values = &column.means;
        let logarithmic = sweep.parameter_scale == ParameterScale::Logarithmic;

        // Work on a transformed x-axis (ln for logarithmic parameters) so the
        // saturation detector sees evenly spaced samples, exactly like the
        // log-scale x-axis of Figure 1.
        let transformed: Vec<f64> = if logarithmic {
            parameters.iter().map(|p| p.ln()).collect()
        } else {
            parameters.clone()
        };
        let detection_curve =
            Curve::new(transformed.iter().copied().zip(values.iter().copied()).collect())?;
        let zone: ActiveZone = find_active_zone(&detection_curve)?;

        // Restrict the raw samples to the active zone and fit the parametric model.
        let in_zone: Vec<(f64, f64)> = transformed
            .iter()
            .zip(parameters.iter())
            .zip(values.iter())
            .filter(|((t, _), _)| zone.contains(**t))
            .map(|((_, p), v)| (*p, *v))
            .collect();
        let zone_params: Vec<f64> = in_zone.iter().map(|(p, _)| *p).collect();
        let zone_values: Vec<f64> = in_zone.iter().map(|(_, v)| *v).collect();

        let model = if logarithmic {
            ParametricModel::LogLinear(LogLinearModel::fit(&zone_params, &zone_values)?)
        } else {
            ParametricModel::Linear(LinearModel::fit(&zone_params, &zone_values)?)
        };

        // The full empirical curve is kept in parameter units for reporting.
        let curve = Curve::new(parameters.iter().copied().zip(values.iter().copied()).collect())?;
        let active_zone = (
            zone_params.iter().copied().fold(f64::INFINITY, f64::min),
            zone_params.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        );
        Ok(MetricModel {
            id: column.id.clone(),
            direction: column.direction,
            curve,
            active_zone,
            model,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{MetricColumn, SweepResult};
    use geopriv_lppm::ParameterScale;

    fn privacy_id() -> MetricId {
        MetricId::new("poi-retrieval")
    }

    fn utility_id() -> MetricId {
        MetricId::new("area-coverage")
    }

    /// Builds a synthetic sweep result following the paper's Equation 2 with
    /// saturation outside the active zone, without running any experiment.
    fn paper_like_sweep(points: usize) -> SweepResult {
        let parameters: Vec<f64> = (0..points)
            .map(|i| 1e-4 * (1.0f64 / 1e-4).powf(i as f64 / (points - 1) as f64))
            .collect();
        let privacy: Vec<f64> =
            parameters.iter().map(|e| (0.84 + 0.17 * e.ln()).clamp(0.0, 0.45)).collect();
        let utility: Vec<f64> =
            parameters.iter().map(|e| (1.21 + 0.09 * e.ln()).clamp(0.2, 1.0)).collect();
        SweepResult {
            lppm_name: "geo-indistinguishability".to_string(),
            parameter_name: "epsilon".to_string(),
            parameter_scale: ParameterScale::Logarithmic,
            parameters,
            columns: vec![
                MetricColumn {
                    id: privacy_id(),
                    direction: Direction::LowerIsBetter,
                    runs: privacy.iter().map(|&v| vec![v]).collect(),
                    means: privacy,
                },
                MetricColumn {
                    id: utility_id(),
                    direction: Direction::HigherIsBetter,
                    runs: utility.iter().map(|&v| vec![v]).collect(),
                    means: utility,
                },
            ],
        }
    }

    #[test]
    fn recovers_the_paper_coefficients_from_a_clean_sweep() {
        let sweep = paper_like_sweep(41);
        let fitted = Modeler::new().fit(&sweep).unwrap();
        assert_eq!(fitted.ids(), vec![privacy_id(), utility_id()]);

        // Privacy side of Equation 2: a = 0.84, b = 0.17.
        let p = &fitted.model(&privacy_id()).unwrap().model;
        assert!((p.intercept() - 0.84).abs() < 0.08, "a = {}", p.intercept());
        assert!((p.slope() - 0.17).abs() < 0.04, "b = {}", p.slope());
        assert!(p.r_squared() > 0.95);
        assert!(p.is_increasing());

        // Utility side: alpha = 1.21, beta = 0.09.
        let u = &fitted.model(&utility_id()).unwrap().model;
        assert!((u.intercept() - 1.21).abs() < 0.12, "alpha = {}", u.intercept());
        assert!((u.slope() - 0.09).abs() < 0.03, "beta = {}", u.slope());
        assert!(u.r_squared() > 0.95);

        // Directions flow from the columns into the models.
        assert_eq!(fitted.model_by_direction(Direction::LowerIsBetter).unwrap().id, privacy_id());

        // The display mentions both metrics.
        let text = fitted.to_string();
        assert!(text.contains("poi-retrieval") && text.contains("area-coverage"));
    }

    #[test]
    fn active_zones_exclude_the_saturated_tails() {
        let sweep = paper_like_sweep(41);
        let fitted = Modeler::new().fit(&sweep).unwrap();
        let privacy = fitted.model(&privacy_id()).unwrap();
        let utility = fitted.model(&utility_id()).unwrap();
        // Privacy saturates at 0 below eps~0.007 and at 0.45 above eps~0.1:
        // the active zone must be a strict sub-range of the sweep.
        let (lo, hi) = privacy.active_zone;
        assert!(lo > 1e-4 * 1.5, "zone starts too early: {lo}");
        assert!(hi < 1.0 / 1.5, "zone ends too late: {hi}");
        assert!(privacy.in_active_zone(0.01));
        assert!(!privacy.in_active_zone(1e-4));

        // The utility response spans more of the range, so its zone is wider
        // (in log terms) than the privacy zone — the paper's "evolves more
        // slowly on a larger range".
        let privacy_width = (privacy.active_zone.1 / privacy.active_zone.0).ln();
        let utility_width = (utility.active_zone.1 / utility.active_zone.0).ln();
        assert!(utility_width > privacy_width, "{utility_width} vs {privacy_width}");
    }

    #[test]
    fn model_inversion_recovers_the_operating_point() {
        let sweep = paper_like_sweep(41);
        let fitted = Modeler::new().fit(&sweep).unwrap();
        // Inverting the privacy model at 10% gives an epsilon near 0.0128
        // (the paper rounds to 0.01).
        let eps_for_privacy = fitted.model(&privacy_id()).unwrap().model.invert(0.10).unwrap();
        assert!((0.008..0.02).contains(&eps_for_privacy), "eps {eps_for_privacy}");
        // And the utility model predicts about 80% utility there.
        let predicted_utility = fitted.model(&utility_id()).unwrap().model.predict(eps_for_privacy);
        assert!((0.75..0.88).contains(&predicted_utility), "utility {predicted_utility}");
    }

    #[test]
    fn every_metric_of_a_larger_suite_is_fitted() {
        let mut sweep = paper_like_sweep(30);
        let extra: Vec<f64> =
            sweep.parameters.iter().map(|e| (0.95 + 0.05 * e.ln()).clamp(0.1, 0.9)).collect();
        sweep.columns.push(MetricColumn {
            id: MetricId::new("hotspot-preservation"),
            direction: Direction::HigherIsBetter,
            runs: extra.iter().map(|&v| vec![v]).collect(),
            means: extra,
        });
        let fitted = Modeler::new().fit(&sweep).unwrap();
        assert_eq!(fitted.models.len(), 3);
        assert!(fitted.model(&MetricId::new("hotspot-preservation")).is_some());
    }

    #[test]
    fn too_few_points_or_flat_metrics_are_rejected() {
        let sweep = paper_like_sweep(3);
        assert!(Modeler::new().fit(&sweep).is_err());

        let mut flat = paper_like_sweep(20);
        flat.columns[0].means = vec![0.3; 20];
        assert!(matches!(Modeler::new().fit(&flat), Err(CoreError::Analysis(_))));
    }

    #[test]
    fn linear_scale_parameters_use_a_linear_model() {
        let parameters: Vec<f64> = (0..15).map(|i| (i as f64 / 14.0).max(0.01)).collect();
        let privacy: Vec<f64> = parameters.iter().map(|p| 0.05 + 0.4 * p).collect();
        let utility: Vec<f64> = parameters.iter().map(|p| 0.2 + 0.75 * p).collect();
        let sweep = SweepResult {
            lppm_name: "release-sampling".to_string(),
            parameter_name: "probability".to_string(),
            parameter_scale: ParameterScale::Linear,
            parameters,
            columns: vec![
                MetricColumn {
                    id: privacy_id(),
                    direction: Direction::LowerIsBetter,
                    runs: vec![],
                    means: privacy,
                },
                MetricColumn {
                    id: utility_id(),
                    direction: Direction::HigherIsBetter,
                    runs: vec![],
                    means: utility,
                },
            ],
        };
        let fitted = Modeler::new().fit(&sweep).unwrap();
        let p = fitted.model(&privacy_id()).unwrap();
        let u = fitted.model(&utility_id()).unwrap();
        assert!(matches!(p.model, ParametricModel::Linear(_)));
        assert!((p.model.slope() - 0.4).abs() < 0.05);
        assert!((u.model.slope() - 0.75).abs() < 0.05);
    }
}
