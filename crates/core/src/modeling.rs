//! Model fitting (step 2 of the framework, modeling half).
//!
//! "Based on this data, a mathematical relationship between privacy and
//! utility metrics, configuration parameters, and dataset properties is
//! computed as an invertible function" (Equation 1), which the GEO-I
//! illustration specializes into the log-linear Equation 2:
//!
//! ```text
//! ln ε = (Pr − a)/b = (Ut − α)/β
//! ```
//!
//! [`Modeler::fit`] takes a [`SweepResult`] over any [`ConfigSpace`] and
//! fits, per metric column:
//!
//! * **one axis** — the historical path, unchanged: detect the non-saturated
//!   zone (the vertical lines of Figure 1) and fit the invertible
//!   (log-)linear model inside it ([`AxisFit`]);
//! * **multi-axis grid** — Equation 1's multivariate form: an ordinary
//!   least-squares plane over the scaled axes (ln-axis per
//!   [`ParameterScale::Logarithmic`]), via
//!   [`geopriv_analysis::regression::MultipleLinearRegression`]
//!   ([`SurfaceFit`]);
//! * **multi-axis one-at-a-time** — one [`AxisFit`] per axis, each fitted on
//!   that axis's leg of the design (other axes at their defaults).
//!
//! Adaptive sweeps ([`SweepMode::Adaptive`]) fit exactly like grids — the
//! surface regression and the 1-D saturation detector both work on arbitrary
//! (irregular) point sets. [`Modeler::diagnose`] additionally reports where a
//! fit is still uncertain ([`FitDiagnostics`]: per-point residuals,
//! active-zone edges, the worst-fit point), which is what adaptive refinement
//! steers by.

use crate::error::CoreError;
use crate::experiment::{run_indexed, Grain, SweepMode, SweepResult};
use geopriv_analysis::model::{LinearModel, LogLinearModel, ResponseModel};
use geopriv_analysis::regression::MultipleLinearRegression;
use geopriv_analysis::{find_active_zone, ActiveZone, AnalysisError, Curve};
use geopriv_lppm::{ConfigPoint, ConfigSpace, ParameterScale};
use geopriv_metrics::{Direction, MetricId};
use geopriv_mobility::UserId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An invertible single-parameter model of a metric response, either linear
/// or log-linear in the configuration parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ParametricModel {
    /// `metric = intercept + slope · parameter`
    Linear(LinearModel),
    /// `metric = intercept + slope · ln(parameter)` — the paper's Equation 2.
    LogLinear(LogLinearModel),
}

impl ParametricModel {
    /// Predicted metric value at the given parameter value.
    pub fn predict(&self, parameter: f64) -> f64 {
        match self {
            ParametricModel::Linear(m) => m.predict(parameter),
            ParametricModel::LogLinear(m) => m.predict(parameter),
        }
    }

    /// Parameter value achieving the requested metric value.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NotInvertible`] for flat responses.
    pub fn invert(&self, metric: f64) -> Result<f64, AnalysisError> {
        match self {
            ParametricModel::Linear(m) => m.invert(metric),
            ParametricModel::LogLinear(m) => m.invert(metric),
        }
    }

    /// Coefficient of determination of the fit.
    pub fn r_squared(&self) -> f64 {
        match self {
            ParametricModel::Linear(m) => m.r_squared(),
            ParametricModel::LogLinear(m) => m.r_squared(),
        }
    }

    /// The fitted intercept (the paper's `a` / `α`).
    pub fn intercept(&self) -> f64 {
        match self {
            ParametricModel::Linear(m) => m.intercept(),
            ParametricModel::LogLinear(m) => m.intercept(),
        }
    }

    /// The fitted slope (the paper's `b` / `β`).
    pub fn slope(&self) -> f64 {
        match self {
            ParametricModel::Linear(m) => m.slope(),
            ParametricModel::LogLinear(m) => m.slope(),
        }
    }

    /// Parameter domain on which the model was fitted.
    pub fn domain(&self) -> (f64, f64) {
        match self {
            ParametricModel::Linear(m) => m.domain(),
            ParametricModel::LogLinear(m) => m.domain(),
        }
    }

    /// Whether the metric increases with the parameter.
    pub fn is_increasing(&self) -> bool {
        self.slope() > 0.0
    }
}

impl fmt::Display for ParametricModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParametricModel::Linear(m) => write!(f, "{m}"),
            ParametricModel::LogLinear(m) => write!(f, "{m}"),
        }
    }
}

/// The fitted 1-D response of one metric along one named axis: the empirical
/// curve, its non-saturated zone, and the parametric model fitted inside
/// that zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisFit {
    /// Name of the axis the fit varies.
    pub axis: String,
    /// The full empirical response (axis value → metric), all design points
    /// of the axis's leg.
    pub curve: Curve,
    /// The detected non-saturated zone, in parameter units.
    pub active_zone: (f64, f64),
    /// The invertible model fitted on the non-saturated zone.
    pub model: ParametricModel,
}

impl AxisFit {
    /// Returns `true` if `value` lies inside the non-saturated zone.
    pub fn in_active_zone(&self, value: f64) -> bool {
        (self.active_zone.0..=self.active_zone.1).contains(&value)
    }
}

/// The fitted multivariate response of one metric over all axes of a grid
/// design: `metric = β₀ + Σ βᵢ · scaledᵢ(xᵢ)` with `scaledᵢ = ln` on
/// logarithmic axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfaceFit {
    /// Axis names, in space order (the regression's predictor order).
    pub axes: Vec<String>,
    /// Per-axis scale (decides the `ln` transform), aligned with `axes`.
    pub scales: Vec<ParameterScale>,
    /// The fitted least-squares plane over the scaled axes.
    pub regression: MultipleLinearRegression,
    /// Per-axis fitted domain in parameter units, aligned with `axes`.
    pub domain: Vec<(f64, f64)>,
}

impl SurfaceFit {
    fn scaled(&self, coords: &[f64]) -> Vec<f64> {
        coords
            .iter()
            .zip(&self.scales)
            .map(|(&value, scale)| match scale {
                ParameterScale::Linear => value,
                ParameterScale::Logarithmic => value.ln(),
            })
            .collect()
    }

    /// Predicted metric value at a configuration point (axis order must
    /// match the fitted axes).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for a point over
    /// different axes.
    pub fn predict(&self, point: &ConfigPoint) -> Result<f64, CoreError> {
        let names: Vec<&str> = point.values().iter().map(|(n, _)| n.as_str()).collect();
        if names != self.axes.iter().map(String::as_str).collect::<Vec<_>>() {
            return Err(CoreError::InvalidConfiguration {
                reason: format!(
                    "point axes ({}) do not match the fitted axes ({})",
                    names.join(", "),
                    self.axes.join(", ")
                ),
            });
        }
        Ok(self.regression.predict(&self.scaled(&point.coords()))?)
    }

    /// Returns `true` if every coordinate lies inside its fitted domain.
    pub fn in_domain(&self, point: &ConfigPoint) -> bool {
        point.len() == self.domain.len()
            && point
                .coords()
                .iter()
                .zip(&self.domain)
                .all(|(value, (lo, hi))| value >= lo && value <= hi)
    }

    /// Coefficient of determination of the fit.
    pub fn r_squared(&self) -> f64 {
        self.regression.r_squared()
    }
}

/// An [`AxisFit`] plus its prediction at the axis default, pre-computed for
/// the additive one-at-a-time combination in [`MetricModel::predict`] and
/// stored alongside the fit so a deserialized suite predicts identically.
///
/// Dereferences to its [`AxisFit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerAxisFit {
    fit: AxisFit,
    default_prediction: f64,
}

impl std::ops::Deref for PerAxisFit {
    type Target = AxisFit;

    fn deref(&self) -> &AxisFit {
        &self.fit
    }
}

/// The fitted response of one metric — the shape depends on the sweep's
/// dimensionality and mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricResponse {
    /// A one-axis sweep: the historical invertible fit.
    Axis(AxisFit),
    /// A multi-axis one-at-a-time sweep: one 1-D fit per axis.
    PerAxis(Vec<PerAxisFit>),
    /// A multi-axis grid sweep: one multivariate plane over all axes.
    Surface(SurfaceFit),
}

/// The fitted model of one metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricModel {
    /// Id of the metric.
    pub id: MetricId,
    /// Which way the metric improves.
    pub direction: Direction,
    /// The fitted response.
    pub response: MetricResponse,
}

impl MetricModel {
    /// The single-axis fit of a one-axis sweep, or `None` for multi-axis
    /// responses — the hinge legacy 1-D code paths turn on.
    pub fn axis(&self) -> Option<&AxisFit> {
        match &self.response {
            MetricResponse::Axis(fit) => Some(fit),
            _ => None,
        }
    }

    /// The 1-D fit along one named axis: the whole fit of a matching
    /// single-axis response, or the matching per-axis leg of a one-at-a-time
    /// response. `None` for surfaces and unknown axes.
    pub fn axis_fit(&self, axis: &str) -> Option<&AxisFit> {
        match &self.response {
            MetricResponse::Axis(fit) => (fit.axis == axis).then_some(fit),
            MetricResponse::PerAxis(fits) => fits.iter().find(|f| f.axis == axis).map(|f| &f.fit),
            MetricResponse::Surface(_) => None,
        }
    }

    /// Predicted metric value at a configuration point.
    ///
    /// For one-at-a-time responses the prediction combines the per-axis fits
    /// additively around the all-defaults baseline (the star design measures
    /// no interactions): `ŷ(x) = Σᵢ fᵢ(xᵢ) − (k−1) · ȳ₀` with `ȳ₀` the mean
    /// per-axis prediction at the defaults.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for a point whose axes do
    /// not match the fitted response.
    pub fn predict(&self, point: &ConfigPoint) -> Result<f64, CoreError> {
        match &self.response {
            MetricResponse::Axis(fit) => {
                let value =
                    point.get(&fit.axis).ok_or_else(|| CoreError::InvalidConfiguration {
                        reason: format!("point has no axis \"{}\"", fit.axis),
                    })?;
                Ok(fit.model.predict(value))
            }
            MetricResponse::Surface(surface) => surface.predict(point),
            MetricResponse::PerAxis(fits) => {
                let mut total = 0.0;
                let mut baseline = 0.0;
                for fit in fits {
                    let value =
                        point.get(&fit.axis).ok_or_else(|| CoreError::InvalidConfiguration {
                            reason: format!("point has no axis \"{}\"", fit.axis),
                        })?;
                    total += fit.model.predict(value);
                    baseline += fit.default_prediction;
                }
                let k = fits.len() as f64;
                let mean_baseline = baseline / k;
                Ok(total - (k - 1.0) * mean_baseline)
            }
        }
    }

    /// Returns `true` if the point lies where the fitted response claims
    /// validity: inside the active zone (1-D and per-axis fits) or the
    /// fitted domain (surfaces).
    pub fn in_zone(&self, point: &ConfigPoint) -> bool {
        match &self.response {
            MetricResponse::Axis(fit) => {
                point.get(&fit.axis).is_some_and(|v| fit.in_active_zone(v))
            }
            MetricResponse::Surface(surface) => surface.in_domain(point),
            MetricResponse::PerAxis(fits) => {
                fits.iter().all(|fit| point.get(&fit.axis).is_some_and(|v| fit.in_active_zone(v)))
            }
        }
    }
}

/// The complete modeling result: one [`MetricModel`] per metric of the swept
/// suite, in suite order, over the sweep's [`ConfigSpace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FittedSuite {
    /// The swept configuration space.
    pub space: ConfigSpace,
    /// How the space was enumerated (decides the response shape).
    pub mode: SweepMode,
    /// The fitted per-metric responses (`Pr = a + b·ln ε` and
    /// `Ut = α + β·ln ε` in the paper).
    pub models: Vec<MetricModel>,
}

impl FittedSuite {
    /// The fitted model of one metric.
    pub fn model(&self, id: &MetricId) -> Option<&MetricModel> {
        self.models.iter().find(|m| &m.id == id)
    }

    /// The metric ids, in suite order.
    pub fn ids(&self) -> Vec<MetricId> {
        self.models.iter().map(|m| m.id.clone()).collect()
    }

    /// The first fitted model improving in `direction`.
    pub fn model_by_direction(&self, direction: Direction) -> Option<&MetricModel> {
        self.models.iter().find(|m| m.direction == direction)
    }

    /// The axis names joined for display (`"epsilon"` for the paper's 1-D
    /// study, `"epsilon × cell_size"` for a composed one).
    pub fn axis_label(&self) -> String {
        self.space.names().join(" × ")
    }
}

impl fmt::Display for FittedSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, m) in self.models.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            match &m.response {
                MetricResponse::Axis(fit) => {
                    write!(f, "{} ({}): {}", m.id, fit.axis, fit.model)?;
                }
                MetricResponse::PerAxis(fits) => {
                    write!(f, "{} (one-at-a-time):", m.id)?;
                    for fit in fits {
                        write!(f, "\n  {}: {}", fit.axis, fit.model)?;
                    }
                }
                MetricResponse::Surface(surface) => {
                    write!(
                        f,
                        "{} ({}): multivariate R² = {:.3}",
                        m.id,
                        self.axis_label(),
                        surface.r_squared()
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// The modeling outcome of one user in a per-user fit: either a complete
/// [`FittedSuite`] over the user's own response curves, or the reason no
/// suite could be fitted (a metric excluded the user, or her response was
/// degenerate — flat, too few points in the active zone, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UserFitOutcome {
    /// Every suite metric's model was fitted on this user's curves.
    Fitted(FittedSuite),
    /// No usable per-user model; the configurator falls back to the
    /// dataset-level recommendation for this user.
    Unfit {
        /// Why the user could not be modeled.
        reason: String,
    },
}

impl UserFitOutcome {
    /// The fitted suite, if the user was modeled.
    pub fn fitted(&self) -> Option<&FittedSuite> {
        match self {
            UserFitOutcome::Fitted(suite) => Some(suite),
            UserFitOutcome::Unfit { .. } => None,
        }
    }
}

/// One user's per-user modeling result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserFit {
    /// The user the models belong to.
    pub user: UserId,
    /// The fitted suite, or why there is none.
    pub outcome: UserFitOutcome,
}

/// The complete per-user modeling result of one sweep: one [`UserFit`] per
/// user resolved by the sweep's [`crate::experiment::UserColumn`]s — the
/// paper's "one sweep, N user models" efficiency claim made concrete: the
/// expensive measurement runs once, and every user's models are fitted from
/// the shared design matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerUserFits {
    /// The swept configuration space (shared by every user's models).
    pub space: ConfigSpace,
    /// How the space was enumerated.
    pub mode: SweepMode,
    /// One entry per user, in the sweep's user order.
    pub users: Vec<UserFit>,
}

impl PerUserFits {
    /// The modeling outcome of one user.
    pub fn get(&self, user: UserId) -> Option<&UserFitOutcome> {
        self.users.iter().find(|f| f.user == user).map(|f| &f.outcome)
    }

    /// The fitted suite of one user, if she was modeled.
    pub fn fitted(&self, user: UserId) -> Option<&FittedSuite> {
        self.get(user).and_then(UserFitOutcome::fitted)
    }

    /// Number of users (modeled or not).
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Returns `true` when the sweep resolved no users at all.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Number of users with a complete fitted suite.
    pub fn fitted_count(&self) -> usize {
        self.users.iter().filter(|f| f.outcome.fitted().is_some()).count()
    }
}

/// Where one metric's fitted model is still uncertain against the sweep it
/// was fitted on: the boundary/uncertainty report driving adaptive
/// refinement ([`SweepMode::Adaptive`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDiagnostics {
    /// Id of the diagnosed metric.
    pub id: MetricId,
    /// Absolute residual `|measured − predicted|` per design point, aligned
    /// with [`SweepResult::points`].
    pub residuals: Vec<f64>,
    /// Index (into [`SweepResult::points`]) of the worst-fit point — the
    /// first point attaining the maximum residual.
    pub worst_point: usize,
    /// The fitted active-zone edges per axis, `(axis name, (lo, hi))` in
    /// parameter units — the brackets holding the saturation knees 1-D and
    /// per-axis fits detected. Empty for surface fits (their validity region
    /// is the whole fitted domain).
    pub zone_edges: Vec<(String, (f64, f64))>,
}

impl MetricDiagnostics {
    /// The largest absolute residual (0 for an empty design).
    pub fn max_residual(&self) -> f64 {
        self.residuals.iter().copied().fold(0.0, f64::max)
    }
}

/// The fit-quality report of a whole suite: one [`MetricDiagnostics`] per
/// fitted model, in suite order. Produced by [`Modeler::diagnose`] (dataset
/// level) and [`Modeler::diagnose_user`] (one user's own curves).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitDiagnostics {
    /// One report per fitted metric model, in suite order.
    pub metrics: Vec<MetricDiagnostics>,
}

impl FitDiagnostics {
    /// The report of one metric.
    pub fn metric(&self, id: &MetricId) -> Option<&MetricDiagnostics> {
        self.metrics.iter().find(|m| &m.id == id)
    }
}

/// Fits invertible metric models from sweep measurements.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Modeler {
    _private: (),
}

impl Modeler {
    /// Creates a modeler with the default saturation thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fits every metric's model from a sweep result.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfiguration`] if the sweep has fewer than four
    ///   points (per axis leg in one-at-a-time mode).
    /// * [`CoreError::Analysis`] if a metric never responds to the parameters
    ///   (zero dynamic range) or the fit is degenerate.
    pub fn fit(&self, sweep: &SweepResult) -> Result<FittedSuite, CoreError> {
        let models = sweep
            .columns
            .iter()
            .map(|column| {
                let response = self.fit_response(sweep, &column.means, &column.id)?;
                Ok(MetricModel { id: column.id.clone(), direction: column.direction, response })
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        Ok(FittedSuite { space: sweep.space.clone(), mode: sweep.mode, models })
    }

    /// Fits one model per *user* and metric from a per-user sweep — the
    /// paper's per-user configuration scenario: the sweep runs once, then
    /// every user's own response curves go through exactly the same
    /// axis/surface machinery as the dataset-level fit.
    ///
    /// Users whose curves cannot be modeled (a metric excluded them, or
    /// their response is degenerate) are reported as
    /// [`UserFitOutcome::Unfit`] with the reason, never dropped silently —
    /// the configurator applies its documented fallback policy to them.
    ///
    /// The per-user fits are independent, so they run on the same
    /// work-stealing pool as the sweep itself; the result does not depend on
    /// the thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] when the sweep was
    /// recorded at [`Grain::Dataset`] (request `per_user()` on the sweep
    /// plan).
    pub fn fit_per_user(&self, sweep: &SweepResult) -> Result<PerUserFits, CoreError> {
        if sweep.grain != Grain::PerUser {
            return Err(CoreError::InvalidConfiguration {
                reason: "per-user modeling needs a per-user sweep — request it with \
                         SweepPlan::per_user() (or .sweep(|s| s.per_user()) on the facade)"
                    .to_string(),
            });
        }
        let users = sweep.users();
        let fits = run_indexed(users.len(), true, |i| self.fit_user(sweep, users[i]))?;
        Ok(PerUserFits { space: sweep.space.clone(), mode: sweep.mode, users: fits })
    }

    /// Refits only the *changed* users of a per-user sweep, reusing the
    /// previous [`PerUserFits`] for everyone else — the modeling half of the
    /// incremental-recomputation path (see
    /// [`crate::experiment::SweepPlan::cached`]).
    ///
    /// A user is refitted when she appears in `changed` or has no entry in
    /// `previous`; every other user's [`UserFit`] is carried over verbatim.
    /// Because an unchanged user's response curves are bit-identical between
    /// the previous sweep and this one (the cached-sweep contract), the
    /// result is **bit-identical to a full [`Modeler::fit_per_user`]** on
    /// `sweep` — this is asserted by the incremental integration tests and
    /// the `incremental` bench on every run.
    ///
    /// Users present in `previous` but absent from `sweep` are dropped (they
    /// left the dataset); the output covers exactly `sweep.users()`, in
    /// sweep order.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfiguration`] when the sweep was recorded at
    ///   [`Grain::Dataset`], or when `previous` belongs to a different
    ///   configuration space or sweep mode (carrying fits across designs
    ///   would silently break the bit-identity contract).
    pub fn refit_per_user(
        &self,
        sweep: &SweepResult,
        previous: &PerUserFits,
        changed: &[UserId],
    ) -> Result<PerUserFits, CoreError> {
        if sweep.grain != Grain::PerUser {
            return Err(CoreError::InvalidConfiguration {
                reason: "per-user refitting needs a per-user sweep — request it with \
                         SweepPlan::per_user() (or .sweep(|s| s.per_user()) on the facade)"
                    .to_string(),
            });
        }
        if previous.space != sweep.space || previous.mode != sweep.mode {
            return Err(CoreError::InvalidConfiguration {
                reason: "the previous per-user fits belong to a different configuration \
                         space or sweep mode; refit from scratch with fit_per_user"
                    .to_string(),
            });
        }
        let kept: std::collections::BTreeMap<UserId, &UserFit> =
            previous.users.iter().map(|fit| (fit.user, fit)).collect();
        let changed: std::collections::BTreeSet<UserId> = changed.iter().copied().collect();
        let users = sweep.users();
        let fits = run_indexed(users.len(), true, |i| {
            let user = users[i];
            match kept.get(&user) {
                Some(&fit) if !changed.contains(&user) => fit.clone(),
                _ => self.fit_user(sweep, user),
            }
        })?;
        Ok(PerUserFits { space: sweep.space.clone(), mode: sweep.mode, users: fits })
    }

    /// Fits every suite metric on one user's curves; any failure becomes an
    /// [`UserFitOutcome::Unfit`] with the reason.
    fn fit_user(&self, sweep: &SweepResult, user: UserId) -> UserFit {
        let mut models = Vec::with_capacity(sweep.columns.len());
        for column in &sweep.columns {
            let curve = sweep.user_column(&column.id).and_then(|uc| uc.curve(user));
            let Some(curve) = curve else {
                return UserFit {
                    user,
                    outcome: UserFitOutcome::Unfit {
                        reason: format!(
                            "metric \"{}\" excluded {user} from measurement (no evaluable data)",
                            column.id
                        ),
                    },
                };
            };
            match self.fit_response(sweep, curve, &column.id) {
                Ok(response) => models.push(MetricModel {
                    id: column.id.clone(),
                    direction: column.direction,
                    response,
                }),
                Err(error) => {
                    return UserFit {
                        user,
                        outcome: UserFitOutcome::Unfit {
                            reason: format!("metric \"{}\": {error}", column.id),
                        },
                    };
                }
            }
        }
        UserFit {
            user,
            outcome: UserFitOutcome::Fitted(FittedSuite {
                space: sweep.space.clone(),
                mode: sweep.mode,
                models,
            }),
        }
    }

    fn fit_response(
        &self,
        sweep: &SweepResult,
        means: &[f64],
        id: &MetricId,
    ) -> Result<MetricResponse, CoreError> {
        if let Some(axis) = sweep.single_axis() {
            let name = axis.name().to_string();
            let parameters = sweep.axis_values(&name).ok_or_else(|| CoreError::Internal {
                reason: format!("a design point lacks the sweep's single axis \"{name}\""),
            })?;
            let fit = self.fit_axis(&name, axis.scale(), &parameters, means, sweep.len(), id)?;
            return Ok(MetricResponse::Axis(fit));
        }
        match sweep.mode {
            // Adaptive designs are irregular grids; the surface regression
            // makes no regularity assumption, so they share the grid path.
            SweepMode::Grid | SweepMode::Adaptive => {
                Ok(MetricResponse::Surface(self.fit_surface(sweep, means)?))
            }
            SweepMode::OneAtATime => {
                let fits = self.fit_legs(sweep, means, id)?;
                Ok(MetricResponse::PerAxis(fits))
            }
        }
    }

    /// The historical 1-D fit: saturation-windowed invertible model on one
    /// axis — arithmetic unchanged from the single-scalar framework.
    fn fit_axis(
        &self,
        axis: &str,
        scale: ParameterScale,
        parameters: &[f64],
        values: &[f64],
        design_points: usize,
        id: &MetricId,
    ) -> Result<AxisFit, CoreError> {
        if parameters.len() < 4 {
            return Err(CoreError::InvalidConfiguration {
                reason: format!(
                    "modeling metric \"{id}\" on axis \"{axis}\" needs at least 4 sweep points, \
                     got {} (of {design_points} design points)",
                    parameters.len()
                ),
            });
        }
        let logarithmic = scale == ParameterScale::Logarithmic;

        // Work on a transformed x-axis (ln for logarithmic parameters) so the
        // saturation detector sees evenly spaced samples, exactly like the
        // log-scale x-axis of Figure 1.
        let transformed: Vec<f64> = if logarithmic {
            parameters.iter().map(|p| p.ln()).collect()
        } else {
            parameters.to_vec()
        };
        let detection_curve =
            Curve::new(transformed.iter().copied().zip(values.iter().copied()).collect())?;
        let zone: ActiveZone = find_active_zone(&detection_curve)?;

        // Restrict the raw samples to the active zone and fit the parametric model.
        let in_zone: Vec<(f64, f64)> = transformed
            .iter()
            .zip(parameters.iter())
            .zip(values.iter())
            .filter(|((t, _), _)| zone.contains(**t))
            .map(|((_, p), v)| (*p, *v))
            .collect();
        let zone_params: Vec<f64> = in_zone.iter().map(|(p, _)| *p).collect();
        let zone_values: Vec<f64> = in_zone.iter().map(|(_, v)| *v).collect();

        let model = if logarithmic {
            ParametricModel::LogLinear(LogLinearModel::fit(&zone_params, &zone_values)?)
        } else {
            ParametricModel::Linear(LinearModel::fit(&zone_params, &zone_values)?)
        };

        // The full empirical curve is kept in parameter units for reporting.
        let curve = Curve::new(parameters.iter().copied().zip(values.iter().copied()).collect())?;
        let active_zone = (
            zone_params.iter().copied().fold(f64::INFINITY, f64::min),
            zone_params.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        );
        Ok(AxisFit { axis: axis.to_string(), curve, active_zone, model })
    }

    /// One 1-D fit per axis of a one-at-a-time design: each axis's leg is
    /// every design point holding all *other* axes at their defaults.
    fn fit_legs(
        &self,
        sweep: &SweepResult,
        means: &[f64],
        id: &MetricId,
    ) -> Result<Vec<PerAxisFit>, CoreError> {
        let defaults: Vec<f64> =
            sweep.space.axes().iter().map(|axis| axis.default_value()).collect();
        let mut fits = Vec::with_capacity(sweep.space.len());
        for (i, axis) in sweep.space.axes().iter().enumerate() {
            let leg: Vec<(f64, f64)> = sweep
                .points
                .iter()
                .zip(means)
                .filter(|(point, _)| {
                    point
                        .coords()
                        .iter()
                        .enumerate()
                        .all(|(j, &value)| j == i || value == defaults[j])
                })
                .map(|(point, &mean)| (point.coords()[i], mean))
                .collect();
            let parameters: Vec<f64> = leg.iter().map(|(p, _)| *p).collect();
            let values: Vec<f64> = leg.iter().map(|(_, v)| *v).collect();
            let fit =
                self.fit_axis(axis.name(), axis.scale(), &parameters, &values, sweep.len(), id)?;
            let default_prediction = fit.model.predict(defaults[i]);
            fits.push(PerAxisFit { fit, default_prediction });
        }
        Ok(fits)
    }

    /// Diagnoses a fitted suite against the sweep it was fitted on: per-point
    /// residuals of every metric model, the worst-fit point, and the
    /// active-zone edges — the uncertainty report adaptive refinement
    /// ([`SweepMode::Adaptive`]) decides its next evaluations by.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] when the sweep lacks a
    /// column for a fitted metric or a model cannot predict at the sweep's
    /// points (suite and sweep do not belong together).
    pub fn diagnose(
        &self,
        sweep: &SweepResult,
        fitted: &FittedSuite,
    ) -> Result<FitDiagnostics, CoreError> {
        let mut metrics = Vec::with_capacity(fitted.models.len());
        for model in &fitted.models {
            let values =
                sweep.values(&model.id).ok_or_else(|| CoreError::InvalidConfiguration {
                    reason: format!("sweep has no column \"{}\" to diagnose against", model.id),
                })?;
            metrics.push(Self::diagnose_model(sweep, model, values)?);
        }
        Ok(FitDiagnostics { metrics })
    }

    /// Diagnoses one user's fitted suite against her own measured curves —
    /// the per-user counterpart of [`Modeler::diagnose`], used by adaptive
    /// refinement to keep spending evaluations on the users whose curves are
    /// still uncertain (successive halving at [`Grain::PerUser`]).
    ///
    /// # Errors
    ///
    /// As [`Modeler::diagnose`], plus when the sweep records no curve of
    /// `user` for a fitted metric.
    pub fn diagnose_user(
        &self,
        sweep: &SweepResult,
        fitted: &FittedSuite,
        user: UserId,
    ) -> Result<FitDiagnostics, CoreError> {
        let mut metrics = Vec::with_capacity(fitted.models.len());
        for model in &fitted.models {
            let curve =
                sweep.user_column(&model.id).and_then(|c| c.curve(user)).ok_or_else(|| {
                    CoreError::InvalidConfiguration {
                        reason: format!(
                            "sweep records no curve of {user} for metric \"{}\"",
                            model.id
                        ),
                    }
                })?;
            metrics.push(Self::diagnose_model(sweep, model, curve)?);
        }
        Ok(FitDiagnostics { metrics })
    }

    fn diagnose_model(
        sweep: &SweepResult,
        model: &MetricModel,
        values: &[f64],
    ) -> Result<MetricDiagnostics, CoreError> {
        let mut residuals = Vec::with_capacity(sweep.len());
        for (point, &value) in sweep.points.iter().zip(values) {
            residuals.push((value - model.predict(point)?).abs());
        }
        let worst_point = residuals
            .iter()
            .enumerate()
            .fold((0, f64::NEG_INFINITY), |best, (i, &r)| if r > best.1 { (i, r) } else { best })
            .0;
        let zone_edges = match &model.response {
            MetricResponse::Axis(fit) => vec![(fit.axis.clone(), fit.active_zone)],
            MetricResponse::PerAxis(fits) => {
                fits.iter().map(|f| (f.axis.clone(), f.active_zone)).collect()
            }
            MetricResponse::Surface(_) => Vec::new(),
        };
        Ok(MetricDiagnostics { id: model.id.clone(), residuals, worst_point, zone_edges })
    }

    /// Equation 1's multivariate form on a grid design: a least-squares
    /// plane over the scaled axes.
    fn fit_surface(&self, sweep: &SweepResult, means: &[f64]) -> Result<SurfaceFit, CoreError> {
        let scales: Vec<ParameterScale> =
            sweep.space.axes().iter().map(|axis| axis.scale()).collect();
        let predictors: Vec<Vec<f64>> = sweep
            .points
            .iter()
            .map(|point| {
                point
                    .coords()
                    .iter()
                    .zip(&scales)
                    .map(|(&value, scale)| match scale {
                        ParameterScale::Linear => value,
                        ParameterScale::Logarithmic => value.ln(),
                    })
                    .collect()
            })
            .collect();
        let regression = MultipleLinearRegression::fit(&predictors, means)?;
        let domain: Vec<(f64, f64)> = (0..sweep.space.len())
            .map(|i| {
                let axis_values: Vec<f64> = sweep.points.iter().map(|p| p.coords()[i]).collect();
                (
                    axis_values.iter().copied().fold(f64::INFINITY, f64::min),
                    axis_values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                )
            })
            .collect();
        Ok(SurfaceFit {
            axes: sweep.space.names().iter().map(|n| n.to_string()).collect(),
            scales,
            regression,
            domain,
        })
    }
}

/// Shared synthetic per-user fixture for the core unit tests (modeling and
/// configurator).
#[cfg(test)]
pub(crate) mod fixtures {
    use super::*;
    use crate::experiment::{MetricColumn, UserColumn};
    use geopriv_lppm::{ParameterDescriptor, ParameterScale};
    use geopriv_mobility::UserId;

    /// A synthetic per-user sweep: users 1 and 2 follow Equation 2 with
    /// per-user intercept shifts (user 2 is strictly worse off on privacy),
    /// user 3 is excluded from the privacy metric (no POIs), and user 4's
    /// utility response is flat (degenerate fit). The aggregate columns
    /// follow the paper's population curves, so the dataset-level scenario
    /// stays the classic feasible one.
    pub(crate) fn per_user_sweep() -> SweepResult {
        let points = 41;
        let parameters: Vec<f64> = (0..points)
            .map(|i| 1e-4 * (1.0f64 / 1e-4).powf(i as f64 / (points - 1) as f64))
            .collect();
        let privacy_curve = |shift: f64| -> Vec<f64> {
            parameters.iter().map(|e| (0.84 + shift + 0.17 * e.ln()).clamp(0.0, 0.45)).collect()
        };
        let utility_curve = |shift: f64| -> Vec<f64> {
            parameters.iter().map(|e| (1.21 + shift + 0.09 * e.ln()).clamp(0.2, 1.0)).collect()
        };
        let privacy_curves = vec![privacy_curve(0.0), privacy_curve(0.05), privacy_curve(0.02)];
        let utility_curves =
            vec![utility_curve(0.0), utility_curve(-0.03), utility_curve(0.02), vec![0.5; points]];
        let columns = vec![
            MetricColumn {
                id: MetricId::new("poi-retrieval"),
                direction: Direction::LowerIsBetter,
                runs: vec![],
                means: privacy_curve(0.0),
            },
            MetricColumn {
                id: MetricId::new("area-coverage"),
                direction: Direction::HigherIsBetter,
                runs: vec![],
                means: utility_curve(0.0),
            },
        ];
        let user_columns = vec![
            UserColumn {
                id: MetricId::new("poi-retrieval"),
                direction: Direction::LowerIsBetter,
                users: vec![UserId::new(1), UserId::new(2), UserId::new(4)],
                curves: privacy_curves,
            },
            UserColumn {
                id: MetricId::new("area-coverage"),
                direction: Direction::HigherIsBetter,
                users: vec![UserId::new(1), UserId::new(2), UserId::new(3), UserId::new(4)],
                curves: utility_curves,
            },
        ];
        let space = ConfigSpace::single(
            ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap(),
        );
        let points: Vec<_> =
            parameters.iter().map(|&value| space.point_from_coords(&[value]).unwrap()).collect();
        SweepResult::with_user_columns(
            "geo-indistinguishability",
            space,
            SweepMode::Grid,
            points,
            columns,
            user_columns,
        )
        .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::MetricColumn;
    use geopriv_lppm::{ParameterDescriptor, ParameterScale};

    fn privacy_id() -> MetricId {
        MetricId::new("poi-retrieval")
    }

    fn utility_id() -> MetricId {
        MetricId::new("area-coverage")
    }

    fn epsilon_axis() -> ParameterDescriptor {
        ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap()
    }

    /// Builds a synthetic sweep result following the paper's Equation 2 with
    /// saturation outside the active zone, without running any experiment.
    fn paper_like_sweep(points: usize) -> SweepResult {
        let parameters: Vec<f64> = (0..points)
            .map(|i| 1e-4 * (1.0f64 / 1e-4).powf(i as f64 / (points - 1) as f64))
            .collect();
        let privacy: Vec<f64> =
            parameters.iter().map(|e| (0.84 + 0.17 * e.ln()).clamp(0.0, 0.45)).collect();
        let utility: Vec<f64> =
            parameters.iter().map(|e| (1.21 + 0.09 * e.ln()).clamp(0.2, 1.0)).collect();
        SweepResult::from_axis(
            "geo-indistinguishability",
            epsilon_axis(),
            &parameters,
            vec![
                MetricColumn {
                    id: privacy_id(),
                    direction: Direction::LowerIsBetter,
                    runs: privacy.iter().map(|&v| vec![v]).collect(),
                    means: privacy,
                },
                MetricColumn {
                    id: utility_id(),
                    direction: Direction::HigherIsBetter,
                    runs: utility.iter().map(|&v| vec![v]).collect(),
                    means: utility,
                },
            ],
        )
        .unwrap()
    }

    /// A synthetic 2-D grid sweep: an additive plane in (ln ε, ln cell).
    fn grid_sweep() -> SweepResult {
        let space = geopriv_lppm::ConfigSpace::new(vec![
            epsilon_axis(),
            ParameterDescriptor::new("cell_size", 50.0, 5000.0, ParameterScale::Logarithmic)
                .unwrap(),
        ])
        .unwrap();
        let points = space.grid(&[5, 5]).unwrap();
        let response: Vec<f64> = points
            .iter()
            .map(|p| {
                0.9 + 0.05 * p.get("epsilon").unwrap().ln()
                    - 0.04 * p.get("cell_size").unwrap().ln()
            })
            .collect();
        SweepResult::new(
            "pipeline[geo-indistinguishability, grid-cloaking]",
            space,
            SweepMode::Grid,
            points,
            vec![MetricColumn {
                id: privacy_id(),
                direction: Direction::LowerIsBetter,
                runs: vec![],
                means: response,
            }],
        )
        .unwrap()
    }

    #[test]
    fn recovers_the_paper_coefficients_from_a_clean_sweep() {
        let sweep = paper_like_sweep(41);
        let fitted = Modeler::new().fit(&sweep).unwrap();
        assert_eq!(fitted.ids(), vec![privacy_id(), utility_id()]);
        assert_eq!(fitted.axis_label(), "epsilon");

        // Privacy side of Equation 2: a = 0.84, b = 0.17.
        let p = &fitted.model(&privacy_id()).unwrap().axis().unwrap().model;
        assert!((p.intercept() - 0.84).abs() < 0.08, "a = {}", p.intercept());
        assert!((p.slope() - 0.17).abs() < 0.04, "b = {}", p.slope());
        assert!(p.r_squared() > 0.95);
        assert!(p.is_increasing());

        // Utility side: alpha = 1.21, beta = 0.09.
        let u = &fitted.model(&utility_id()).unwrap().axis().unwrap().model;
        assert!((u.intercept() - 1.21).abs() < 0.12, "alpha = {}", u.intercept());
        assert!((u.slope() - 0.09).abs() < 0.03, "beta = {}", u.slope());
        assert!(u.r_squared() > 0.95);

        // Directions flow from the columns into the models.
        assert_eq!(fitted.model_by_direction(Direction::LowerIsBetter).unwrap().id, privacy_id());

        // The display mentions both metrics.
        let text = fitted.to_string();
        assert!(text.contains("poi-retrieval") && text.contains("area-coverage"));

        // Point-based prediction equals scalar prediction on the 1-D path.
        let model = fitted.model(&privacy_id()).unwrap();
        let point = sweep.space.point(&[("epsilon", 0.01)]).unwrap();
        assert_eq!(model.predict(&point).unwrap(), p.predict(0.01));
        assert_eq!(model.axis_fit("epsilon").unwrap().axis, "epsilon");
        assert!(model.axis_fit("sigma").is_none());
    }

    #[test]
    fn active_zones_exclude_the_saturated_tails() {
        let sweep = paper_like_sweep(41);
        let fitted = Modeler::new().fit(&sweep).unwrap();
        let privacy = fitted.model(&privacy_id()).unwrap().axis().unwrap().clone();
        let utility = fitted.model(&utility_id()).unwrap().axis().unwrap().clone();
        // Privacy saturates at 0 below eps~0.007 and at 0.45 above eps~0.1:
        // the active zone must be a strict sub-range of the sweep.
        let (lo, hi) = privacy.active_zone;
        assert!(lo > 1e-4 * 1.5, "zone starts too early: {lo}");
        assert!(hi < 1.0 / 1.5, "zone ends too late: {hi}");
        assert!(privacy.in_active_zone(0.01));
        assert!(!privacy.in_active_zone(1e-4));
        // The point-level zone query agrees.
        let model = fitted.model(&privacy_id()).unwrap();
        assert!(model.in_zone(&sweep.space.point(&[("epsilon", 0.01)]).unwrap()));
        assert!(!model.in_zone(&sweep.space.point(&[("epsilon", 1e-4)]).unwrap()));

        // The utility response spans more of the range, so its zone is wider
        // (in log terms) than the privacy zone — the paper's "evolves more
        // slowly on a larger range".
        let privacy_width = (privacy.active_zone.1 / privacy.active_zone.0).ln();
        let utility_width = (utility.active_zone.1 / utility.active_zone.0).ln();
        assert!(utility_width > privacy_width, "{utility_width} vs {privacy_width}");
    }

    #[test]
    fn model_inversion_recovers_the_operating_point() {
        let sweep = paper_like_sweep(41);
        let fitted = Modeler::new().fit(&sweep).unwrap();
        // Inverting the privacy model at 10% gives an epsilon near 0.0128
        // (the paper rounds to 0.01).
        let eps_for_privacy =
            fitted.model(&privacy_id()).unwrap().axis().unwrap().model.invert(0.10).unwrap();
        assert!((0.008..0.02).contains(&eps_for_privacy), "eps {eps_for_privacy}");
        // And the utility model predicts about 80% utility there.
        let predicted_utility =
            fitted.model(&utility_id()).unwrap().axis().unwrap().model.predict(eps_for_privacy);
        assert!((0.75..0.88).contains(&predicted_utility), "utility {predicted_utility}");
    }

    #[test]
    fn every_metric_of_a_larger_suite_is_fitted() {
        let mut sweep = paper_like_sweep(30);
        let extra: Vec<f64> = sweep
            .points
            .iter()
            .map(|p| (0.95 + 0.05 * p.single().unwrap().ln()).clamp(0.1, 0.9))
            .collect();
        sweep.columns.push(MetricColumn {
            id: MetricId::new("hotspot-preservation"),
            direction: Direction::HigherIsBetter,
            runs: extra.iter().map(|&v| vec![v]).collect(),
            means: extra,
        });
        let fitted = Modeler::new().fit(&sweep).unwrap();
        assert_eq!(fitted.models.len(), 3);
        assert!(fitted.model(&MetricId::new("hotspot-preservation")).is_some());
    }

    #[test]
    fn too_few_points_or_flat_metrics_are_rejected() {
        let sweep = paper_like_sweep(3);
        assert!(Modeler::new().fit(&sweep).is_err());

        let mut flat = paper_like_sweep(20);
        flat.columns[0].means = vec![0.3; 20];
        assert!(matches!(Modeler::new().fit(&flat), Err(CoreError::Analysis(_))));
    }

    #[test]
    fn linear_scale_parameters_use_a_linear_model() {
        let parameters: Vec<f64> = (0..15).map(|i| (i as f64 / 14.0).max(0.01)).collect();
        let privacy: Vec<f64> = parameters.iter().map(|p| 0.05 + 0.4 * p).collect();
        let utility: Vec<f64> = parameters.iter().map(|p| 0.2 + 0.75 * p).collect();
        let sweep = SweepResult::from_axis(
            "release-sampling",
            ParameterDescriptor::new("probability", 0.01, 1.0, ParameterScale::Linear).unwrap(),
            &parameters,
            vec![
                MetricColumn {
                    id: privacy_id(),
                    direction: Direction::LowerIsBetter,
                    runs: vec![],
                    means: privacy,
                },
                MetricColumn {
                    id: utility_id(),
                    direction: Direction::HigherIsBetter,
                    runs: vec![],
                    means: utility,
                },
            ],
        )
        .unwrap();
        let fitted = Modeler::new().fit(&sweep).unwrap();
        let p = fitted.model(&privacy_id()).unwrap().axis().unwrap();
        let u = fitted.model(&utility_id()).unwrap().axis().unwrap();
        assert!(matches!(p.model, ParametricModel::Linear(_)));
        assert!((p.model.slope() - 0.4).abs() < 0.05);
        assert!((u.model.slope() - 0.75).abs() < 0.05);
    }

    #[test]
    fn grid_sweeps_fit_a_multivariate_surface() {
        let sweep = grid_sweep();
        let fitted = Modeler::new().fit(&sweep).unwrap();
        assert_eq!(fitted.axis_label(), "epsilon × cell_size");
        let model = fitted.model(&privacy_id()).unwrap();
        let surface = match &model.response {
            MetricResponse::Surface(s) => s,
            other => panic!("expected a surface, got {other:?}"),
        };
        // The plane is recovered near-exactly.
        assert!(surface.r_squared() > 0.999, "R² {}", surface.r_squared());
        let c = surface.regression.coefficients();
        assert!((c[0] - 0.9).abs() < 1e-9);
        assert!((c[1] - 0.05).abs() < 1e-9);
        assert!((c[2] + 0.04).abs() < 1e-9);

        // Prediction at an interior point matches the generating plane.
        let point = sweep.space.point(&[("epsilon", 0.01), ("cell_size", 500.0)]).unwrap();
        let expected = 0.9 + 0.05 * 0.01f64.ln() - 0.04 * 500.0f64.ln();
        assert!((model.predict(&point).unwrap() - expected).abs() < 1e-9);
        assert!(model.in_zone(&point));
        assert!(model.axis().is_none());
        assert!(model.axis_fit("epsilon").is_none());
        // Foreign points are typed errors.
        let foreign =
            geopriv_lppm::ConfigSpace::single(epsilon_axis()).point(&[("epsilon", 0.01)]).unwrap();
        assert!(model.predict(&foreign).is_err());
        assert!(!model.in_zone(&foreign));
        // The display mentions the multivariate fit.
        assert!(fitted.to_string().contains("multivariate"));
    }

    use crate::modeling::fixtures::per_user_sweep;

    #[test]
    fn per_user_fits_model_every_modellable_user() {
        use geopriv_mobility::UserId;

        let sweep = per_user_sweep();
        let fits = Modeler::new().fit_per_user(&sweep).unwrap();
        assert_eq!(fits.mode, SweepMode::Grid);
        assert_eq!(fits.len(), 4);
        assert!(!fits.is_empty());
        assert_eq!(fits.fitted_count(), 2);

        // Users 1 and 2 get a complete suite fitted on their own curves —
        // user 2's shifted privacy intercept is recovered.
        for user in [1u64, 2] {
            let suite = fits.fitted(UserId::new(user)).unwrap();
            assert_eq!(suite.ids(), vec![privacy_id(), utility_id()]);
        }
        let own = fits.fitted(UserId::new(2)).unwrap();
        let intercept = own.model(&privacy_id()).unwrap().axis().unwrap().model.intercept();
        assert!((intercept - 0.89).abs() < 0.08, "user 2 intercept {intercept}");

        // User 3 was excluded from the privacy metric: unfit, with the
        // metric named in the reason.
        match fits.get(UserId::new(3)).unwrap() {
            UserFitOutcome::Unfit { reason } => {
                assert!(reason.contains("poi-retrieval"), "reason: {reason}");
                assert!(reason.contains("user-3"), "reason: {reason}");
            }
            other => panic!("expected unfit, got {other:?}"),
        }
        // User 4's flat utility response cannot be modeled.
        match fits.get(UserId::new(4)).unwrap() {
            UserFitOutcome::Unfit { reason } => {
                assert!(reason.contains("area-coverage"), "reason: {reason}");
            }
            other => panic!("expected unfit, got {other:?}"),
        }
        assert!(fits.get(UserId::new(9)).is_none());
        assert!(fits.fitted(UserId::new(3)).is_none());
    }

    #[test]
    fn per_user_fitting_requires_a_per_user_sweep() {
        let dataset_grain = paper_like_sweep(20);
        assert!(matches!(
            Modeler::new().fit_per_user(&dataset_grain),
            Err(CoreError::InvalidConfiguration { .. })
        ));
    }

    #[test]
    fn diagnose_reports_residuals_worst_point_and_zone_edges() {
        let sweep = paper_like_sweep(12);
        let modeler = Modeler::new();
        let fitted = modeler.fit(&sweep).unwrap();
        let diagnostics = modeler.diagnose(&sweep, &fitted).unwrap();

        assert_eq!(diagnostics.metrics.len(), 2);
        assert!(diagnostics.metric(&privacy_id()).is_some());
        assert!(diagnostics.metric(&MetricId::new("nope")).is_none());
        for report in &diagnostics.metrics {
            assert_eq!(report.residuals.len(), sweep.len());
            assert!(report.residuals.iter().all(|r| r.is_finite() && *r >= 0.0));
            assert!(report.worst_point < sweep.len());
            let max = report.max_residual();
            assert_eq!(report.residuals[report.worst_point], max);
            // The clamped tails of the synthetic response put the largest
            // residuals outside the active zone, so the worst point's
            // residual is strictly positive.
            assert!(max > 0.0);
            // 1-D fits expose the single axis's active-zone bracket.
            assert_eq!(report.zone_edges.len(), 1);
            let (axis, (lo, hi)) = &report.zone_edges[0];
            assert_eq!(axis, "epsilon");
            assert!(lo < hi);
        }

        // A sweep without the fitted metric's column is a caller error.
        let mut stripped = sweep.clone();
        stripped.columns.retain(|c| c.id != privacy_id());
        assert!(matches!(
            modeler.diagnose(&stripped, &fitted),
            Err(CoreError::InvalidConfiguration { .. })
        ));
    }

    #[test]
    fn diagnose_surface_fits_have_no_zone_edges() {
        let sweep = grid_sweep();
        let modeler = Modeler::new();
        let fitted = modeler.fit(&sweep).unwrap();
        let diagnostics = modeler.diagnose(&sweep, &fitted).unwrap();
        let report = diagnostics.metric(&privacy_id()).unwrap();
        // The synthetic plane fits exactly, and surface validity is the whole
        // fitted domain — no knee brackets to refine around.
        assert!(report.max_residual() < 1e-9);
        assert!(report.zone_edges.is_empty());
    }

    #[test]
    fn adaptive_mode_sweeps_fit_like_grids_even_when_irregular() {
        // An adaptive sweep is an irregular design: take the synthetic grid,
        // drop some interior points and relabel the mode. The surface fit
        // must digest it (regression needs no lattice structure).
        let grid = grid_sweep();
        let keep: Vec<usize> = (0..grid.len()).filter(|i| i % 3 != 1).collect();
        let sweep = SweepResult::new(
            grid.lppm_name.clone(),
            grid.space.clone(),
            SweepMode::Adaptive,
            keep.iter().map(|&i| grid.points[i].clone()).collect(),
            grid.columns
                .iter()
                .map(|c| MetricColumn {
                    id: c.id.clone(),
                    direction: c.direction,
                    runs: vec![],
                    means: keep.iter().map(|&i| c.means[i]).collect(),
                })
                .collect(),
        )
        .unwrap();
        let fitted = Modeler::new().fit(&sweep).unwrap();
        assert_eq!(fitted.mode, SweepMode::Adaptive);
        let model = fitted.model(&privacy_id()).unwrap();
        assert!(matches!(model.response, MetricResponse::Surface(_)));
        let point = sweep.space.point(&[("epsilon", 0.05), ("cell_size", 200.0)]).unwrap();
        let expected = 0.9 + 0.05 * 0.05f64.ln() - 0.04 * 200.0f64.ln();
        assert!((model.predict(&point).unwrap() - expected).abs() < 1e-6);
    }

    #[test]
    fn diagnose_user_reads_the_users_own_curves() {
        use geopriv_mobility::UserId;

        let sweep = per_user_sweep();
        let modeler = Modeler::new();
        let fits = modeler.fit_per_user(&sweep).unwrap();
        let suite = fits.fitted(UserId::new(2)).unwrap();
        let diagnostics = modeler.diagnose_user(&sweep, suite, UserId::new(2)).unwrap();
        for report in &diagnostics.metrics {
            assert_eq!(report.residuals.len(), sweep.len());
            assert!(report.worst_point < sweep.len());
        }
        // A user the sweep never recorded is a typed error, not a panic.
        assert!(matches!(
            modeler.diagnose_user(&sweep, suite, UserId::new(99)),
            Err(CoreError::InvalidConfiguration { .. })
        ));
    }

    #[test]
    fn one_at_a_time_sweeps_fit_per_axis_models() {
        let space = geopriv_lppm::ConfigSpace::new(vec![
            epsilon_axis(),
            ParameterDescriptor::new("cell_size", 50.0, 5000.0, ParameterScale::Logarithmic)
                .unwrap(),
        ])
        .unwrap();
        let points = space.one_at_a_time(&[9, 9]).unwrap();
        let response: Vec<f64> = points
            .iter()
            .map(|p| {
                0.9 + 0.05 * p.get("epsilon").unwrap().ln()
                    - 0.04 * p.get("cell_size").unwrap().ln()
            })
            .collect();
        let sweep = SweepResult::new(
            "pipeline",
            space.clone(),
            SweepMode::OneAtATime,
            points,
            vec![MetricColumn {
                id: privacy_id(),
                direction: Direction::LowerIsBetter,
                runs: vec![],
                means: response,
            }],
        )
        .unwrap();
        let fitted = Modeler::new().fit(&sweep).unwrap();
        let model = fitted.model(&privacy_id()).unwrap();
        let fits = match &model.response {
            MetricResponse::PerAxis(fits) => fits,
            other => panic!("expected per-axis fits, got {other:?}"),
        };
        assert_eq!(fits.len(), 2);
        assert_eq!(fits[0].axis, "epsilon");
        assert_eq!(fits[1].axis, "cell_size");
        // Each leg recovers its own slope.
        assert!((fits[0].model.slope() - 0.05).abs() < 1e-6, "{}", fits[0].model.slope());
        assert!((fits[1].model.slope() + 0.04).abs() < 1e-6, "{}", fits[1].model.slope());
        // The additive combination reproduces the generating plane at an
        // off-star point (no interactions in the synthetic response).
        let point = space.point(&[("epsilon", 0.05), ("cell_size", 200.0)]).unwrap();
        let expected = 0.9 + 0.05 * 0.05f64.ln() - 0.04 * 200.0f64.ln();
        assert!((model.predict(&point).unwrap() - expected).abs() < 1e-6);
        assert!(model.axis_fit("cell_size").is_some());
    }
}
