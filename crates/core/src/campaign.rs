//! Campaign engine: many systems × many datasets through one shared work pool.
//!
//! The paper's Figure 1 family evaluates *multiple* LPPMs against the same
//! metric suite. Running each sweep through its own
//! [`crate::ExperimentRunner`] wastes work twice: every run re-extracts the
//! actual dataset's POIs, quadtrees and grids at each of its sweep samples,
//! and each run synchronizes on its own thread pool, leaving cores idle at
//! every sweep boundary.
//!
//! [`CampaignRunner`] fixes both. It flattens an M-system × K-dataset study
//! into one pool of `(system, dataset, point, repetition)` work units that
//! threads claim greedily, and it calls each metric's
//! [`geopriv_metrics::PrivacyMetric::prepare`] hook exactly once per distinct
//! `(metric configuration, dataset)` pair, sharing the prepared actual-side
//! state across every point, repetition, system and suite position of the
//! campaign.
//!
//! Determinism is preserved exactly: the per-unit RNG seed is derived by the
//! same [`derive_unit_seed`] contract the [`crate::ExperimentRunner`] uses —
//! a function of the master seed, the point index and the repetition index
//! only — and each metric guarantees that prepared evaluation is bit-identical
//! to direct evaluation. A campaign therefore returns the exact
//! [`SweepResult`]s that M × K independent sequential runs would produce.
//!
//! # Examples
//!
//! ```no_run
//! use geopriv_core::campaign::CampaignRunner;
//! use geopriv_core::prelude::*;
//! use geopriv_mobility::generator::TaxiFleetBuilder;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let dataset = TaxiFleetBuilder::new().drivers(10).duration_hours(8.0).build(&mut rng)?;
//!
//! let systems = vec![
//!     SystemDefinition::paper_geoi(),
//!     SystemDefinition::with_pair(
//!         Box::new(GaussianPerturbationFactory::new()),
//!         Box::new(geopriv_metrics::PoiRetrieval::default()),
//!         Box::new(geopriv_metrics::AreaCoverage::default()),
//!     )?,
//! ];
//! let campaign = CampaignRunner::new(SweepConfig::default()).run(&systems, &[dataset])?;
//! for run in &campaign.runs {
//!     println!("{}: {} samples", run.system_key, run.result.len());
//! }
//! # Ok(())
//! # }
//! ```

use crate::error::CoreError;
use crate::experiment::{
    assemble_sweep, derive_unit_seed, run_indexed, MetricSample, SweepConfig, SweepMode, SweepPlan,
    SweepResult,
};
use crate::system::SystemDefinition;
use geopriv_lppm::ConfigPoint;
use geopriv_metrics::PreparedState;
use geopriv_metrics::{Direction, MetricId};
use geopriv_mobility::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// The sweep of one `(system, dataset)` cell of a campaign.
#[derive(Debug)]
pub struct CampaignRun {
    /// Index of the system in the `systems` slice passed to
    /// [`CampaignRunner::run`].
    pub system_index: usize,
    /// Index of the dataset in the `datasets` slice passed to
    /// [`CampaignRunner::run`].
    pub dataset_index: usize,
    /// The system's configuration key ([`SystemDefinition::cache_key`]).
    pub system_key: String,
    /// The sweep measurements, bit-identical to an independent
    /// [`crate::ExperimentRunner::run`] with the same configuration.
    pub result: SweepResult,
}

/// The results of a campaign: one [`CampaignRun`] per `(system, dataset)`
/// cell, ordered by system index then dataset index.
#[derive(Debug)]
pub struct CampaignResult {
    /// The per-cell sweeps.
    pub runs: Vec<CampaignRun>,
}

impl CampaignResult {
    /// The sweep of one `(system, dataset)` cell.
    pub fn get(&self, system_index: usize, dataset_index: usize) -> Option<&SweepResult> {
        self.runs
            .iter()
            .find(|r| r.system_index == system_index && r.dataset_index == dataset_index)
            .map(|r| &r.result)
    }

    /// Number of `(system, dataset)` cells.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Returns `true` when the campaign produced no runs (never the case for
    /// a successful [`CampaignRunner::run`]).
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

/// One schedulable work unit: a single protection + evaluation.
struct Unit {
    system: usize,
    dataset: usize,
    point: usize,
    repetition: usize,
}

/// Runs campaigns of M systems × K datasets on a shared work pool.
///
/// The same [`SweepConfig`] (points, repetitions, master seed, parallelism)
/// applies to every system, exactly as if each were run through its own
/// [`crate::ExperimentRunner`] with that configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRunner {
    plan: SweepPlan,
}

impl CampaignRunner {
    /// Creates a campaign runner with the given per-system sweep
    /// configuration (full-factorial grid mode).
    pub fn new(config: SweepConfig) -> Self {
        Self { plan: SweepPlan::grid(config) }
    }

    /// Creates a campaign runner with an explicit sweep plan (mode and
    /// per-axis point counts), applied to every system.
    pub fn with_plan(plan: SweepPlan) -> Self {
        Self { plan }
    }

    /// The per-system sweep configuration.
    pub fn config(&self) -> SweepConfig {
        self.plan.config
    }

    /// Runs every system against every dataset.
    ///
    /// Results are deterministic for a given `(systems, datasets,
    /// config.seed)` triple regardless of thread count, and bit-identical to
    /// the corresponding independent [`crate::ExperimentRunner::run`] calls.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for an invalid sweep
    /// configuration or empty `systems`/`datasets`. A failing work unit
    /// short-circuits the rest of the campaign; the error propagated is the
    /// first genuine unit error in `(system, dataset, point, repetition)`
    /// order among the units that ran (in sequential mode, exactly the first
    /// failing unit).
    pub fn run(
        &self,
        systems: &[SystemDefinition],
        datasets: &[Dataset],
    ) -> Result<CampaignResult, CoreError> {
        self.plan.config.validate()?;
        if systems.is_empty() {
            return Err(CoreError::InvalidConfiguration {
                reason: "a campaign needs at least one system".to_string(),
            });
        }
        if datasets.is_empty() {
            return Err(CoreError::InvalidConfiguration {
                reason: "a campaign needs at least one dataset".to_string(),
            });
        }

        // Sharded and adaptive plans trade the campaign's cross-cell pooling
        // for per-cell delegation to the [`crate::ExperimentRunner`] path —
        // sharded for the O(shard) memory bound, adaptive because its design
        // matrix is chosen at run time (coarse pass → fit → refine) and so
        // cannot be flattened into a static unit list. Cells run one at a
        // time in (system, dataset) order (each cell still drives the shared
        // work pool internally), and the results are bit-identical to
        // independent runs by construction — it *is* that code path.
        if self.plan.user_shard_size().is_some() || self.plan.mode == SweepMode::Adaptive {
            let runner = crate::experiment::ExperimentRunner::with_plan(self.plan.clone());
            let mut runs = Vec::with_capacity(systems.len() * datasets.len());
            for (s, system) in systems.iter().enumerate() {
                for (d, dataset) in datasets.iter().enumerate() {
                    runs.push(CampaignRun {
                        system_index: s,
                        dataset_index: d,
                        system_key: system.cache_key(),
                        result: runner.run(system, dataset)?,
                    });
                }
            }
            return Ok(CampaignResult { runs });
        }

        let design_points: Vec<Vec<ConfigPoint>> =
            systems.iter().map(|s| self.plan.enumerate(&s.space())).collect::<Result<_, _>>()?;
        let prepared = self.prepare_cells(systems, datasets)?;

        // Flatten the whole campaign into one unit list. Unit index order is
        // the deterministic (system, dataset, point, repetition) order used
        // for both error reporting and result assembly.
        let mut units = Vec::new();
        for (s, points) in design_points.iter().enumerate() {
            for d in 0..datasets.len() {
                for point in 0..points.len() {
                    for repetition in 0..self.plan.config.repetitions {
                        units.push(Unit { system: s, dataset: d, point, repetition });
                    }
                }
            }
        }

        // Short-circuit flag: once any unit fails, remaining units are
        // skipped (`None`) instead of protecting and evaluating for nothing.
        // Skipped slots are distinct from errors so a skip can never mask the
        // genuine failure that caused it, whatever the thread interleaving.
        let abort = std::sync::atomic::AtomicBool::new(false);
        let measurements = run_indexed(units.len(), self.plan.config.parallel, |i| {
            if abort.load(std::sync::atomic::Ordering::Relaxed) {
                return None;
            }
            let resolved = units.get(i).and_then(|unit| {
                Some((
                    systems.get(unit.system)?,
                    datasets.get(unit.dataset)?,
                    prepared.get(unit.system)?.get(unit.dataset)?,
                    unit,
                    design_points.get(unit.system)?.get(unit.point)?,
                ))
            });
            let Some((system, dataset, cell, unit, point)) = resolved else {
                abort.store(true, std::sync::atomic::Ordering::Relaxed);
                return Some(Err(CoreError::Internal {
                    reason: format!("campaign unit {i} of {} out of range", units.len()),
                }));
            };
            let result = self.measure_unit(system, dataset, cell, unit, point);
            if result.is_err() {
                abort.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            Some(result)
        })?;

        self.assemble(systems, datasets, &design_points, &units, measurements)
    }

    /// Prepares the actual-side metric state of every `(system, dataset)`
    /// cell, sharing state between identically configured metrics: each
    /// distinct `(metric cache key, dataset)` pair is prepared exactly once
    /// per campaign, with the distinct preparation jobs running through the
    /// same work pool as the measurement units.
    ///
    /// Returns, per system and dataset, one prepared state per suite metric
    /// (in suite order).
    fn prepare_cells(
        &self,
        systems: &[SystemDefinition],
        datasets: &[Dataset],
    ) -> Result<Vec<Vec<Vec<Arc<PreparedState>>>>, CoreError> {
        /// A distinct preparation job: which system's metric (by suite
        /// position) to prepare against which dataset.
        struct PrepareJob {
            system: usize,
            metric: usize,
            dataset: usize,
        }

        // Deduplicate by (cache key, dataset) in deterministic (system,
        // dataset, suite position) order; the map points each cell's metric
        // at its job index.
        let mut jobs: Vec<PrepareJob> = Vec::new();
        let mut job_index: HashMap<(String, usize), usize> = HashMap::new();
        for (s, system) in systems.iter().enumerate() {
            for d in 0..datasets.len() {
                for (k, metric) in system.suite().iter().enumerate() {
                    job_index.entry((metric.cache_key(), d)).or_insert_with(|| {
                        jobs.push(PrepareJob { system: s, metric: k, dataset: d });
                        jobs.len() - 1
                    });
                }
            }
        }

        let states: Vec<Arc<PreparedState>> =
            run_indexed(jobs.len(), self.plan.config.parallel, |i| {
                let resolved = jobs.get(i).and_then(|job| {
                    let metric = systems.get(job.system)?.suite().metrics().get(job.metric)?;
                    Some((metric, datasets.get(job.dataset)?))
                });
                let Some((metric, dataset)) = resolved else {
                    return Err(CoreError::Internal {
                        reason: format!("preparation job {i} of {} out of range", jobs.len()),
                    });
                };
                metric.prepare(dataset).map_err(CoreError::from)
            })?
            .into_iter()
            .map(|state| state.map(Arc::new))
            .collect::<Result<_, _>>()?;

        systems
            .iter()
            .map(|system| {
                (0..datasets.len())
                    .map(|d| {
                        system
                            .suite()
                            .iter()
                            .map(|metric| {
                                job_index
                                    .get(&(metric.cache_key(), d))
                                    .and_then(|&j| states.get(j))
                                    .map(Arc::clone)
                                    .ok_or_else(|| CoreError::Internal {
                                        reason: format!(
                                            "metric \"{}\" has no prepared state for dataset {d}",
                                            metric.id()
                                        ),
                                    })
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    /// Executes one work unit: instantiate, protect, evaluate every suite
    /// metric against the cell's prepared state, in suite order. At
    /// [`crate::experiment::Grain::PerUser`] the samples keep their
    /// user-keyed breakdowns; at dataset grain they are dropped here, inside
    /// the unit, exactly as [`crate::ExperimentRunner`] does.
    fn measure_unit(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
        cell: &[Arc<PreparedState>],
        unit: &Unit,
        point: &ConfigPoint,
    ) -> Result<Vec<MetricSample>, CoreError> {
        let lppm = system.factory().instantiate_at(point)?;
        let mut rng = StdRng::seed_from_u64(derive_unit_seed(
            self.plan.config.seed,
            unit.point,
            unit.repetition,
        ));
        let protected = lppm.protect_dataset(dataset, &mut rng)?;
        system
            .suite()
            .iter()
            .zip(cell)
            .map(|(metric, state)| {
                let measured = metric.evaluate_prepared(state, dataset, &protected)?;
                Ok(MetricSample::of(&measured, self.plan.grain))
            })
            .collect()
    }

    /// Groups per-unit measurements back into per-cell [`SweepResult`]s,
    /// reproducing [`crate::ExperimentRunner`]'s aggregation arithmetic
    /// exactly (repetitions averaged in repetition order, one column per
    /// suite metric).
    ///
    /// Returns the first genuine unit error in unit order; `None` slots mark
    /// units skipped by the short-circuit after some unit failed.
    fn assemble(
        &self,
        systems: &[SystemDefinition],
        datasets: &[Dataset],
        design_points: &[Vec<ConfigPoint>],
        units: &[Unit],
        measurements: Vec<Option<Result<Vec<MetricSample>, CoreError>>>,
    ) -> Result<CampaignResult, CoreError> {
        // (system, dataset, point) -> per-repetition metric samples.
        // Systems may sweep differently sized designs (a 2-axis grid next to
        // a 1-axis sweep), so slots are laid out with per-system offsets.
        let mut system_offset = Vec::with_capacity(systems.len());
        let mut total = 0usize;
        for points in design_points {
            system_offset.push(total);
            total += datasets.len() * points.len();
        }
        let reps = self.plan.config.repetitions;
        let slot_of = |system: usize, dataset: usize, point: usize| -> Option<usize> {
            Some(*system_offset.get(system)? + dataset * design_points.get(system)?.len() + point)
        };
        let mut per_point: Vec<Vec<Vec<MetricSample>>> = vec![Vec::with_capacity(reps); total];
        let mut skipped = false;
        for (unit, measurement) in units.iter().zip(measurements) {
            let values = match measurement {
                Some(result) => result?,
                None => {
                    skipped = true;
                    continue;
                }
            };
            let slot_samples = slot_of(unit.system, unit.dataset, unit.point)
                .and_then(|slot| per_point.get_mut(slot))
                .ok_or_else(|| CoreError::Internal {
                    reason: format!(
                        "campaign unit ({}, {}, {}) addresses no result slot",
                        unit.system, unit.dataset, unit.point
                    ),
                })?;
            // Units are generated with `repetition` innermost, and
            // `run_indexed` returns results in unit order, so pushes arrive
            // in repetition order — except when an earlier repetition was
            // skipped by the abort flag, in which case the whole campaign is
            // discarded below anyway.
            debug_assert!(skipped || slot_samples.len() == unit.repetition);
            slot_samples.push(values);
        }
        if skipped {
            // Unreachable in practice: units are only skipped after a failed
            // unit, and that failure is returned by the loop above.
            return Err(CoreError::InvalidConfiguration {
                reason: "campaign aborted without a recorded unit error".to_string(),
            });
        }

        let mut runs = Vec::with_capacity(systems.len() * datasets.len());
        for (s, system) in systems.iter().enumerate() {
            let meta: Vec<(MetricId, Direction)> =
                system.suite().iter().map(|m| (m.id(), m.direction())).collect();
            let points = design_points.get(s).ok_or_else(|| CoreError::Internal {
                reason: format!("system {s} has no enumerated design points"),
            })?;
            for d in 0..datasets.len() {
                let cell: Vec<Vec<Vec<MetricSample>>> = (0..points.len())
                    .map(|point| {
                        slot_of(s, d, point)
                            .and_then(|slot| per_point.get_mut(slot))
                            .map(std::mem::take)
                            .ok_or_else(|| CoreError::Internal {
                                reason: format!(
                                    "campaign cell ({s}, {d}, {point}) addresses no result slot"
                                ),
                            })
                    })
                    .collect::<Result<_, _>>()?;
                runs.push(CampaignRun {
                    system_index: s,
                    dataset_index: d,
                    system_key: system.cache_key(),
                    result: assemble_sweep(
                        system.factory().name(),
                        system.space(),
                        self.plan.mode,
                        self.plan.grain,
                        points.clone(),
                        &meta,
                        &cell,
                    )?,
                });
            }
        }
        Ok(CampaignResult { runs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentRunner;
    use crate::system::{GaussianPerturbationFactory, GridCloakingFactory};
    use geopriv_metrics::{
        AreaCoverage, DistortionUtility, HotspotPreservation, MetricError, MetricSuite,
        MetricValue, PoiRetrieval, PrivacyMetric, SuiteMetric,
    };
    use geopriv_mobility::generator::TaxiFleetBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn small_dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        TaxiFleetBuilder::new()
            .drivers(3)
            .duration_hours(3.0)
            .sampling_interval_s(60.0)
            .build(&mut rng)
            .unwrap()
    }

    fn three_systems() -> Vec<SystemDefinition> {
        vec![
            SystemDefinition::paper_geoi(),
            SystemDefinition::with_pair(
                Box::new(GridCloakingFactory::new()),
                Box::new(PoiRetrieval::default()),
                Box::new(AreaCoverage::default()),
            )
            .unwrap(),
            SystemDefinition::with_pair(
                Box::new(GaussianPerturbationFactory::new()),
                Box::new(PoiRetrieval::default()),
                Box::new(AreaCoverage::default()),
            )
            .unwrap(),
        ]
    }

    fn small_config() -> SweepConfig {
        SweepConfig { points: 4, repetitions: 2, seed: 33, parallel: true }
    }

    #[test]
    fn campaign_rejects_degenerate_inputs() {
        let runner = CampaignRunner::new(small_config());
        assert_eq!(runner.config(), small_config());
        let dataset = small_dataset(1);
        assert!(runner.run(&[], std::slice::from_ref(&dataset)).is_err());
        assert!(runner.run(&three_systems(), &[]).is_err());
        let invalid = CampaignRunner::new(SweepConfig { points: 1, ..small_config() });
        assert!(invalid.run(&three_systems(), &[dataset]).is_err());
    }

    #[test]
    fn campaign_covers_every_cell_in_order() {
        let systems = three_systems();
        let datasets = [small_dataset(2), small_dataset(3)];
        let campaign = CampaignRunner::new(small_config()).run(&systems, &datasets).unwrap();
        assert_eq!(campaign.len(), 6);
        assert!(!campaign.is_empty());
        let mut expected_cells = Vec::new();
        for s in 0..3 {
            for d in 0..2 {
                expected_cells.push((s, d));
            }
        }
        let cells: Vec<(usize, usize)> =
            campaign.runs.iter().map(|r| (r.system_index, r.dataset_index)).collect();
        assert_eq!(cells, expected_cells);
        for run in &campaign.runs {
            assert_eq!(run.result.len(), 4);
            assert_eq!(run.system_key, systems[run.system_index].cache_key());
            for column in &run.result.columns {
                for runs in &column.runs {
                    assert_eq!(runs.len(), 2);
                }
            }
        }
        assert!(campaign.get(0, 1).is_some());
        assert!(campaign.get(3, 0).is_none());
    }

    #[test]
    fn campaign_matches_independent_runs() {
        let systems = three_systems();
        let dataset = small_dataset(4);
        let config = small_config();
        let campaign =
            CampaignRunner::new(config).run(&systems, std::slice::from_ref(&dataset)).unwrap();
        for (s, system) in systems.iter().enumerate() {
            let independent = ExperimentRunner::new(config).run(system, &dataset).unwrap();
            assert_eq!(campaign.get(s, 0).unwrap(), &independent, "system {s}");
        }
    }

    #[test]
    fn per_user_campaign_cells_match_independent_per_user_runs() {
        let systems = three_systems();
        let dataset = small_dataset(4);
        let plan = SweepPlan::grid(small_config()).per_user();
        let campaign = CampaignRunner::with_plan(plan.clone())
            .run(&systems, std::slice::from_ref(&dataset))
            .unwrap();
        for (s, system) in systems.iter().enumerate() {
            let independent =
                ExperimentRunner::with_plan(plan.clone()).run(system, &dataset).unwrap();
            // Bit-identical including the user columns.
            assert_eq!(campaign.get(s, 0).unwrap(), &independent, "system {s}");
            assert_eq!(
                campaign.get(s, 0).unwrap().grain,
                crate::experiment::Grain::PerUser,
                "system {s}"
            );
            assert!(!campaign.get(s, 0).unwrap().user_columns.is_empty());
        }
    }

    #[test]
    fn sharded_campaign_cells_match_independent_sharded_runs() {
        let systems = three_systems();
        let datasets = [small_dataset(4), small_dataset(8)];
        let plan = SweepPlan::grid(small_config()).per_user().shard_users(1);
        let campaign = CampaignRunner::with_plan(plan.clone()).run(&systems, &datasets).unwrap();
        assert_eq!(campaign.len(), systems.len() * datasets.len());
        for (s, system) in systems.iter().enumerate() {
            for (d, dataset) in datasets.iter().enumerate() {
                let independent =
                    ExperimentRunner::with_plan(plan.clone()).run(system, dataset).unwrap();
                assert_eq!(campaign.get(s, d).unwrap(), &independent, "cell ({s}, {d})");
            }
        }
    }

    #[test]
    fn adaptive_campaign_cells_match_independent_adaptive_runs() {
        let systems = three_systems();
        let datasets = [small_dataset(4), small_dataset(8)];
        let plan = SweepPlan::adaptive(small_config(), 7);
        let campaign = CampaignRunner::with_plan(plan.clone()).run(&systems, &datasets).unwrap();
        assert_eq!(campaign.len(), systems.len() * datasets.len());
        for (s, system) in systems.iter().enumerate() {
            for (d, dataset) in datasets.iter().enumerate() {
                let independent =
                    ExperimentRunner::with_plan(plan.clone()).run(system, dataset).unwrap();
                let cell = campaign.get(s, d).unwrap();
                assert_eq!(cell, &independent, "cell ({s}, {d})");
                assert_eq!(cell.mode, SweepMode::Adaptive);
                assert!(cell.len() >= 4, "adaptive cell kept its coarse pass");
            }
        }
    }

    #[test]
    fn multi_metric_suites_run_through_campaigns() {
        let suite_system = || {
            SystemDefinition::new(
                Box::new(GaussianPerturbationFactory::new()),
                MetricSuite::new(vec![
                    SuiteMetric::privacy(PoiRetrieval::default()),
                    SuiteMetric::utility(DistortionUtility::default()),
                    SuiteMetric::utility(AreaCoverage::default()),
                    SuiteMetric::utility(HotspotPreservation::default()),
                ])
                .unwrap(),
            )
        };
        let dataset = small_dataset(9);
        let config = SweepConfig { points: 3, repetitions: 1, seed: 21, parallel: true };
        let campaign = CampaignRunner::new(config)
            .run(&[suite_system()], std::slice::from_ref(&dataset))
            .unwrap();
        let independent = ExperimentRunner::new(config).run(&suite_system(), &dataset).unwrap();
        assert_eq!(campaign.get(0, 0).unwrap(), &independent);
        assert_eq!(independent.columns.len(), 4);
    }

    /// A privacy metric that counts its `prepare` calls, to observe the
    /// campaign's prepared-state sharing.
    struct CountingMetric {
        prepares: Arc<AtomicUsize>,
        inner: PoiRetrieval,
    }

    impl PrivacyMetric for CountingMetric {
        fn name(&self) -> &str {
            "counting-poi-retrieval"
        }
        fn evaluate(
            &self,
            actual: &Dataset,
            protected: &Dataset,
        ) -> Result<MetricValue, MetricError> {
            self.inner.evaluate(actual, protected)
        }
        fn prepare(&self, actual: &Dataset) -> Result<PreparedState, MetricError> {
            self.prepares.fetch_add(1, Ordering::SeqCst);
            self.inner.prepare(actual)
        }
        fn evaluate_prepared(
            &self,
            prepared: &PreparedState,
            actual: &Dataset,
            protected: &Dataset,
        ) -> Result<MetricValue, MetricError> {
            self.inner.evaluate_prepared(prepared, actual, protected)
        }
    }

    /// A privacy metric that always fails, counting its evaluation attempts.
    struct FailingMetric {
        evaluations: Arc<AtomicUsize>,
    }

    impl PrivacyMetric for FailingMetric {
        fn name(&self) -> &str {
            "failing"
        }
        fn evaluate(&self, _: &Dataset, _: &Dataset) -> Result<MetricValue, MetricError> {
            self.evaluations.fetch_add(1, Ordering::SeqCst);
            Err(MetricError::DatasetMismatch { reason: "always fails".to_string() })
        }
    }

    #[test]
    fn a_failing_unit_short_circuits_the_rest_of_the_campaign() {
        let evaluations = Arc::new(AtomicUsize::new(0));
        let system = SystemDefinition::with_pair(
            Box::new(GaussianPerturbationFactory::new()),
            Box::new(FailingMetric { evaluations: Arc::clone(&evaluations) }),
            Box::new(AreaCoverage::default()),
        )
        .unwrap();
        let dataset = small_dataset(7);
        let config = SweepConfig { points: 8, repetitions: 2, seed: 1, parallel: false };
        let result = CampaignRunner::new(config).run(std::slice::from_ref(&system), &[dataset]);
        assert!(result.is_err());
        // Sequential mode: the first unit fails, every later unit is skipped.
        assert_eq!(evaluations.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn prepared_state_is_shared_across_points_repetitions_and_systems() {
        let prepares = Arc::new(AtomicUsize::new(0));
        let system_with_counter =
            |prepares: &Arc<AtomicUsize>, factory: Box<dyn crate::system::LppmFactory>| {
                SystemDefinition::with_pair(
                    factory,
                    Box::new(CountingMetric {
                        prepares: Arc::clone(prepares),
                        inner: PoiRetrieval::default(),
                    }),
                    Box::new(AreaCoverage::default()),
                )
                .unwrap()
            };
        let systems = vec![
            system_with_counter(&prepares, Box::new(GaussianPerturbationFactory::new())),
            system_with_counter(&prepares, Box::new(GridCloakingFactory::new())),
        ];
        let datasets = [small_dataset(5), small_dataset(6)];
        CampaignRunner::new(small_config()).run(&systems, &datasets).unwrap();
        // 2 systems × 2 datasets × 4 points × 2 repetitions = 32 evaluations,
        // but both systems' metrics share a cache key, so the actual POIs are
        // extracted exactly once per dataset.
        assert_eq!(prepares.load(Ordering::SeqCst), datasets.len());
    }
}
