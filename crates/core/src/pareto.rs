//! Privacy/utility trade-off frontier.
//!
//! A natural extension of the paper's framework ("our future work will focus
//! in testing other LPPMs … we also plan to extend our framework with more
//! metrics and parameters"): instead of answering a single objective pair,
//! expose the whole *Pareto frontier* of the measured sweep — the set of
//! parameter values that are not dominated (some other value being both more
//! private and more useful). The configurator's recommendations always lie on
//! this frontier; the frontier view helps a system designer pick objectives
//! that are actually reachable before invoking the inversion step.

use crate::experiment::SweepResult;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One point of the privacy/utility trade-off frontier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradeOffPoint {
    /// The parameter value (e.g. ε).
    pub parameter: f64,
    /// The measured privacy metric (lower is better).
    pub privacy: f64,
    /// The measured utility metric (higher is better).
    pub utility: f64,
}

impl TradeOffPoint {
    /// Returns `true` if `self` dominates `other`: at least as private *and*
    /// at least as useful, and strictly better on one of the two.
    pub fn dominates(&self, other: &TradeOffPoint) -> bool {
        let no_worse = self.privacy <= other.privacy && self.utility >= other.utility;
        let strictly_better = self.privacy < other.privacy || self.utility > other.utility;
        no_worse && strictly_better
    }
}

impl fmt::Display for TradeOffPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parameter {:.5}: privacy {:.3}, utility {:.3}",
            self.parameter, self.privacy, self.utility
        )
    }
}

/// The Pareto frontier extracted from a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoFrontier {
    points: Vec<TradeOffPoint>,
}

impl ParetoFrontier {
    /// Extracts the non-dominated points of a sweep, sorted by increasing
    /// privacy (i.e. from the most private to the most useful end).
    pub fn from_sweep(sweep: &SweepResult) -> Self {
        let candidates: Vec<TradeOffPoint> = sweep
            .samples
            .iter()
            .map(|s| TradeOffPoint {
                parameter: s.parameter,
                privacy: s.privacy,
                utility: s.utility,
            })
            .collect();
        let mut frontier: Vec<TradeOffPoint> = candidates
            .iter()
            .filter(|candidate| !candidates.iter().any(|other| other.dominates(candidate)))
            .copied()
            .collect();
        frontier.sort_by(|a, b| {
            a.privacy
                .partial_cmp(&b.privacy)
                .expect("metric values are finite")
                .then(a.utility.partial_cmp(&b.utility).expect("finite"))
        });
        frontier.dedup_by(|a, b| a.privacy == b.privacy && a.utility == b.utility);
        Self { points: frontier }
    }

    /// The frontier points, sorted by increasing privacy.
    pub fn points(&self) -> &[TradeOffPoint] {
        &self.points
    }

    /// Number of non-dominated points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the frontier is empty (only for empty sweeps).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The knee point: the frontier point maximizing `utility − privacy`,
    /// i.e. the best balanced compromise when the designer has no explicit
    /// objectives yet.
    pub fn knee(&self) -> Option<TradeOffPoint> {
        self.points.iter().copied().max_by(|a, b| {
            (a.utility - a.privacy)
                .partial_cmp(&(b.utility - b.privacy))
                .expect("metric values are finite")
        })
    }

    /// The most private frontier point that still reaches `minimum_utility`,
    /// if any.
    pub fn most_private_with_utility(&self, minimum_utility: f64) -> Option<TradeOffPoint> {
        self.points
            .iter()
            .filter(|p| p.utility >= minimum_utility)
            .min_by(|a, b| a.privacy.partial_cmp(&b.privacy).expect("finite"))
            .copied()
    }
}

impl fmt::Display for ParetoFrontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Pareto frontier ({} points):", self.points.len())?;
        for p in &self.points {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{SweepResult, SweepSample};
    use geopriv_lppm::ParameterScale;

    fn sweep_from(points: &[(f64, f64, f64)]) -> SweepResult {
        SweepResult {
            lppm_name: "geo-indistinguishability".to_string(),
            parameter_name: "epsilon".to_string(),
            parameter_scale: ParameterScale::Logarithmic,
            privacy_metric_name: "poi-retrieval".to_string(),
            utility_metric_name: "area-coverage".to_string(),
            samples: points
                .iter()
                .map(|&(parameter, privacy, utility)| SweepSample {
                    parameter,
                    privacy,
                    utility,
                    privacy_runs: vec![],
                    utility_runs: vec![],
                })
                .collect(),
        }
    }

    #[test]
    fn domination_logic() {
        let a = TradeOffPoint { parameter: 0.01, privacy: 0.1, utility: 0.8 };
        let b = TradeOffPoint { parameter: 0.02, privacy: 0.2, utility: 0.7 };
        let c = TradeOffPoint { parameter: 0.03, privacy: 0.1, utility: 0.8 };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c)); // equal on both axes: no strict improvement
        assert!(a.to_string().contains("0.800"));
    }

    #[test]
    fn monotone_sweeps_are_entirely_on_the_frontier() {
        // When both metrics increase with the parameter (the Figure 1 shape),
        // every point is a genuine trade-off: nothing dominates anything.
        let sweep =
            sweep_from(&[(0.001, 0.0, 0.3), (0.01, 0.1, 0.6), (0.1, 0.5, 0.9), (1.0, 0.9, 1.0)]);
        let frontier = ParetoFrontier::from_sweep(&sweep);
        assert_eq!(frontier.len(), 4);
        assert!(!frontier.is_empty());
        // Sorted by increasing privacy.
        let privacies: Vec<f64> = frontier.points().iter().map(|p| p.privacy).collect();
        assert!(privacies.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn dominated_points_are_removed() {
        let sweep = sweep_from(&[
            (0.001, 0.0, 0.5),
            (0.01, 0.2, 0.4), // dominated by the first point (worse on both axes)
            (0.1, 0.3, 0.9),
        ]);
        let frontier = ParetoFrontier::from_sweep(&sweep);
        assert_eq!(frontier.len(), 2);
        assert!(frontier.points().iter().all(|p| p.parameter != 0.01));
    }

    #[test]
    fn knee_and_utility_queries() {
        let sweep = sweep_from(&[
            (0.001, 0.0, 0.3),
            (0.01, 0.05, 0.8), // best balance: utility - privacy = 0.75
            (0.1, 0.5, 0.95),
            (1.0, 0.95, 1.0),
        ]);
        let frontier = ParetoFrontier::from_sweep(&sweep);
        let knee = frontier.knee().unwrap();
        assert_eq!(knee.parameter, 0.01);

        let pick = frontier.most_private_with_utility(0.9).unwrap();
        assert_eq!(pick.parameter, 0.1);
        assert!(frontier.most_private_with_utility(1.1).is_none());
        assert!(frontier.to_string().contains("Pareto frontier"));
    }

    #[test]
    fn frontier_of_real_shaped_sweep_contains_the_operating_point_region() {
        // An Equation-2-like sweep: the frontier keeps the transition region
        // where the paper's operating point lives.
        let samples: Vec<(f64, f64, f64)> = (0..25)
            .map(|i| {
                let eps = 1e-4 * (1.0f64 / 1e-4).powf(i as f64 / 24.0);
                (
                    eps,
                    (0.84 + 0.17 * eps.ln()).clamp(0.0, 0.45),
                    (1.21 + 0.09 * eps.ln()).clamp(0.2, 1.0),
                )
            })
            .collect();
        let frontier = ParetoFrontier::from_sweep(&sweep_from(&samples));
        // The saturated tails collapse to a single frontier point each; the
        // transition region (about one decade of epsilon) survives in full.
        assert!(frontier.len() >= 8, "frontier has only {} points", frontier.len());
        assert!(frontier.points().iter().any(|p| p.privacy <= 0.10 && p.utility >= 0.7));
    }
}
